//! E10 — observability overhead: the cost of the `troll-obs` layer on
//! the runtime hot path.
//!
//! Four modes over the identical hire/fire workload of
//! `e3_monitored_path` (deep history, bounded state):
//!
//! * `noop` — the shipped default: counters increment, but no observer
//!   is attached (`NoopObserver`, `enabled() == false`), so no event is
//!   ever constructed. This is the number the < 2 % acceptance gate in
//!   EXPERIMENTS.md compares against the pre-obs baseline.
//! * `recorder` — an in-memory [`Recorder`] sink: every event is built
//!   and pushed into a mutex-guarded vector.
//! * `trace_writer` — a [`TraceWriter`] over [`std::io::sink`]: every
//!   event is built, serialized to JSON and "written"; isolates
//!   serialization cost from disk latency.
//! * `trace_writer_file` — the same, over a buffered temp file: what
//!   `troll animate --trace` actually pays.
//!
//! Expected shape: noop ≈ baseline; recorder and trace_writer pay a
//! per-event constant (allocation + formatting), flat in history depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use troll::runtime::{ObjectBase, Observer, Recorder, TraceWriter};
use troll_bench::{dept_base_deep, person};

#[derive(Clone, Copy)]
enum Mode {
    Noop,
    Recorder,
    TraceSink,
    TraceFile,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Noop => "noop",
            Mode::Recorder => "recorder",
            Mode::TraceSink => "trace_writer",
            Mode::TraceFile => "trace_writer_file",
        }
    }

    fn attach(self, ob: &mut ObjectBase) {
        let observer: Arc<dyn Observer> = match self {
            Mode::Noop => return, // shipped default: nothing to attach
            Mode::Recorder => Arc::new(Recorder::new()),
            Mode::TraceSink => Arc::new(TraceWriter::new(std::io::sink())),
            Mode::TraceFile => {
                let mut path = std::env::temp_dir();
                path.push(format!("troll-e10-{}.jsonl", std::process::id()));
                let file = std::fs::File::create(path).expect("temp trace file");
                Arc::new(TraceWriter::new(std::io::BufWriter::new(file)))
            }
        };
        ob.set_observer(observer);
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_obs_overhead");
    group.sample_size(20);
    for history in [32usize, 256] {
        for mode in [Mode::Noop, Mode::Recorder, Mode::TraceSink, Mode::TraceFile] {
            group.bench_with_input(
                BenchmarkId::new(format!("hire_fire_{}", mode.label()), history),
                &history,
                |b, _| {
                    b.iter_batched(
                        || {
                            let (mut ob, dept) = dept_base_deep(history);
                            mode.attach(&mut ob);
                            // warm the monitor-cache entries outside the
                            // measurement, exactly as e3_monitored_path does
                            ob.execute(&dept, "hire", vec![person(9999)])
                                .expect("hire succeeds");
                            ob.execute(&dept, "fire", vec![person(9999)])
                                .expect("permitted");
                            (ob, dept)
                        },
                        |(mut ob, dept)| {
                            ob.execute(&dept, "hire", vec![person(9999)])
                                .expect("hire succeeds");
                            ob.execute(&dept, "fire", vec![person(9999)])
                                .expect("permitted");
                            black_box(ob.steps_executed());
                            ob // dropped outside the measurement
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// The refused-fire point: permission evaluation and rollback, no
/// commit — the path where the observer sees a `step_rolled_back`
/// event with the error string (an allocation the commit path skips).
fn bench_obs_overhead_refused(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_obs_overhead_refused");
    for mode in [Mode::Noop, Mode::Recorder, Mode::TraceSink] {
        let (mut ob, dept) = dept_base_deep(128);
        mode.attach(&mut ob);
        let err = ob
            .execute(&dept, "fire", vec![person(999_999)])
            .expect_err("never hired"); // warms the cache entry
        black_box(err);
        group.bench_function(format!("refused_fire_{}", mode.label()), |b| {
            b.iter(|| {
                let err = ob
                    .execute(&dept, "fire", vec![person(999_999)])
                    .expect_err("never hired");
                black_box(err)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead, bench_obs_overhead_refused);
criterion_main!(benches);
