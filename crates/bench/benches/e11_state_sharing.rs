//! E11 — per-event cost vs attribute-map width (state snapshot cost).
//!
//! The paper's observation semantics make every trace step carry the
//! attribute state the object exhibited at that point, so the engine
//! snapshots the state map on every committed event. These benches grow
//! the *width* of that map (number of declared attributes) while holding
//! the history depth fixed, isolating exactly the cost E3's
//! `hire_vs_history` conflates with history growth: with eager
//! `BTreeMap` snapshots the per-event cost is O(|state|) several times
//! over (working-state materialization, virtual-step snapshot, trace
//! snapshot, commit); with the persistent structurally-shared
//! [`troll::data::StateMap`] every snapshot is an O(1) shared root and
//! only the updated attribute pays an O(log n) path copy, so the curves
//! should be roughly flat in width.
//!
//! Methodology matches E3: successful events commit and mutate the
//! base, so they are measured with `iter_batched` (setup excluded) on a
//! standing history of `HISTORY` hires.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::data::{Date, ObjectId, Value};
use troll::runtime::ObjectBase;
use troll::System;
use troll_bench::person;

/// Attribute-map widths under test (the e11 sweep of EXPERIMENTS.md).
const WIDTHS: [usize; 4] = [4, 16, 64, 256];

/// Standing history depth: enough that the monitor cache matters, small
/// enough that setup stays cheap at width 256.
const HISTORY: usize = 32;

/// A DEPT-like spec with `width` additional integer attributes. The
/// extra attributes are born undefined, which still occupies a slot in
/// every state snapshot — map width is what these benches vary.
fn wide_spec(width: usize) -> String {
    let attrs: Vec<String> = (0..width).map(|i| format!("a{i}: int;")).collect();
    format!(
        r#"
object class DEPT
  identification id: string;
  template
    attributes
      est_date: date;
      employees: set(|PERSON|);
      hired_ever: set(|PERSON|);
      counter: int;
      {attrs}
    events
      birth establishment(date);
      death closure;
      hire(|PERSON|);
      fire(|PERSON|);
      bump;
    valuation
      variables P: |PERSON|; d: date;
      [establishment(d)] est_date = d;
      [establishment(d)] employees = {{}};
      [establishment(d)] hired_ever = {{}};
      [establishment(d)] counter = 0;
      [hire(P)] employees = insert(P, employees);
      [hire(P)] hired_ever = insert(P, hired_ever);
      [fire(P)] employees = remove(P, employees);
      [bump] counter = counter + 1;
    permissions
      variables P: |PERSON|;
      {{ sometime(after(hire(P))) }} fire(P);
end object class DEPT;
"#,
        attrs = attrs.join("\n      ")
    )
}

/// Births one wide department and runs `HISTORY` hires on it.
fn wide_base(width: usize) -> (ObjectBase, ObjectId) {
    let system = System::load_str(&wide_spec(width)).expect("wide spec loads");
    let mut ob = system.object_base().expect("object base");
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let id = ob
        .birth(
            "DEPT",
            vec![Value::from("wide")],
            "establishment",
            vec![date],
        )
        .expect("birth succeeds");
    for j in 0..HISTORY {
        ob.execute(&id, "hire", vec![person(j)])
            .expect("hire succeeds");
    }
    (ob, id)
}

/// One hire event (two set-valued valuation updates + commit) as the
/// attribute map widens — the `hire_vs_history` regime with width, not
/// history, as the swept variable.
fn bench_hire_vs_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_state_sharing");
    group.sample_size(20);
    for width in WIDTHS {
        group.bench_with_input(BenchmarkId::new("hire_vs_width", width), &width, |b, _| {
            b.iter_batched(
                || wide_base(width),
                |(mut ob, id)| {
                    ob.execute(&id, "hire", vec![person(9999)])
                        .expect("hire succeeds");
                    black_box(ob.steps_executed());
                    ob // dropped outside the measurement
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // the purest snapshot probe: a single integer attribute update — all
    // remaining per-event cost is state materialization and snapshots
    for width in WIDTHS {
        group.bench_with_input(BenchmarkId::new("bump_vs_width", width), &width, |b, _| {
            b.iter_batched(
                || wide_base(width),
                |(mut ob, id)| {
                    ob.execute(&id, "bump", vec![]).expect("bump succeeds");
                    black_box(ob.steps_executed());
                    ob
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // steady state: thousands of bumps against one standing base, so
    // first-touch cache effects of the freshly built wide tree amortize
    // away and what remains is the per-event snapshot cost itself
    for width in WIDTHS {
        group.bench_with_input(
            BenchmarkId::new("bump_steady_vs_width", width),
            &width,
            |b, _| {
                let (mut ob, id) = wide_base(width);
                b.iter(|| {
                    ob.execute(&id, "bump", vec![]).expect("bump succeeds");
                    black_box(ob.steps_executed())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hire_vs_width);
criterion_main!(benches);
