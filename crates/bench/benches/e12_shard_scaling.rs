//! E12 — sharded batch execution vs shard count.
//!
//! [`WorldShards::run_batch`] speculates a batch of externally
//! addressed events in parallel (one worker per shard) against the
//! frozen pre-batch base, then commits sequentially in batch order.
//! These benches sweep the shard count over the paper's §4 company
//! example in the two regimes that bracket the design:
//!
//! * **spread** — 64 hires over 64 departments: every speculation is
//!   independent, commits validate with the `ptr_eq` fast path, and the
//!   parallel section dominates. This is the regime where shards > 1
//!   can win wall-clock on multi-core hosts.
//! * **contended** — 64 hires over 8 departments: each department sees
//!   8 same-batch writes, so most speculations conflict and re-execute
//!   sequentially at commit time. This bounds the protocol's overhead:
//!   the sharded run degenerates to the sequential loop plus the cost
//!   of routing, speculating and validating.
//!
//! Replay equality (the correctness half of the experiment) is asserted
//! by `replay_equality_with_single_threaded_oracle` in the runtime's
//! shard tests, not here; the benches only measure. EXPERIMENTS.md §E12
//! records the measured shapes and the host caveat: on a single-core
//! container the spread regime cannot beat 1 shard — the worker threads
//! time-slice one CPU — so the local numbers chart protocol overhead,
//! not scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::data::{Date, ObjectId, Value};
use troll::runtime::{BatchEvent, WorldShards};
use troll::System;
use troll_bench::person;

/// Shard counts under test (the e12 sweep of EXPERIMENTS.md).
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Events per measured batch.
const BATCH: usize = 64;

/// A sharded executor over the §4 company example with `depts`
/// departments already established (via a batch, so setup and
/// measurement exercise the same path).
fn company_shards(shards: usize, depts: usize) -> (WorldShards, Vec<ObjectId>) {
    let system = System::load_str(troll::specs::COMPANY).expect("shipped spec loads");
    let mut ws = system
        .object_base()
        .expect("object base")
        .into_shards(shards);
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let ids: Vec<ObjectId> = (0..depts)
        .map(|i| ObjectId::new("DEPT", vec![Value::from(format!("d{i}"))]))
        .collect();
    let births = ids
        .iter()
        .map(|id| BatchEvent::new(id.clone(), "establishment", vec![date.clone()]))
        .collect();
    for r in ws.run_batch(births) {
        r.expect("birth succeeds");
    }
    (ws, ids)
}

/// `BATCH` hires round-robined over the departments with distinct
/// persons — the per-department write contention is `BATCH / depts`.
fn hire_batch(depts: &[ObjectId]) -> Vec<BatchEvent> {
    (0..BATCH)
        .map(|i| BatchEvent::new(depts[i % depts.len()].clone(), "hire", vec![person(i)]))
        .collect()
}

fn bench_batch_vs_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_shard_scaling");
    group.sample_size(20);
    // (regime, department count): contention = BATCH / depts writes/dept
    for (regime, depts) in [("spread_64x64", BATCH), ("contended_64x8", 8)] {
        for shards in SHARDS {
            group.bench_with_input(BenchmarkId::new(regime, shards), &shards, |b, &s| {
                b.iter_batched(
                    || {
                        let (ws, ids) = company_shards(s, depts);
                        (ws, hire_batch(&ids))
                    },
                    |(mut ws, batch)| {
                        for r in ws.run_batch(batch) {
                            r.expect("hire succeeds");
                        }
                        black_box(ws) // dropped outside the measurement
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_shards);
criterion_main!(benches);
