//! E13 — durability overhead on the hot commit path.
//!
//! The durable sink serializes every committed step's initial
//! occurrence vector into the segmented WAL; the fsync policy decides
//! how often the OS buffer is forced to disk. These benches charge a
//! fixed 64-event DEPT workload (one birth + 63 hires) against four
//! configurations:
//!
//! * **off** — no sink attached: the baseline engine throughput.
//! * **on_close** — append to the WAL but never fsync inside the
//!   measured region: the cost of encoding + buffered writes.
//! * **every_8** — group commit: one fsync per 8 steps.
//! * **every_commit** — the paranoid default: fsync on every step.
//!
//! The store directory is wiped and reopened per measured iteration in
//! the setup closure — outside the timing — so the numbers isolate the
//! append path: no recovery, no snapshots, no directory teardown.
//! EXPERIMENTS.md §E13 records the measured shapes; on tmpfs-backed
//! temp dirs fsync is cheap, so treat the every_* rows as lower bounds
//! on real-disk overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use troll::data::{Date, Value};
use troll::runtime::ObjectBase;
use troll::store::{open_world, DurableSink, FsyncPolicy, StoreOptions};
use troll::System;
use troll_bench::person;

/// Events per measured iteration (one birth + EVENTS-1 hires).
const EVENTS: usize = 64;

/// One reusable scratch directory per mode; wiped in the (untimed)
/// setup closure before each iteration.
fn scratch(mode: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("troll-bench-e13-{}-{mode}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A fresh DEPT world, durable under `fsync` policy when given.
fn world(mode: &str, fsync: Option<FsyncPolicy>) -> ObjectBase {
    match fsync {
        None => System::load_str(troll::specs::DEPT)
            .expect("shipped spec loads")
            .object_base()
            .expect("object base"),
        Some(policy) => {
            let dir = scratch(mode);
            let opts = StoreOptions {
                fsync: policy,
                // no snapshots inside the measured region
                snapshot_every: 0,
                ..StoreOptions::default()
            };
            let (mut base, store, _) =
                open_world(&dir, troll::specs::DEPT, &opts).expect("open store");
            let (sink, _shared) = DurableSink::new(store);
            base.set_step_sink(Box::new(sink));
            base
        }
    }
}

/// The measured workload: birth + 63 hires, one committed step each.
fn drive(base: &mut ObjectBase) {
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let toys = base
        .birth(
            "DEPT",
            vec![Value::from("Toys")],
            "establishment",
            vec![date],
        )
        .expect("birth");
    for i in 1..EVENTS {
        base.execute(&toys, "hire", vec![person(i)]).expect("hire");
    }
}

fn bench_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_durability");
    group.sample_size(20);
    let modes: [(&str, Option<FsyncPolicy>); 4] = [
        ("off", None),
        ("on_close", Some(FsyncPolicy::OnClose)),
        ("every_8", Some(FsyncPolicy::EveryN(8))),
        ("every_commit", Some(FsyncPolicy::EveryCommit)),
    ];
    for (name, fsync) in modes {
        group.bench_with_input(BenchmarkId::new(name, EVENTS), &fsync, |b, fsync| {
            b.iter_batched(
                || world(name, *fsync),
                |mut base| {
                    drive(&mut base);
                    black_box(base) // dropped outside the measurement
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
    for (name, fsync) in modes {
        if fsync.is_some() {
            let _ = std::fs::remove_dir_all(scratch(name));
        }
    }
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
