//! E14 — the bytecode VM against the tree-walk evaluator.
//!
//! Two layers, both steady-state:
//!
//! * `e14_term_eval` — rule-shaped terms (valuation update, guarded
//!   parameterized attribute, §5.2 query-algebra derivation, quantified
//!   permission predicate) evaluated against a fixed environment:
//!   `Term::eval` vs a precompiled `troll_vm::Compiled`. This isolates
//!   the evaluator itself — the layer the VM replaces.
//! * `e14_runtime` — the full engine on e3-shaped workloads that leave
//!   the base unchanged (a refused event rolls back; a parameterized
//!   attribute read mutates nothing), with the VM active (default) vs
//!   `troll_vm::set_force_treewalk` routing every rule back through the
//!   tree walk. End-to-end deltas are diluted by the non-evaluation
//!   step machinery (env setup, monitor advance, snapshots, rollback) —
//!   EXPERIMENTS.md records both layers honestly.
//!
//! The force flag is read when an `ObjectBase` (and any lazily built
//! monitor) constructs its `Compiled` programs, so each mode builds its
//! own base with the flag held for the whole mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::data::{Date, MapEnv, Op, Quantifier, Term, Value};
use troll::System;
use troll_vm::{set_force_treewalk, Compiled};

/// The shared environment: a 64-tuple relation, a 64-id set, and the
/// scalars the rule terms read.
fn rule_env() -> MapEnv {
    let emps = Value::set_of((0..64).map(|i| {
        Value::tuple_of(vec![
            ("ename".to_string(), Value::from(format!("p{i}"))),
            (
                "bdate".to_string(),
                Value::Date(Date::new(1960, 1, 1).expect("date")),
            ),
            ("esalary".to_string(), Value::Int(1000 + i)),
            ("edept".to_string(), Value::from("Research")),
        ])
    }));
    let employees = Value::set_of((0..64).map(|i| {
        Value::Id(troll::data::ObjectId::new(
            "PERSON",
            vec![Value::from(format!("p{i}"))],
        ))
    }));
    MapEnv::from_pairs(vec![
        ("Emps".to_string(), emps),
        ("employees".to_string(), employees),
        (
            "P".to_string(),
            Value::Id(troll::data::ObjectId::new(
                "PERSON",
                vec![Value::from("p99")],
            )),
        ),
        ("n".to_string(), Value::from("p32")),
        ("Salary".to_string(), Value::Int(4000)),
        ("y".to_string(), Value::Int(2026)),
    ])
}

/// Rule-shaped terms, from trivial to evaluation-heavy.
fn rule_terms() -> Vec<(&'static str, Term)> {
    let var = |n: &str| Term::Var(n.to_string());
    // [hire(P)] employees = insert(P, employees)
    let valuation = Term::Apply(Op::Insert, vec![var("P"), var("employees")]);
    // IncomeInYear(y) = if y >= 2020 then Salary * 13 else Salary * 12
    let param_attr = Term::ite(
        Term::Apply(Op::Ge, vec![var("y"), Term::Const(Value::Int(2020))]),
        Term::Apply(Op::Mul, vec![var("Salary"), Term::Const(Value::Int(13))]),
        Term::Apply(Op::Mul, vec![var("Salary"), Term::Const(Value::Int(12))]),
    );
    // §5.2: Salary = the(project|esalary|(select|ename = n|(Emps)))
    let derivation = Term::the(Term::project(
        Term::select(
            var("Emps"),
            Term::Apply(Op::Eq, vec![var("ename"), var("n")]),
        ),
        vec!["esalary".to_string()],
    ));
    // permission predicate: for all(e in Emps : e.esalary >= 0)
    let quantified = Term::quant(
        Quantifier::Forall,
        "e",
        var("Emps"),
        Term::Apply(
            Op::Ge,
            vec![Term::field(var("e"), "esalary"), Term::Const(Value::Int(0))],
        ),
    );
    // constraint formula reading several fields of the bound tuple:
    // for all(e in Emps : e.esalary >= 0 and e.ename != "" and e.edept = "Research")
    let multifield = Term::quant(
        Quantifier::Forall,
        "e",
        var("Emps"),
        Term::Apply(
            Op::And,
            vec![
                Term::Apply(
                    Op::And,
                    vec![
                        Term::Apply(
                            Op::Ge,
                            vec![Term::field(var("e"), "esalary"), Term::Const(Value::Int(0))],
                        ),
                        Term::Apply(
                            Op::Neq,
                            vec![Term::field(var("e"), "ename"), Term::Const(Value::from(""))],
                        ),
                    ],
                ),
                Term::Apply(
                    Op::Eq,
                    vec![
                        Term::field(var("e"), "edept"),
                        Term::Const(Value::from("Research")),
                    ],
                ),
            ],
        ),
    );
    vec![
        ("valuation_insert", valuation),
        ("param_attr_ite", param_attr),
        ("derivation_query", derivation),
        ("quantified_pred", quantified),
        ("constraint_multifield", multifield),
    ]
}

fn bench_term_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_term_eval");
    let env = rule_env();
    for (name, term) in rule_terms() {
        term.eval(&env).expect("term evaluates");
        let compiled = Compiled::new(term.clone());
        assert!(compiled.is_compiled(), "{name} should lower to bytecode");
        group.bench_with_input(BenchmarkId::new("tree", name), &term, |b, t| {
            b.iter(|| black_box(t.eval(&env).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("bytecode", name), &compiled, |b, p| {
            b.iter(|| black_box(p.eval(&env).unwrap()))
        });
    }
    group.finish();
}

/// emp_rel with 64 stored employees; `UpdateSalary` for an unknown name
/// evaluates the `exists` permission over the whole relation and is
/// refused — the step rolls back, so sampling is unbatched steady-state.
fn emp_rel_base() -> (troll::runtime::ObjectBase, troll::data::ObjectId) {
    let system = System::load_str(troll::specs::EMPLOYMENT).expect("spec loads");
    let mut ob = system.object_base().expect("object base");
    let rel = ob.singleton("emp_rel").expect("singleton");
    ob.execute(&rel, "CreateEmpRel", vec![]).expect("create");
    let bday = Value::Date(Date::new(1960, 1, 1).expect("date"));
    for i in 0..64 {
        ob.execute(
            &rel,
            "InsertEmp",
            vec![
                Value::from(format!("p{i}")),
                bday.clone(),
                Value::Int(1000 + i),
            ],
        )
        .expect("insert");
    }
    (ob, rel)
}

/// The views spec with one person; `IncomeInYear` is a parameterized
/// attribute whose derivation runs on every read, mutating nothing.
fn views_base() -> (troll::runtime::ObjectBase, troll::data::ObjectId) {
    let system = System::load_str(troll::specs::VIEWS).expect("spec loads");
    let mut ob = system.object_base().expect("object base");
    let ada = ob
        .birth(
            "PERSON",
            vec![Value::from("ada")],
            "create",
            vec![
                Value::Money(troll::data::Money::from_major(4_000)),
                Value::from("Research"),
            ],
        )
        .expect("birth");
    (ob, ada)
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_runtime");
    group.sample_size(20);
    for mode in ["bytecode", "treewalk"] {
        set_force_treewalk(mode == "treewalk");

        let (mut ob, rel) = emp_rel_base();
        let bday = Value::Date(Date::new(1960, 1, 1).expect("date"));
        group.bench_function(BenchmarkId::new("refused_update", mode), |b| {
            b.iter(|| {
                let err = ob.execute(
                    &rel,
                    "UpdateSalary",
                    vec![Value::from("nobody"), bday.clone(), Value::Int(1)],
                );
                black_box(err.expect_err("permission refuses unknown name"));
            })
        });

        group.bench_function(BenchmarkId::new("change_salary", mode), |b| {
            let mut s = 0i64;
            b.iter(|| {
                // interaction: ChangeSalary >> (DeleteEmp; InsertEmp) —
                // two valuations over the 64-tuple relation per step,
                // relation size invariant
                s += 1;
                black_box(
                    ob.execute(
                        &rel,
                        "ChangeSalary",
                        vec![Value::from("p32"), bday.clone(), Value::Int(s)],
                    )
                    .expect("salary change commits"),
                )
            })
        });

        let (pob, ada) = views_base();
        group.bench_function(BenchmarkId::new("param_attr_read", mode), |b| {
            b.iter(|| {
                black_box(
                    pob.attribute_with_args(&ada, "IncomeInYear", vec![Value::Int(2026)])
                        .expect("derivation runs"),
                )
            })
        });

        set_force_treewalk(false);
    }
    group.finish();
}

criterion_group!(benches, bench_term_eval, bench_runtime);
criterion_main!(benches);
