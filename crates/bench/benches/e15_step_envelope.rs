//! E15 — the step envelope under the phase profiler.
//!
//! Two questions about the ~115 µs hire/fire step:
//!
//! * **Overhead parity**: `profiling_off` must match the pre-profiler
//!   animate hot path (the instrumentation costs one predicted branch
//!   per phase site), and `profiling_on` bounds what `troll profile`
//!   pays (two `Instant` reads plus a histogram record per phase).
//! * **Phase breakdown**: with profiling on, where do the microseconds
//!   go? The harness churns a deep-history department and prints the
//!   sorted self-time table; EXPERIMENTS.md records the baseline. The
//!   acceptance bar is that the phases account for ≥ 90 % of the
//!   summed step latency.
//!
//! Smoke mode (`TROLL_BENCH_SMOKE=1`) shrinks both the criterion
//! sample counts and the breakdown churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll_bench::{dept_base_deep, person};

fn bench_step_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_step_envelope");
    group.sample_size(20);
    for history in [32usize, 256] {
        for profiling in [false, true] {
            let label = if profiling {
                "hire_fire_profiling_on"
            } else {
                "hire_fire_profiling_off"
            };
            group.bench_with_input(BenchmarkId::new(label, history), &history, |b, _| {
                b.iter_batched(
                    || {
                        let (mut ob, dept) = dept_base_deep(history);
                        ob.set_profiling(profiling);
                        // warm the monitor-cache entries outside the
                        // measurement, exactly as e10 does
                        ob.execute(&dept, "hire", vec![person(9999)])
                            .expect("hire succeeds");
                        ob.execute(&dept, "fire", vec![person(9999)])
                            .expect("permitted");
                        (ob, dept)
                    },
                    |(mut ob, dept)| {
                        ob.execute(&dept, "hire", vec![person(9999)])
                            .expect("hire succeeds");
                        ob.execute(&dept, "fire", vec![person(9999)])
                            .expect("permitted");
                        black_box(ob.steps_executed());
                        ob // dropped outside the measurement
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

/// Not a timing sample: churns one profiled world and prints the phase
/// table, which is the number EXPERIMENTS.md's E15 baseline quotes. The
/// accounting invariant (≥ 90 % of the summed step latency attributed)
/// is asserted here too, so the smoke run in CI guards it.
fn report_phase_breakdown(_c: &mut Criterion) {
    let smoke = std::env::var_os("TROLL_BENCH_SMOKE").is_some();
    let rounds = if smoke { 50 } else { 2000 };
    // build the world by hand so profiling covers every step from the
    // birth on — the table's denominator must only see profiled steps
    let system = troll::System::load_str(troll::specs::DEPT).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    ob.set_profiling(true);
    let date = troll::data::Value::Date(troll::data::Date::new(1991, 10, 16).expect("valid"));
    let dept = ob
        .birth(
            "DEPT",
            vec![troll::data::Value::from("deep")],
            "establishment",
            vec![date],
        )
        .expect("birth succeeds");
    for i in 0..rounds {
        ob.execute(&dept, "hire", vec![person(10_000 + i)])
            .expect("hire succeeds");
        ob.execute(&dept, "fire", vec![person(10_000 + i)])
            .expect("permitted");
    }
    let snapshot = ob.metrics().snapshot();
    let table = troll::obs::phase_table(&snapshot);
    eprintln!("e15 phase breakdown ({rounds} hire/fire rounds, growing history):\n{table}");
    let latency = snapshot.histograms["step.latency_ns"];
    let accounted: u64 = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("step.phase."))
        .map(|(_, h)| h.sum_ns)
        .sum();
    assert!(
        accounted as f64 >= 0.90 * latency.sum_ns as f64,
        "phases account for >= 90% of step latency: {accounted} vs {}",
        latency.sum_ns
    );
}

criterion_group!(benches, bench_step_envelope, report_phase_breakdown);
criterion_main!(benches);
