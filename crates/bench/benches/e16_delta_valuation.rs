//! E16 — delta valuation: incremental collection updates.
//!
//! The scaling dimension is **collection size**, which member-churn
//! workloads grow with history: a department standing at `n` distinct
//! members holds `n`-element `employees`/`hired_ever` sets, and each
//! further hire/fire updates them. Before this change (BTree payloads
//! cloned whole per update) the step cost grew with `n`; with
//! persistent collections plus delta-lowered valuation rules
//! (`employees = insert(P, employees)` becomes an O(log n) in-place
//! update) it must stay flat.
//!
//! Two harnesses:
//!
//! * **Criterion group**: hire/fire at the shallow and deep ends
//!   (4 and 2048 standing members), each in both configurations —
//!   delta lowering on (default) and [`troll_vm::set_force_recompute`]
//!   pinning every valuation rule to the full-recompute oracle. The
//!   flag is consulted when the object base is *built*, so it brackets
//!   each bench case's setup.
//! * **Report harness**: sweeps 4 → 2048 members, prints the median
//!   hire+fire latency per width, asserts the flat-cost shape (the
//!   deep end at most 2× the shallow end) and the counter contract on
//!   the shipped delta-shaped spec (`valuation.delta_applied > 0`,
//!   `valuation.recomputed == 0`).
//!
//! Smoke mode (`TROLL_BENCH_SMOKE=1`) shrinks the sample counts and
//! the sweep churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use troll_bench::{dept_base_members, person};

fn bench_growing_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_delta_valuation");
    group.sample_size(10);
    for members in [4usize, 2048] {
        for forced in [false, true] {
            let label = if forced {
                "hire_fire_recompute"
            } else {
                "hire_fire_delta"
            };
            // build-time flag: the base built for this bench case gets
            // the right configuration. One base serves every sample —
            // hire+fire of the same person keeps the standing
            // membership at exactly `n` while only the trace grows,
            // which is precisely the flat-cost claim under test
            // (rebuilding a 2048-member base per iteration would bury
            // the measurement in setup).
            troll_vm::set_force_recompute(forced);
            let (mut ob, dept) = dept_base_members(members);
            troll_vm::set_force_recompute(false);
            // warm the monitor-cache entries outside the measurement,
            // exactly as e15 does
            ob.execute(&dept, "hire", vec![person(999_999)])
                .expect("hire succeeds");
            ob.execute(&dept, "fire", vec![person(999_999)])
                .expect("permitted");
            group.bench_with_input(BenchmarkId::new(label, members), &members, |b, _| {
                b.iter(|| {
                    ob.execute(&dept, "hire", vec![person(999_999)])
                        .expect("hire succeeds");
                    ob.execute(&dept, "fire", vec![person(999_999)])
                        .expect("permitted");
                    black_box(ob.steps_executed());
                })
            });
        }
    }
    group.finish();
}

/// Not a timing sample: sweeps 4 → 2048 standing members, prints the
/// median hire/fire latency per width, and asserts the flat-cost shape
/// the delta path exists to provide — the deep end must cost at most
/// 2× the shallow end. (Each sweep point churns the same extra
/// hire/fire pair, so membership stays fixed at `n` while only the
/// trace grows by `2 × rounds` steps at every width alike.)
fn report_flat_membership(_c: &mut Criterion) {
    let smoke = std::env::var_os("TROLL_BENCH_SMOKE").is_some();
    let rounds = if smoke { 40 } else { 200 };
    let mut medians = Vec::new();
    for members in [4usize, 32, 256, 2048] {
        let (mut ob, dept) = dept_base_members(members);
        ob.execute(&dept, "hire", vec![person(999_999)])
            .expect("hire succeeds");
        ob.execute(&dept, "fire", vec![person(999_999)])
            .expect("permitted");
        let mut samples: Vec<u64> = (0..rounds)
            .map(|_| {
                let t = Instant::now();
                ob.execute(&dept, "hire", vec![person(999_999)])
                    .expect("hire succeeds");
                ob.execute(&dept, "fire", vec![person(999_999)])
                    .expect("permitted");
                t.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        eprintln!("e16 members {members:>5}: median hire+fire = {median} ns");
        medians.push((members, median));

        if members == 2048 {
            // counter contract on the shipped delta-shaped spec: under
            // the `treewalk` oracle feature nothing is compiled, so
            // neither counter can move and the check is skipped
            if cfg!(not(feature = "treewalk")) {
                let snap = ob.metrics().snapshot();
                let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
                assert!(
                    counter("valuation.delta_applied") > 0,
                    "no delta was applied on the dept churn"
                );
                assert_eq!(
                    counter("valuation.recomputed"),
                    0,
                    "a delta-shaped rule fell back to full recompute"
                );
            }
        }
    }
    let shallow = medians.first().expect("swept").1.max(1);
    let deep = medians.last().expect("swept").1;
    assert!(
        deep <= 2 * shallow,
        "step cost grew with membership: {deep} ns at 2048 vs {shallow} ns at 4 (> 2x)"
    );
}

criterion_group!(benches, bench_growing_membership, report_flat_membership);
criterion_main!(benches);
