//! E18 — group commit and follower catch-up.
//!
//! Two questions, one per group:
//!
//! * **e18_group_commit** — what does the `group[:N]` fsync policy buy
//!   on the hot commit path? Same fixed 64-event DEPT workload as E13,
//!   charged against `every_commit` (one fsync per step), `group_8` and
//!   `group_32` (one fsync per window; at the store level `group:N`
//!   self-syncs like `every-N` — the serve layer's ack deferral adds no
//!   append-path work). On tmpfs fsync is cheap; treat the gap as a
//!   lower bound on real-disk spread.
//! * **e18_follower_catchup** — how fast does a follower re-derive a
//!   world? The measured region is `run_follow --once` against a live
//!   in-process primary holding a pre-written history: TCP polls +
//!   frame verification + engine replay + re-recording through the
//!   follower's own WAL. Reported per-history-size so the per-record
//!   apply cost is readable.
//!
//! Smoke mode (`TROLL_BENCH_SMOKE=1`) shrinks samples and the shipped
//! history so CI finishes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use troll::data::{Date, Value};
use troll::repl::{run_follow, FollowOptions};
use troll::runtime::ObjectBase;
use troll::serve::{Request, Response, ServeOptions, Server};
use troll::store::{open_world, DurableSink, FsyncPolicy, StoreOptions};
use troll_bench::person;

/// Events per measured iteration of the commit-path group.
const EVENTS: usize = 64;

fn scratch(mode: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("troll-bench-e18-{}-{mode}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A fresh durable DEPT world under `policy` (mirrors E13's setup).
fn world(mode: &str, policy: FsyncPolicy) -> ObjectBase {
    let dir = scratch(mode);
    let opts = StoreOptions {
        fsync: policy,
        snapshot_every: 0, // no snapshots inside the measured region
        ..StoreOptions::default()
    };
    let (mut base, store, _) = open_world(&dir, troll::specs::DEPT, &opts).expect("open store");
    let (sink, _shared) = DurableSink::new(store);
    base.set_step_sink(Box::new(sink));
    base
}

/// The commit-path workload: birth + 63 hires, one committed step each.
fn drive(base: &mut ObjectBase) {
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let toys = base
        .birth(
            "DEPT",
            vec![Value::from("Toys")],
            "establishment",
            vec![date],
        )
        .expect("birth");
    for i in 1..EVENTS {
        base.execute(&toys, "hire", vec![person(i)]).expect("hire");
    }
}

fn bench_group_commit(c: &mut Criterion) {
    let smoke = std::env::var_os("TROLL_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("e18_group_commit");
    group.sample_size(if smoke { 10 } else { 20 });
    let modes: [(&str, FsyncPolicy); 3] = [
        ("every_commit", FsyncPolicy::EveryCommit),
        ("group_8", FsyncPolicy::Group(8)),
        ("group_32", FsyncPolicy::Group(32)),
    ];
    for (name, policy) in modes {
        group.bench_with_input(BenchmarkId::new(name, EVENTS), &policy, |b, policy| {
            b.iter_batched(
                || world(name, *policy),
                |mut base| {
                    drive(&mut base);
                    black_box(base) // dropped outside the measurement
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
    for (name, _) in modes {
        let _ = std::fs::remove_dir_all(scratch(name));
    }
}

/// Starts a primary whose world `w` holds `events` committed steps
/// (all durable — group commit acks imply the covering fsync ran).
fn primary_with_history(events: usize) -> (troll::serve::SpawnedServer, PathBuf) {
    let dir = scratch("catchup-primary");
    let opts = ServeOptions {
        durable: Some(dir.clone()),
        store: StoreOptions {
            fsync: FsyncPolicy::Group(32),
            ..StoreOptions::default()
        },
        ..Default::default()
    };
    let spawned = Server::spawn("127.0.0.1:0", troll::specs::DEPT, opts).expect("spawn primary");
    let stream = std::net::TcpStream::connect(spawned.addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut rpc = |req: &Request| {
        use std::io::{BufRead, Write};
        writer
            .write_all(format!("{}\n", req.to_json()).as_bytes())
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        match Response::parse(line.trim_end()).expect("well-formed") {
            Response::Ok(text) => text,
            Response::Err(e) => panic!("primary refused: {e}"),
        }
    };
    rpc(&Request::Open {
        world: "w".to_string(),
    });
    let submit = |line: String| Request::SubmitEvent {
        world: "w".to_string(),
        line,
    };
    rpc(&submit(
        r#"birth DEPT ("Toys") establishment (date(1991,10,16))"#.to_string(),
    ));
    for i in 1..events {
        rpc(&submit(format!(
            r#"exec |DEPT|("Toys") hire (|PERSON|("p{i}"))"#
        )));
    }
    (spawned, dir)
}

fn bench_follower_catchup(c: &mut Criterion) {
    let smoke = std::env::var_os("TROLL_BENCH_SMOKE").is_some();
    let events = if smoke { 32 } else { 256 };
    let (spawned, primary_dir) = primary_with_history(events);
    let addr = spawned.addr.to_string();

    let mut group = c.benchmark_group("e18_follower_catchup");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(events as u64));
    group.bench_function(BenchmarkId::new("follow_once", events), |b| {
        b.iter_batched(
            || {
                let dir = scratch("catchup-follower");
                let _ = std::fs::remove_dir_all(&dir);
                dir
            },
            |dir| {
                let summary = run_follow(
                    &addr,
                    &dir,
                    &FollowOptions {
                        once: true,
                        ..Default::default()
                    },
                )
                .expect("follow");
                assert_eq!(summary.records_applied, events as u64);
                black_box(summary)
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();

    // stop the primary cleanly, then sweep the scratch space
    let stream = std::net::TcpStream::connect(spawned.addr).expect("connect");
    {
        use std::io::Write;
        let mut w = &stream;
        w.write_all(format!("{}\n", Request::Shutdown.to_json()).as_bytes())
            .expect("shutdown");
    }
    let _ = spawned.join.join();
    let _ = std::fs::remove_dir_all(primary_dir);
    let _ = std::fs::remove_dir_all(scratch("catchup-follower"));
}

criterion_group!(benches, bench_group_commit, bench_follower_catchup);
criterion_main!(benches);
