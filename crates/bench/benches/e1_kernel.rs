//! E1/E2 — inheritance-schema closure and community growth
//! (DESIGN.md experiments for §3 of the paper).
//!
//! Expected shapes: ancestor closure is linear in the chain length;
//! Δ-closure on object creation is linear in the number of derived
//! aspects; community growth is quadratic overall (linear per object
//! with the BTree insert log factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::data::{ObjectId, Value};
use troll::kernel::{Community, Template, TemplateMorphism};
use troll_bench::{chain_schema, tree_schema};

fn bench_inheritance_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_inheritance_closure");
    for n in [8usize, 32, 128] {
        let chain = chain_schema(n);
        group.bench_with_input(BenchmarkId::new("ancestors_chain", n), &n, |b, _| {
            b.iter(|| black_box(chain.ancestors(&format!("t{}", n - 1))))
        });
        group.bench_with_input(BenchmarkId::new("is_a_chain", n), &n, |b, _| {
            b.iter(|| black_box(chain.is_a(&format!("t{}", n - 1), "t0")))
        });
        group.bench_with_input(BenchmarkId::new("path_morphism_chain", n), &n, |b, _| {
            b.iter(|| black_box(chain.path_morphism(&format!("t{}", n - 1), "t0")))
        });
    }
    for depth in [3usize, 5, 7] {
        let tree = tree_schema(depth);
        let leaf = format!("n{}", tree.len());
        group.bench_with_input(
            BenchmarkId::new("ancestors_tree_depth", depth),
            &depth,
            |b, _| b.iter(|| black_box(tree.ancestors(&leaf))),
        );
    }
    group.finish();
}

fn bench_object_creation_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_object_creation");
    for n in [8usize, 32, 128] {
        let schema = chain_schema(n);
        group.bench_with_input(
            BenchmarkId::new("add_object_delta_closure", n),
            &n,
            |b, _| {
                b.iter_batched(
                    || Community::new(schema.clone()),
                    |mut community| {
                        community
                            .add_object(
                                ObjectId::new(format!("t{}", n - 1), vec![Value::from("x")]),
                                &format!("t{}", n - 1),
                            )
                            .expect("identity fresh");
                        black_box(community.len())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_community_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_community_growth");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("aggregate_n_parts", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut schema = chain_schema(2);
                    schema.add_template(Template::named("part")).expect("fresh");
                    let mut community = Community::new(schema);
                    let parts: Vec<_> = (0..n)
                        .map(|i| {
                            community
                                .add_object(
                                    ObjectId::new("part", vec![Value::from(i as i64)]),
                                    "part",
                                )
                                .expect("identity fresh")
                        })
                        .collect();
                    (community, parts)
                },
                |(mut community, parts)| {
                    let morphisms = parts
                        .into_iter()
                        .map(|p| (TemplateMorphism::identity_on("f", "t1", "part"), p))
                        .collect();
                    community
                        .aggregate(
                            ObjectId::new("t1", vec![Value::from("whole")]),
                            "t1",
                            morphisms,
                        )
                        .expect("valid aggregation");
                    black_box(community.interactions().len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inheritance_closure,
    bench_object_creation_closure,
    bench_community_growth
);
criterion_main!(benches);
