//! E3/E5 — event throughput, permission checking (including the
//! DESIGN.md decision-2 ablation: full-history evaluation vs the
//! incremental monitor) and event-calling propagation.
//!
//! Expected shapes: per-event cost grows linearly with the object's
//! history length (the `sometime` permission scans the trace and the
//! committed step snapshots the state); the incremental monitor is
//! O(|φ|) per step regardless of history; calling propagation is linear
//! in the transaction length.
//!
//! Methodology note: event execution mutates the base, so measuring a
//! *successful* event per iteration would let the history grow during
//! sampling. Successful-path benches therefore use `iter_batched` with
//! reduced sample counts (setup cost is excluded from the measurement);
//! the permission benches measure a **refused** event — permissions are
//! fully evaluated, the step rolls back, and the base is unchanged,
//! which allows unbatched, precise sampling.
//!
//! The runtime now answers permission/constraint checks through the
//! incremental monitor cache by default. `bench_permission_check`
//! disables it to keep measuring the reference scan (the decision-2
//! baseline); `bench_monitored_path` measures the shipped default
//! against that baseline on identical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::data::{MapEnv, Term, Value};
use troll::temporal::{eval_now, EventPattern, Formula, Monitor};
use troll::System;
use troll_bench::{dept_base_deep, dept_base_with, person};

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_event_throughput");
    group.sample_size(20);
    // cost of one hire event as the standing history grows
    for history in [4usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("hire_vs_history", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || dept_base_with(1, history),
                    |(mut ob, depts)| {
                        ob.execute(&depts[0], "hire", vec![person(9999)])
                            .expect("hire succeeds");
                        black_box(ob.steps_executed());
                        ob // dropped outside the measurement
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // cost of one event as the number of co-resident objects grows
    // (should be ~flat: execution touches one object)
    for objects in [1usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("hire_vs_population", objects),
            &objects,
            |b, _| {
                b.iter_batched(
                    || dept_base_with(objects, 4),
                    |(mut ob, depts)| {
                        ob.execute(&depts[0], "hire", vec![person(9999)])
                            .expect("hire succeeds");
                        black_box(ob.steps_executed());
                        ob // dropped outside the measurement
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_permission_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_permission_check");
    // { sometime(after(hire(P))) } fire(P) — evaluated through the full
    // engine against a never-hired person: the permission scans the
    // entire history, the step is refused, and the base stays unchanged,
    // so plain `iter` sampling is exact. The monitor cache is disabled
    // so this keeps measuring the reference scan evaluator.
    for history in [4usize, 32, 128, 256] {
        let (mut ob, depts) = dept_base_with(1, history);
        ob.set_monitor_cache_enabled(false);
        group.bench_with_input(
            BenchmarkId::new("refused_fire_vs_history", history),
            &history,
            |b, _| {
                b.iter(|| {
                    let err = ob
                        .execute(&depts[0], "fire", vec![person(999_999)])
                        .expect_err("never hired");
                    black_box(err)
                })
            },
        );
        // permitted fire of the earliest hire: same scan, worst case for
        // the linear search (found at position 1); measured batched
        // because success commits a step
        group.sample_size(20);
        group.bench_with_input(
            BenchmarkId::new("granted_fire_vs_history", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || {
                        let (mut ob, depts) = dept_base_with(1, history);
                        ob.set_monitor_cache_enabled(false);
                        (ob, depts)
                    },
                    |(mut ob, depts)| {
                        ob.execute(&depts[0], "fire", vec![person(0)])
                            .expect("permitted");
                        black_box(ob.steps_executed());
                        ob // dropped outside the measurement
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// The shipped hot path: the same permission-checked events as
/// `bench_permission_check`, but answered by the runtime's incremental
/// monitor cache (the default), side by side with the forced scan on
/// identical workloads.
///
/// The base is built by [`dept_base_deep`] — history deep, state
/// bounded — so the curves isolate exactly the cost the monitor cache
/// removes: the temporal scan over the trace. (`dept_base_with` grows
/// the attribute state together with the history, and per-event
/// working-state/snapshot clones then dominate both paths equally; the
/// `hire_vs_history` throughput bench covers that regime.)
///
/// Refused fires roll back and leave the base unchanged, so a
/// persistent base with plain `iter` is exact; the first (unmeasured)
/// refusal warms the cache entry, after which each check is one O(|φ|)
/// peek — the curve should be flat in history. Granted paths are
/// batched with the cache warmed **in setup** (a hire/fire pair on the
/// measured person), so the timed routine pays peeks and commit-time
/// monitor feeding, never the one-off lazy replay.
fn bench_monitored_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_monitored_path");
    for history in [4usize, 32, 128, 256] {
        for (label, cache_on) in [("scan", false), ("monitored", true)] {
            // refused fire, persistent base
            let (mut ob, dept) = dept_base_deep(history);
            ob.set_monitor_cache_enabled(cache_on);
            let err = ob
                .execute(&dept, "fire", vec![person(999_999)])
                .expect_err("never hired"); // warms the cache entry
            black_box(err);
            group.bench_with_input(
                BenchmarkId::new(format!("refused_fire_{label}"), history),
                &history,
                |b, _| {
                    b.iter(|| {
                        let err = ob
                            .execute(&dept, "fire", vec![person(999_999)])
                            .expect_err("never hired");
                        black_box(err)
                    })
                },
            );
        }
        // granted hire+fire pair, batched with warm setup
        group.sample_size(20);
        for (label, cache_on) in [("scan", false), ("monitored", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("granted_hire_fire_{label}"), history),
                &history,
                |b, _| {
                    b.iter_batched(
                        || {
                            let (mut ob, dept) = dept_base_deep(history);
                            ob.set_monitor_cache_enabled(cache_on);
                            // warm: creates and replays the fire(p9999)
                            // monitor outside the measurement
                            ob.execute(&dept, "hire", vec![person(9999)])
                                .expect("hire succeeds");
                            ob.execute(&dept, "fire", vec![person(9999)])
                                .expect("permitted");
                            (ob, dept)
                        },
                        |(mut ob, dept)| {
                            ob.execute(&dept, "hire", vec![person(9999)])
                                .expect("hire succeeds");
                            ob.execute(&dept, "fire", vec![person(9999)])
                                .expect("permitted");
                            black_box(ob.steps_executed());
                            ob // dropped outside the measurement
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// Ablation (DESIGN.md decision 2): evaluating
/// `sometime(after(hire(P)))` by full-history scan vs the incremental
/// monitor, on the same animator-produced trace.
fn bench_monitor_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ablation_monitor");
    let formula = Formula::sometime(Formula::after(EventPattern::new(
        "hire",
        vec![Some(Term::var("P"))],
    )));
    for history in [16usize, 128, 512] {
        let (ob, depts) = dept_base_with(1, history);
        let trace = ob.instance(&depts[0]).expect("exists").trace().clone();
        let mut env = MapEnv::new();
        env.bind("P", person(history / 2));

        group.bench_with_input(
            BenchmarkId::new("full_history_eval", history),
            &history,
            |b, _| b.iter(|| black_box(eval_now(&formula, &trace, &env).expect("evaluates"))),
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_monitor_step", history),
            &history,
            |b, _| {
                // steady-state monitor: cost of ONE more step after the
                // history was consumed (the quantity the runtime pays)
                let mut monitor = Monitor::new(&formula).expect("monitorable");
                for step in &trace {
                    monitor.step(step, &env).expect("evaluates");
                }
                let last = trace.last().expect("nonempty").clone();
                b.iter(|| {
                    let mut m = monitor.clone();
                    black_box(m.step(&last, &env).expect("evaluates"))
                })
            },
        );
    }
    group.finish();
}

fn bench_event_calling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_event_calling");
    group.sample_size(30);
    // transaction calling of growing length: e >> (e1; …; ek)
    for fanout in [1usize, 8, 32] {
        let calls: Vec<String> = (0..fanout).map(|i| format!("sub{i}")).collect();
        let events: Vec<String> = (0..fanout).map(|i| format!("sub{i};")).collect();
        let rules: Vec<String> = (0..fanout)
            .map(|i| format!("[sub{i}] n = n + 1;"))
            .collect();
        let src = format!(
            r#"
object hub
  template
    attributes n: int;
    events
      birth init;
      trigger;
      {}
    valuation
      [init] n = 0;
      {}
    interaction
      trigger >> ({});
end object hub;
"#,
            events.join("\n      "),
            rules.join("\n      "),
            calls.join("; ")
        );
        let system = System::load_str(&src).expect("synthetic spec loads");
        group.bench_with_input(
            BenchmarkId::new("transaction_fanout", fanout),
            &fanout,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut ob = system.object_base().expect("base");
                        let hub = ob.singleton("hub").expect("singleton");
                        ob.execute(&hub, "init", vec![]).expect("init");
                        (ob, hub)
                    },
                    |(mut ob, hub)| {
                        let report = ob.execute(&hub, "trigger", vec![]).expect("fires");
                        black_box(report.occurrences.len());
                        ob
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // cross-object global interaction: DEPT.new_manager >> PERSON.become_manager
    let system = System::load_str(troll::specs::COMPANY).expect("shipped spec loads");
    group.bench_function("global_interaction_step", |b| {
        b.iter_batched(
            || {
                let mut ob = system.object_base().expect("base");
                let bday = Value::Date(troll::data::Date::new(1960, 1, 1).expect("valid"));
                let ada = ob
                    .birth(
                        "PERSON",
                        vec![Value::from("ada"), bday],
                        "create",
                        vec![
                            Value::Money(troll::data::Money::from_major(9000)),
                            Value::from("R"),
                        ],
                    )
                    .expect("person");
                let toys = ob
                    .birth(
                        "DEPT",
                        vec![Value::from("Toys")],
                        "establishment",
                        vec![Value::Date(
                            troll::data::Date::new(1991, 1, 1).expect("valid"),
                        )],
                    )
                    .expect("dept");
                (ob, toys, ada)
            },
            |(mut ob, toys, ada)| {
                let report = ob
                    .execute(&toys, "new_manager", vec![Value::Id(ada)])
                    .expect("appointment");
                black_box(report.occurrences.len());
                ob
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation (DESIGN.md decision 1): the calling closure scans the
/// class's interaction rules linearly per occurrence. Measures trigger
/// cost as the number of *non-matching* rules grows — the case a
/// trigger-indexed rule table would optimize.
fn bench_rule_scan_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_ablation_rule_scan");
    group.sample_size(30);
    for rules in [1usize, 32, 128] {
        let decls: Vec<String> = (0..rules).map(|i| format!("ev{i};")).collect();
        let dead_rules: Vec<String> = (0..rules).map(|i| format!("ev{i} >> ev{i};")).collect();
        let src = format!(
            r#"
object hub
  template
    attributes n: int;
    events
      birth init;
      trigger;
      bump;
      {}
    valuation
      [init] n = 0;
      [bump] n = n + 1;
    interaction
      trigger >> bump;
      {}
end object hub;
"#,
            decls.join(
                "
      "
            ),
            dead_rules.join(
                "
      "
            )
        );
        let system = System::load_str(&src).expect("synthetic spec loads");
        group.bench_with_input(
            BenchmarkId::new("nonmatching_rules", rules),
            &rules,
            |b, _| {
                b.iter_batched(
                    || {
                        let mut ob = system.object_base().expect("base");
                        let hub = ob.singleton("hub").expect("singleton");
                        ob.execute(&hub, "init", vec![]).expect("init");
                        (ob, hub)
                    },
                    |(mut ob, hub)| {
                        let report = ob.execute(&hub, "trigger", vec![]).expect("fires");
                        black_box(report.occurrences.len());
                        ob
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_permission_check,
    bench_monitored_path,
    bench_monitor_ablation,
    bench_event_calling,
    bench_rule_scan_ablation
);
criterion_main!(benches);
