//! E6 — interface (view) evaluation vs population size.
//!
//! Expected shapes: projection and selection views are linear in the
//! base population; the join view is O(|PERSON|·|DEPT|) pairs (here one
//! department, so linear with a larger constant: each pair evaluates the
//! membership predicate); derived-attribute views pay one derivation
//! evaluation per row. E8 — module-guarded access adds only a set
//! lookup over direct view evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::System;
use troll_bench::views_base_with;

fn bench_view_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_view_eval");
    for n in [8usize, 64, 256] {
        let ob = views_base_with(n);
        group.bench_with_input(BenchmarkId::new("projection", n), &n, |b, _| {
            b.iter(|| black_box(ob.view("SAL_EMPLOYEE").expect("evaluates").len()))
        });
        group.bench_with_input(BenchmarkId::new("selection", n), &n, |b, _| {
            b.iter(|| black_box(ob.view("RESEARCH_EMPLOYEE").expect("evaluates").len()))
        });
        group.bench_with_input(BenchmarkId::new("derived_attr", n), &n, |b, _| {
            b.iter(|| black_box(ob.view("SAL_EMPLOYEE2").expect("evaluates").len()))
        });
        group.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| {
            b.iter(|| black_box(ob.view("WORKS_FOR").expect("evaluates").len()))
        });
    }
    group.finish();
}

/// Ablation (DESIGN.md decision 3): the WORKS_FOR join evaluated by the
/// naive population-product nested loop vs the membership-indexed path.
fn bench_join_ablation(c: &mut Criterion) {
    use troll::runtime::JoinStrategy;
    let mut group = c.benchmark_group("e6_ablation_join");
    for n in [8usize, 64, 256] {
        let ob = views_base_with(n);
        group.bench_with_input(BenchmarkId::new("naive_product", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    ob.view_with_strategy("WORKS_FOR", JoinStrategy::Naive)
                        .expect("evaluates")
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("membership_indexed", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    ob.view_with_strategy("WORKS_FOR", JoinStrategy::Indexed)
                        .expect("evaluates")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_module_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_module_access");
    let system = System::load_str(troll::specs::MODULES).expect("shipped spec loads");
    let modules = system.modules();
    let personnel = modules.module("PERSONNEL").expect("declared");
    let mut ob = system.object_base().expect("base");
    for i in 0..64 {
        ob.birth(
            "PERSON",
            vec![troll::data::Value::from(format!("p{i}"))],
            "create",
            vec![
                troll::data::Value::Money(troll::data::Money::from_major(1000 + i)),
                troll::data::Value::from("Research"),
            ],
        )
        .expect("birth");
    }
    group.bench_function("direct_view", |b| {
        b.iter(|| black_box(ob.view("SAL_EMPLOYEE").expect("evaluates").len()))
    });
    group.bench_function("guarded_view", |b| {
        b.iter_batched(
            || (),
            |_| {
                let guard = personnel.open("SALARY", &mut ob).expect("schema exported");
                black_box(guard.view("SAL_EMPLOYEE").expect("evaluates").len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_view_eval,
    bench_join_ablation,
    bench_module_access
);
criterion_main!(benches);
