//! E7 — refinement checking cost vs scenario count and trace length.
//!
//! Expected shapes: linear in the total number of scenario steps (each
//! step executes one abstract and one concrete event and compares the
//! observation vector); behaviour simulation is a small constant on the
//! free templates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use troll::refine::{check_refinement, Implementation, Scenario, ValuePool};
use troll::System;

fn bench_refinement_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_refinement_check");
    group.sample_size(20);
    let system = System::load_str(troll::specs::EMPLOYMENT).expect("shipped spec loads");
    let model = system.model().clone();
    let setup = |ob: &mut troll::runtime::ObjectBase| {
        let rel = ob.singleton("emp_rel").expect("singleton");
        ob.execute(&rel, "CreateEmpRel", vec![])?;
        Ok(())
    };
    let imp = Implementation::new("EMPLOYEE", "EMPL_IMPL").with_interface("EMPL");

    for scenario_count in [2usize, 8, 24] {
        let scenarios = Scenario::generate(
            &model.classes["EMPLOYEE"],
            &ValuePool::default(),
            scenario_count,
            6,
            1991,
        );
        group.bench_with_input(
            BenchmarkId::new("scenarios", scenario_count),
            &scenario_count,
            |b, _| {
                b.iter(|| {
                    let report =
                        check_refinement(&model, &imp, &scenarios, &setup).expect("check runs");
                    assert!(report.is_refinement());
                    black_box(report.steps_checked)
                })
            },
        );
    }
    for trace_len in [2usize, 8, 24] {
        let scenarios = Scenario::generate(
            &model.classes["EMPLOYEE"],
            &ValuePool::default(),
            4,
            trace_len,
            1991,
        );
        group.bench_with_input(
            BenchmarkId::new("trace_length", trace_len),
            &trace_len,
            |b, _| {
                b.iter(|| {
                    let report =
                        check_refinement(&model, &imp, &scenarios, &setup).expect("check runs");
                    black_box(report.steps_checked)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refinement_check);
criterion_main!(benches);
