//! E9 — front-end throughput: lexing+parsing and full analysis of the
//! shipped paper corpus and synthetic specs of growing size.
//!
//! Expected shapes: parsing is linear in source length; analysis is
//! linear in the number of declarations (name tables are BTreeMaps, so
//! with a log factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use troll_bench::synthetic_spec;

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_paper_corpus");
    for (name, src) in troll::specs::ALL {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", name), src, |b, src| {
            b.iter(|| black_box(troll::lang::parse(src).expect("corpus parses")))
        });
        group.bench_with_input(
            BenchmarkId::new("parse_and_analyze", name),
            src,
            |b, src| {
                b.iter(|| {
                    let spec = troll::lang::parse(src).expect("corpus parses");
                    black_box(troll::lang::analyze(&spec).expect("corpus analyzes"))
                })
            },
        );
    }
    group.finish();
}

fn bench_synthetic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_synthetic_scaling");
    for n in [4usize, 16, 64] {
        let src = synthetic_spec(n);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("classes", n), &src, |b, src| {
            b.iter(|| {
                let spec = troll::lang::parse(src).expect("synthetic parses");
                black_box(troll::lang::analyze(&spec).expect("synthetic analyzes"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus, bench_synthetic_scaling);
criterion_main!(benches);
