//! Shared workload generators for the troll-rs benchmark harness.
//!
//! Every generator is deterministic so criterion runs are comparable
//! across machines; EXPERIMENTS.md records the measured shapes.

use troll::data::{Date, ObjectId, Value};
use troll::kernel::{InheritanceSchema, Template, TemplateMorphism};
use troll::runtime::ObjectBase;
use troll::System;

/// Builds a linear inheritance chain `t0 ← t1 ← … ← t(n-1)` (each
/// specializing its predecessor) — the worst case for ancestor closure.
pub fn chain_schema(n: usize) -> InheritanceSchema {
    let mut schema = InheritanceSchema::new();
    schema
        .add_template(Template::named("t0"))
        .expect("fresh schema");
    for i in 1..n {
        schema
            .add_specialization(
                Template::named(format!("t{i}")),
                TemplateMorphism::identity_on(
                    format!("m{i}"),
                    format!("t{i}"),
                    format!("t{}", i - 1),
                ),
            )
            .expect("chain is acyclic");
    }
    schema
}

/// Builds a binary-tree inheritance schema of the given depth (Example
/// 3.2 shape, scaled).
pub fn tree_schema(depth: usize) -> InheritanceSchema {
    let mut schema = InheritanceSchema::new();
    schema.add_template(Template::named("n1")).expect("fresh");
    let mut next = 2usize;
    let mut frontier = vec![1usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::new();
        for parent in frontier {
            for _ in 0..2 {
                let id = next;
                next += 1;
                schema
                    .add_specialization(
                        Template::named(format!("n{id}")),
                        TemplateMorphism::identity_on(
                            format!("m{id}"),
                            format!("n{id}"),
                            format!("n{parent}"),
                        ),
                    )
                    .expect("tree is acyclic");
                new_frontier.push(id);
            }
        }
        frontier = new_frontier;
    }
    schema
}

/// Loads the DEPT spec and births `n` departments, each with
/// `history_len` hire events already executed — the standing population
/// for throughput and permission benchmarks.
pub fn dept_base_with(n: usize, history_len: usize) -> (ObjectBase, Vec<ObjectId>) {
    let system = System::load_str(troll::specs::DEPT).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let mut depts = Vec::with_capacity(n);
    for i in 0..n {
        let id = ob
            .birth(
                "DEPT",
                vec![Value::from(format!("d{i}"))],
                "establishment",
                vec![date.clone()],
            )
            .expect("birth succeeds");
        for j in 0..history_len {
            ob.execute(&id, "hire", vec![person(j)])
                .expect("hire succeeds");
        }
        depts.push(id);
    }
    (ob, depts)
}

/// Like [`dept_base_with`], but the history is **deep, not wide**: one
/// department alternately hires and fires the *same* person, so the
/// trace grows to `history_len` steps while the attribute state stays
/// bounded (at most one employee). This isolates history-depth costs
/// (temporal scans over the trace) from state-size costs (snapshot and
/// working-state clones), which `dept_base_with` deliberately conflates
/// by hiring `history_len` distinct persons.
pub fn dept_base_deep(history_len: usize) -> (ObjectBase, ObjectId) {
    let system = System::load_str(troll::specs::DEPT).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let id = ob
        .birth(
            "DEPT",
            vec![Value::from("deep")],
            "establishment",
            vec![date],
        )
        .expect("birth succeeds");
    for j in 0..history_len {
        if j % 2 == 0 {
            ob.execute(&id, "hire", vec![person(0)])
                .expect("hire succeeds");
        } else {
            ob.execute(&id, "fire", vec![person(0)])
                .expect("fire permitted");
        }
    }
    (ob, id)
}

/// One department with `n` *distinct* standing members: the history is
/// `n` hire steps and the `employees`/`hired_ever` sets hold `n`
/// elements. This is the delta-valuation scaling shape (E16): each
/// further hire/fire updates an `n`-element collection, so a
/// full-recompute valuation pays O(n) per step while the incremental
/// path stays O(log n) — unlike [`dept_base_deep`], whose deep trace
/// keeps the collections tiny.
pub fn dept_base_members(n: usize) -> (ObjectBase, ObjectId) {
    let system = System::load_str(troll::specs::DEPT).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    let date = Value::Date(Date::new(1991, 10, 16).expect("valid date"));
    let id = ob
        .birth(
            "DEPT",
            vec![Value::from("members")],
            "establishment",
            vec![date],
        )
        .expect("birth succeeds");
    for i in 0..n {
        ob.execute(&id, "hire", vec![person(i)])
            .expect("hire succeeds");
    }
    (ob, id)
}

/// A PERSON identity value for workloads.
pub fn person(i: usize) -> Value {
    Value::Id(ObjectId::new("PERSON", vec![Value::from(format!("p{i}"))]))
}

/// Loads the views spec with `n` persons (half in Research) and one
/// department employing every third person.
pub fn views_base_with(n: usize) -> ObjectBase {
    let system = System::load_str(troll::specs::VIEWS).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    for i in 0..n {
        let dept = if i % 2 == 0 { "Research" } else { "Sales" };
        ob.birth(
            "PERSON",
            vec![Value::from(format!("p{i}"))],
            "create",
            vec![
                Value::Money(troll::data::Money::from_major(1000 + i as i64)),
                Value::from(dept),
            ],
        )
        .expect("birth succeeds");
    }
    let research = ob
        .birth("DEPT", vec![Value::from("R")], "establishment", vec![])
        .expect("dept birth");
    for i in (0..n).step_by(3) {
        ob.execute(
            &research,
            "hire",
            vec![Value::Id(ObjectId::new(
                "PERSON",
                vec![Value::from(format!("p{i}"))],
            ))],
        )
        .expect("hire succeeds");
    }
    ob
}

/// Synthesizes a TROLL source with `n` DEPT-like classes (for the parser
/// throughput benchmark E9).
pub fn synthetic_spec(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!(
            r#"
object class DEPT{i}
  identification id: string;
  template
    attributes
      est_date: date;
      employees: set(|PERSON|);
    events
      birth establishment(date);
      death closure;
      hire(|PERSON|);
      fire(|PERSON|);
    valuation
      variables P: |PERSON|; d: date;
      [establishment(d)] est_date = d;
      [establishment(d)] employees = {{}};
      [hire(P)] employees = insert(P, employees);
      [fire(P)] employees = remove(P, employees);
    permissions
      variables P: |PERSON|;
      {{ sometime(after(hire(P))) }} fire(P);
end object class DEPT{i};
"#
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_schema_builds() {
        let s = chain_schema(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.ancestors("t9").len(), 9);
    }

    #[test]
    fn tree_schema_builds() {
        let s = tree_schema(3);
        assert_eq!(s.len(), 1 + 2 + 4 + 8);
    }

    #[test]
    fn dept_base_builds() {
        let (ob, depts) = dept_base_with(3, 5);
        assert_eq!(depts.len(), 3);
        assert_eq!(ob.class_card("DEPT"), 3);
        assert_eq!(
            ob.attribute(&depts[0], "employees")
                .unwrap()
                .as_set()
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn views_base_builds() {
        let ob = views_base_with(9);
        assert_eq!(ob.class_card("PERSON"), 9);
        assert_eq!(ob.view("WORKS_FOR").unwrap().len(), 3);
    }

    #[test]
    fn synthetic_spec_parses() {
        let system = System::load_str(&synthetic_spec(4)).unwrap();
        assert_eq!(system.model().classes.len(), 4);
    }
}
