//! Counters oracle: the monitored path and the scan path must agree.
//!
//! The monitor cache is a pure optimization (DESIGN.md decision 2) —
//! running the same workload with the cache on and off must grant and
//! refuse exactly the same permission checks. The obs counters make
//! that assertable end-to-end: `permissions.granted`/`.refused` must be
//! identical across modes, while `permissions.path.monitored`/`.scan`
//! record which evaluator answered.

use troll::data::{Date, Value};
use troll::runtime::MetricsSnapshot;
use troll_bench::person;

/// Runs a fixed workload mixing granted hires/fires with refused fires
/// and returns the run's metrics snapshot. The cache mode is set before
/// the first event so every check in the run is attributed to it.
fn run_scenario(cache_on: bool) -> MetricsSnapshot {
    let system = troll::System::load_str(troll::specs::DEPT).expect("shipped spec loads");
    let mut ob = system.object_base().expect("object base");
    ob.set_monitor_cache_enabled(cache_on);
    let dept = ob
        .birth(
            "DEPT",
            vec![Value::from("oracle")],
            "establishment",
            vec![Value::Date(Date::new(1991, 10, 16).expect("valid date"))],
        )
        .expect("birth succeeds");
    for round in 0..6 {
        ob.execute(&dept, "hire", vec![person(round)])
            .expect("hire succeeds");
        ob.execute(&dept, "fire", vec![person(round)])
            .expect("fire permitted after hire");
        // firing someone never hired is refused by the permission
        ob.execute(&dept, "fire", vec![person(10_000 + round)])
            .expect_err("never hired");
    }
    ob.metrics().snapshot()
}

#[test]
fn monitored_and_scan_paths_agree_on_grant_refusal_totals() {
    let monitored = run_scenario(true);
    let scan = run_scenario(false);

    for key in [
        "permissions.granted",
        "permissions.refused",
        "steps.committed",
        "steps.rolled_back",
        "events.occurred",
        "valuation.updates",
    ] {
        assert_eq!(
            monitored.counters[key], scan.counters[key],
            "`{key}` must not depend on the evaluator\nmonitored: {:?}\nscan: {:?}",
            monitored.counters, scan.counters
        );
    }

    // the workload actually exercised both outcomes
    assert!(monitored.counters["permissions.granted"] > 0);
    assert!(monitored.counters["permissions.refused"] > 0);

    // path counters partition the permission checks in both modes …
    for snap in [&monitored, &scan] {
        assert_eq!(
            snap.counters["permissions.path.monitored"] + snap.counters["permissions.path.scan"],
            snap.counters["permissions.granted"] + snap.counters["permissions.refused"],
            "every check is attributed to exactly one path"
        );
    }
    // … and the cache setting decides which path answers
    assert!(monitored.counters["permissions.path.monitored"] > 0);
    assert_eq!(scan.counters["permissions.path.monitored"], 0);
    assert_eq!(
        scan.counters["permissions.path.scan"],
        scan.counters["permissions.granted"] + scan.counters["permissions.refused"]
    );

    // cache accounting is consistent with the checks it answered: the
    // DEPT workload has no constraints or role contexts, so every cache
    // consultation is a permission check, a cache hit answers on the
    // monitored path and a fallback degrades to the scan
    for snap in [&monitored, &scan] {
        assert_eq!(
            snap.counters["monitor_cache.hits"],
            snap.counters["permissions.path.monitored"]
        );
        assert_eq!(
            snap.counters["monitor_cache.fallbacks"],
            snap.counters["permissions.path.scan"]
        );
    }
}

#[test]
fn step_latency_histogram_records_every_step() {
    let snap = run_scenario(true);
    let h = &snap.histograms["step.latency_ns"];
    assert_eq!(
        h.count,
        snap.counters["steps.committed"] + snap.counters["steps.rolled_back"],
        "one latency sample per step, committed or not"
    );
    assert!(h.p50_ns > 0 && h.p99_ns >= h.p50_ns);
}
