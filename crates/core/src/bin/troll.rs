//! The `troll` command-line tool: check, format, inspect and animate
//! TROLL specifications.
//!
//! ```text
//! troll check <file.troll>…       parse + analyze, report errors
//! troll fmt <file.troll>          print the normalized source
//! troll info <file.troll>         summarize classes/interfaces/modules
//! troll graph <file.troll>        emit a Graphviz DOT system diagram
//! troll animate [--stats] [--trace <out.jsonl>] [--shards N]
//!               [--durable <dir>] [--fsync <policy>] [--snapshot-every N]
//!               [--profile <out>] [--metrics <out>]
//!               [--stats-stream <out.jsonl>] [--stats-every N]
//!               <file> <script>      run an animation script
//! troll profile [animate flags] <file> <script>
//!                                 animate with the phase profiler on, then
//!                                 print the per-phase self-time table
//! troll recover [--stats] [--dump] <dir>
//!                                 rebuild the world from a durable directory
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (parse/analyze/execution
//! errors), `2` usage error (unknown command, bad arity, unknown flag).
//!
//! Animation scripts are line-oriented; `--` starts a comment. Terms use
//! TROLL expression syntax, identities the `|CLASS|(key…)` literal form:
//!
//! ```text
//! birth DEPT ("Toys") establishment (date(1991,10,16))
//! exec  |DEPT|("Toys") hire (|PERSON|("ada"))
//! show  |DEPT|("Toys") employees
//! view  SAL_EMPLOYEE
//! call  SAL_EMPLOYEE |PERSON|("ada") IncreaseSalary ()
//! obligations |TASK|("t1")
//! tick
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use troll::runtime::{ObjectBase, TraceWriter};
use troll::store::{DurableSink, FsyncPolicy, StoreOptions};
use troll::System;
use troll_obs::{Fanout, Observer, StatsSnapshotSink};

const GENERAL_USAGE: &str = "usage: troll <command> [args]
commands:
  check <file.troll>…                          parse + analyze, report errors
  fmt <file.troll>                             print the normalized source
  info <file.troll>                            summarize classes/interfaces/modules
  graph <file.troll>                           emit a Graphviz DOT system diagram
  animate [--stats] [--trace <out>] [--shards N] [--durable <dir>]
          [--fsync <policy>] [--snapshot-every N] [--profile <out>]
          [--metrics <out>] [--stats-stream <out>] [--stats-every N]
          <file> <script>                      run an animation script
  profile [animate flags] <file> <script>      animate with phase profiling on,
                                               then print the self-time table
  recover [--stats] [--dump] <dir>             rebuild the world from a durable directory
  serve [--addr <ip:port>] [--workers N] [--durable <dir>] [--fsync <policy>]
        [--snapshot-every N] [--segment-bytes N] [--compact-after <bytes>]
        <file.troll>                           host many worlds of one spec over TCP
  serve --selftest [--worlds N] [--conns N] [--events N] [--durable <dir>]
        [<file.troll>]                         run the built-in load driver
  follow [--listen <ip:port>] [--poll-ms N] [--once] [--fsync <policy>]
         <addr> <dir>                          replicate a serve primary into <dir>
  compact [--dry-run] <dir>                    snapshot + prune a durable directory";

/// Prints the usage message for `command` (or the general one) and
/// returns the usage exit code (2).
fn usage(command: Option<&str>) -> ExitCode {
    let msg = match command {
        Some("check") => "usage: troll check <file.troll>…\nparse + analyze each file and report errors; fails if any file fails",
        Some("fmt") => "usage: troll fmt <file.troll>\nprint the normalized (pretty-printed) source to stdout",
        Some("info") => "usage: troll info <file.troll>\nsummarize classes, interfaces and modules of a specification",
        Some("graph") => "usage: troll graph <file.troll>\nemit a Graphviz DOT diagram of the system structure",
        Some("animate") | Some("profile") => "usage: troll animate [--stats] [--trace <out.jsonl>] [--shards N] [--durable <dir>] [--fsync <policy>] [--snapshot-every N] [--profile <out>] [--metrics <out>] [--stats-stream <out.jsonl>] [--stats-every N] <file.troll> <script>\n       troll profile [same flags] <file.troll> <script>\nrun an animation script against the specification
  --stats           print runtime metrics (steps, permissions, monitor cache, latency) after the run
  --trace <file>    stream one JSON object per observability event to <file>
  --shards <N>      execute consecutive birth/exec lines as parallel batches over N shards
                    (deterministic: observationally equal to the sequential run)
  --durable <dir>   log every committed step to <dir> (WAL + snapshots); an existing
                    directory is crash-recovered first and the run continues its history
  --fsync <policy>  every-commit | every-<N> | group[:<N>] | on-close (with --durable; default every-commit)
  --snapshot-every <N>  write a world snapshot every N steps (with --durable; default 256)
  --profile <file>  enable the phase profiler and write its self-time table to <file>
                    (`troll profile` enables it and prints the table to stdout)
  --metrics <file>  write all metrics in Prometheus text format to <file> after the run
  --stats-stream <file>  append a JSON metrics snapshot to <file> every N committed steps
  --stats-every <N>      snapshot cadence for --stats-stream (default 256)",
        Some("recover") => "usage: troll recover [--stats] [--dump] <dir>\nrebuild the object base from a durable directory (latest valid snapshot + WAL tail)
and print a summary line; torn or corrupt tail frames are skipped, not fatal
  --stats           print runtime metrics of the recovered world (includes store.* counters)
  --dump            print the recovered world state, one deterministic line per fact",
        Some("serve") => "usage: troll serve [--addr <ip:port>] [--workers N] [--durable <dir>] [--fsync <policy>] [--snapshot-every N] [--segment-bytes N] [--compact-after <bytes>] <file.troll>
       troll serve --selftest [--worlds N] [--conns N] [--events N] [--durable <dir>] [<file.troll>]
host many independent worlds of one specification in a single process, speaking a
newline-delimited JSON protocol (open / submit-event / query-attr / query-view /
stats / shutdown — send {\"op\":\"shutdown\"} to stop the server cleanly; durable
servers additionally answer repl-spec / repl-worlds / repl-poll for `troll follow`)
  --addr <ip:port>  listen address (default 127.0.0.1:7877; port 0 picks a free port)
  --workers <N>     worker threads executing world steps (default: CPU count, min 2)
  --durable <dir>   give every world its own WAL+snapshot store under <dir>/worlds/<id>;
                    existing worlds crash-recover on open
  --fsync <policy>  every-commit | every-<N> | group[:<N>] | on-close (with --durable;
                    default every-commit); `group` batches commits into one fsync per
                    window and defers acks until their fsync completes (default window 32)
  --snapshot-every <N>  snapshot cadence per world (with --durable; default 1024)
  --segment-bytes <N>   WAL segment rotation cap per world (with --durable; default 4 MiB)
  --compact-after <bytes>  background-compact a world once it accrues this many WAL
                    bytes past its newest snapshot (with --durable; jittered per world)
  --selftest        spawn an in-process server and drive it with the built-in load
                    generator, then print events/sec and the latency histogram
                    (defaults to the shipped DEPT spec; TROLL_BENCH_SMOKE=1 shrinks it)
  --worlds/--conns/--events   selftest load shape (default 1000 worlds x 100 events over 8 conns)",
        Some("follow") => "usage: troll follow [--listen <ip:port>] [--poll-ms N] [--once] [--fsync <policy>] <addr> <dir>
tail a durable `troll serve` primary at <addr>: replay every world's committed log
into <dir> (a valid --durable root — promote by pointing `troll serve --durable` or
`troll recover` at it when the primary dies)
  --listen <ip:port>  serve read-only query-attr / query-view / stats while tailing
  --poll-ms <N>       sleep between poll rounds once caught up (default 100)
  --once              catch up once and exit instead of tailing until the primary dies
  --fsync <policy>    the follower's own WAL fsync cadence (default every-64; the
                      follower acknowledges nothing, so this only bounds local replay)",
        Some("compact") => "usage: troll compact [--dry-run] <dir>
snapshot a durable world directory at its current WAL cursor, then prune every
log segment the second-newest snapshot no longer needs
  --dry-run           report what a compaction would do without writing anything",
        _ => GENERAL_USAGE,
    };
    eprintln!("{msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage(None);
    };
    let result = match command {
        "check" => {
            if args.len() < 2 {
                return usage(Some("check"));
            }
            cmd_check(&args[1..])
        }
        "fmt" | "info" | "graph" => {
            if args.len() != 2 {
                return usage(Some(command));
            }
            match command {
                "fmt" => cmd_fmt(&args[1]),
                "info" => cmd_info(&args[1]),
                _ => cmd_graph(&args[1]),
            }
        }
        "animate" => match AnimateOpts::parse(&args[1..]) {
            Some(opts) => cmd_animate(&opts),
            None => return usage(Some("animate")),
        },
        "profile" => match AnimateOpts::parse(&args[1..]) {
            Some(mut opts) => {
                opts.profile_stdout = true;
                cmd_animate(&opts)
            }
            None => return usage(Some("profile")),
        },
        "recover" => match RecoverOpts::parse(&args[1..]) {
            Some(opts) => cmd_recover(&opts),
            None => return usage(Some("recover")),
        },
        "serve" => match ServeCliOpts::parse(&args[1..]) {
            Some(opts) => cmd_serve(&opts),
            None => return usage(Some("serve")),
        },
        "follow" => match FollowCliOpts::parse(&args[1..]) {
            Some(opts) => cmd_follow(&opts),
            None => return usage(Some("follow")),
        },
        "compact" => match CompactOpts::parse(&args[1..]) {
            Some(opts) => cmd_compact(&opts),
            None => return usage(Some("compact")),
        },
        "help" | "--help" | "-h" => {
            println!("{GENERAL_USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => return usage(None),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(files: &[String]) -> Result<(), String> {
    let mut failed = false;
    for file in files {
        match System::load_file(file) {
            Ok(system) => {
                println!(
                    "{file}: ok ({} classes, {} interfaces, {} modules)",
                    system.model().classes.len(),
                    system.model().interfaces.len(),
                    system.model().modules.len()
                );
            }
            Err(e) => {
                println!("{file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        Err("some files failed to check".into())
    } else {
        Ok(())
    }
}

fn cmd_fmt(file: &str) -> Result<(), String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let spec = troll::lang::parse(&source).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", troll::lang::pretty::print_spec(&spec));
    Ok(())
}

fn cmd_graph(file: &str) -> Result<(), String> {
    let system = System::load_file(file).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", troll::lang::graph::to_dot(system.model()));
    Ok(())
}

fn cmd_info(file: &str) -> Result<(), String> {
    let system = System::load_file(file).map_err(|e| format!("{file}: {e}"))?;
    let model = system.model();
    for (name, class) in &model.classes {
        let kind = if class.singleton {
            "object"
        } else {
            "object class"
        };
        let view = match &class.view {
            Some((base, troll::lang::ViewKind::Phase)) => format!(" (phase of {base})"),
            Some((base, troll::lang::ViewKind::Specialization)) => {
                format!(" (specialization of {base})")
            }
            None => String::new(),
        };
        println!(
            "{kind} {name}{view}: {} attributes, {} events, {} valuation rules, {} permissions, {} constraints, {} interactions",
            class.template.signature().attributes().count(),
            class.template.signature().events().len(),
            class.valuation.len(),
            class.permissions.len(),
            class.constraints.len(),
            class.interactions.len(),
        );
    }
    for (name, iface) in &model.interfaces {
        let bases: Vec<&str> = iface.bases.iter().map(|(c, _)| c.as_str()).collect();
        let kind = if iface.is_join() { "join view" } else { "view" };
        println!(
            "interface {name} ({kind} of {}): {} attributes, {} events{}",
            bases.join(", "),
            iface.attributes.len(),
            iface.events.len(),
            if iface.selection.is_some() {
                ", with selection"
            } else {
                ""
            }
        );
    }
    for (name, module) in &model.modules {
        println!(
            "module {name}: conceptual {:?}, internal {:?}, exports {:?}",
            module.conceptual,
            module.internal,
            module
                .external
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
        );
    }
    if !model.global_interactions.is_empty() {
        println!(
            "{} global interaction rule(s)",
            model.global_interactions.len()
        );
    }
    Ok(())
}

/// Parsed `troll animate` (or `troll profile`) invocation.
struct AnimateOpts {
    file: String,
    script: String,
    stats: bool,
    trace: Option<String>,
    shards: usize,
    durable: Option<String>,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    /// `--profile <file>`: enable the phase profiler, write the table here.
    profile: Option<String>,
    /// `troll profile` mode: enable the profiler, table goes to stdout.
    profile_stdout: bool,
    /// `--metrics <file>`: Prometheus text dump after the run.
    metrics: Option<String>,
    /// `--stats-stream <file>`: periodic JSON metrics snapshots.
    stats_stream: Option<String>,
    stats_every: u64,
}

impl AnimateOpts {
    /// Flags may appear anywhere among the two positionals; returns
    /// `None` on any usage error (unknown flag, missing flag value,
    /// wrong positional count, durability flag without `--durable`,
    /// `--stats-every` without `--stats-stream`).
    fn parse(args: &[String]) -> Option<Self> {
        let mut stats = false;
        let mut trace = None;
        let mut shards = 1;
        let mut durable = None;
        let mut fsync = None;
        let mut snapshot_every = None;
        let mut profile = None;
        let mut metrics = None;
        let mut stats_stream = None;
        let mut stats_every = None;
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--stats" => stats = true,
                "--trace" => trace = Some(it.next()?.clone()),
                "--shards" => shards = it.next()?.parse().ok().filter(|&n| n >= 1)?,
                "--durable" => durable = Some(it.next()?.clone()),
                "--fsync" => fsync = Some(it.next()?.parse::<FsyncPolicy>().ok()?),
                "--snapshot-every" => snapshot_every = Some(it.next()?.parse::<u64>().ok()?),
                "--profile" => profile = Some(it.next()?.clone()),
                "--metrics" => metrics = Some(it.next()?.clone()),
                "--stats-stream" => stats_stream = Some(it.next()?.clone()),
                "--stats-every" => {
                    stats_every = Some(it.next()?.parse::<u64>().ok().filter(|&n| n >= 1)?)
                }
                s if s.starts_with('-') => return None,
                _ => positional.push(a.clone()),
            }
        }
        if durable.is_none() && (fsync.is_some() || snapshot_every.is_some()) {
            return None; // durability knobs without a durable directory
        }
        if stats_stream.is_none() && stats_every.is_some() {
            return None; // cadence without a stream to write to
        }
        let [file, script] = positional.as_slice() else {
            return None;
        };
        Some(AnimateOpts {
            file: file.clone(),
            script: script.clone(),
            stats,
            trace,
            shards,
            durable,
            fsync: fsync.unwrap_or(FsyncPolicy::EveryCommit),
            snapshot_every: snapshot_every.unwrap_or(256),
            profile,
            profile_stdout: false,
            metrics,
            stats_stream,
            stats_every: stats_every.unwrap_or(256),
        })
    }

    /// Whether the phase profiler should be switched on for this run.
    fn profiling(&self) -> bool {
        self.profile_stdout || self.profile.is_some()
    }
}

fn cmd_animate(opts: &AnimateOpts) -> Result<(), String> {
    // The trace writer is created — and registered as the process-wide
    // warning observer — *before* the model is compiled, so build-time
    // fallback notes (`vm.fallback`) land in the trace as structured
    // events instead of on stderr.
    let writer = match &opts.trace {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let writer = Arc::new(TraceWriter::new(std::io::BufWriter::new(file)));
            troll_obs::set_warning_observer(writer.clone());
            Some((path.clone(), writer))
        }
        None => None,
    };
    let result = animate_world(opts, &writer);
    troll_obs::clear_warning_observer();
    result
}

/// The body of `cmd_animate`, split out so the warning observer is
/// always cleared on the way out regardless of which step failed.
fn animate_world(
    opts: &AnimateOpts,
    writer: &Option<(String, Arc<TraceWriter<std::io::BufWriter<std::fs::File>>>)>,
) -> Result<(), String> {
    let system = System::load_file(&opts.file).map_err(|e| format!("{}: {e}", opts.file))?;
    // A durable run opens (and, on an existing directory, crash-recovers)
    // the world from the store; stdout stays identical to a non-durable
    // run — resume details go to stderr (and the trace, when attached).
    let mut durable = None;
    let mut ob = match &opts.durable {
        Some(dir) => {
            let source =
                std::fs::read_to_string(&opts.file).map_err(|e| format!("{}: {e}", opts.file))?;
            let store_opts = StoreOptions {
                fsync: opts.fsync,
                snapshot_every: opts.snapshot_every,
                ..StoreOptions::default()
            };
            let (mut ob, store, info) =
                troll::store::open_world(std::path::Path::new(dir), &source, &store_opts)
                    .map_err(|e| format!("{dir}: {e}"))?;
            if let Some((_, w)) = writer {
                w.on_event(&info.to_obs_event());
            }
            if info.snapshot_seq.is_some() || info.replayed > 0 {
                eprintln!(
                    "{dir}: resumed at step {} (snapshot {}, {} replayed, {} tail byte(s) dropped)",
                    info.next_seq,
                    info.snapshot_seq
                        .map_or_else(|| "none".into(), |s| s.to_string()),
                    info.replayed,
                    info.truncated_bytes
                );
            }
            let (sink, shared) = DurableSink::new(store);
            ob.set_step_sink(Box::new(sink));
            durable = Some((dir.clone(), shared));
            ob
        }
        None => system.object_base().map_err(|e| e.to_string())?,
    };
    let stats_sink = match &opts.stats_stream {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let sink = Arc::new(StatsSnapshotSink::new(
                ob.metrics().clone(),
                opts.stats_every,
                std::io::BufWriter::new(file),
            ));
            Some((path.clone(), sink))
        }
        None => None,
    };
    let mut observers: Vec<Arc<dyn Observer>> = Vec::new();
    if let Some((_, w)) = writer {
        observers.push(w.clone());
    }
    if let Some((_, s)) = &stats_sink {
        observers.push(s.clone());
    }
    match observers.len() {
        0 => {}
        1 => ob.set_observer(observers.remove(0)),
        _ => ob.set_observer(Arc::new(Fanout::new(observers))),
    }
    if opts.profiling() {
        ob.set_profiling(true);
    }
    let script_text =
        std::fs::read_to_string(&opts.script).map_err(|e| format!("{}: {e}", opts.script))?;
    let outcomes = if opts.shards > 1 {
        let mut ws = ob.into_shards(opts.shards);
        let outcomes = troll::script::run_script_sharded(&mut ws, &script_text)
            .map_err(|e| format!("{}:{e}", opts.script))?;
        ob = ws.into_base();
        outcomes
    } else {
        troll::script::run_script(&mut ob, &script_text)
            .map_err(|e| format!("{}:{e}", opts.script))?
    };
    for outcome in outcomes {
        println!("{outcome}");
    }
    if let Some((path, writer)) = writer {
        writer.flush();
        if writer.write_errors() > 0 {
            return Err(format!(
                "{path}: {} trace event(s) failed to write",
                writer.write_errors()
            ));
        }
    }
    if let Some((path, sink)) = &stats_sink {
        sink.flush();
        if sink.write_errors() > 0 {
            return Err(format!(
                "{path}: {} stats snapshot(s) failed to write",
                sink.write_errors()
            ));
        }
    }
    if let Some((dir, shared)) = durable {
        ob.take_step_sink();
        let mut store = shared
            .lock()
            .map_err(|_| format!("{dir}: store lock poisoned"))?;
        store.close(&ob).map_err(|e| format!("{dir}: {e}"))?;
    }
    if opts.profiling() {
        let table = troll_obs::phase_table(&ob.metrics().snapshot());
        if let Some(path) = &opts.profile {
            std::fs::write(path, &table).map_err(|e| format!("{path}: {e}"))?;
        }
        if opts.profile_stdout {
            println!("-- profile --");
            print!("{table}");
        }
    }
    if let Some(path) = &opts.metrics {
        let mut text = ob.metrics().render_prometheus("troll");
        text.push_str(&troll_obs::global().render_prometheus("troll_global"));
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.stats {
        print_stats(&ob);
    }
    Ok(())
}

/// Parsed `troll recover` invocation.
struct RecoverOpts {
    dir: String,
    stats: bool,
    dump: bool,
}

impl RecoverOpts {
    fn parse(args: &[String]) -> Option<Self> {
        let mut stats = false;
        let mut dump = false;
        let mut positional = Vec::new();
        for a in args {
            match a.as_str() {
                "--stats" => stats = true,
                "--dump" => dump = true,
                s if s.starts_with('-') => return None,
                _ => positional.push(a.clone()),
            }
        }
        let [dir] = positional.as_slice() else {
            return None;
        };
        Some(RecoverOpts {
            dir: dir.clone(),
            stats,
            dump,
        })
    }
}

fn cmd_recover(opts: &RecoverOpts) -> Result<(), String> {
    let (ob, info) = troll::store::recover(std::path::Path::new(&opts.dir))
        .map_err(|e| format!("{}: {e}", opts.dir))?;
    println!(
        "recovered instances={} steps={} snapshot={} replayed={} truncated_bytes={}",
        ob.instances().count(),
        ob.steps_executed(),
        info.snapshot_seq
            .map_or_else(|| "none".into(), |s| s.to_string()),
        info.replayed,
        info.truncated_bytes
    );
    if opts.dump {
        print!("{}", troll::store::world_dump(&ob));
    }
    if opts.stats {
        print_stats(&ob);
    }
    Ok(())
}

/// Parsed `troll serve` invocation.
struct ServeCliOpts {
    file: Option<String>,
    addr: String,
    workers: Option<usize>,
    durable: Option<String>,
    fsync: Option<FsyncPolicy>,
    snapshot_every: Option<u64>,
    segment_bytes: Option<u64>,
    compact_after: Option<u64>,
    selftest: bool,
    worlds: Option<usize>,
    conns: Option<usize>,
    events: Option<usize>,
}

impl ServeCliOpts {
    /// Flags may appear anywhere around the one (optional with
    /// `--selftest`) positional; `None` on any usage error.
    fn parse(args: &[String]) -> Option<Self> {
        let mut opts = ServeCliOpts {
            file: None,
            addr: "127.0.0.1:7877".to_string(),
            workers: None,
            durable: None,
            fsync: None,
            snapshot_every: None,
            segment_bytes: None,
            compact_after: None,
            selftest: false,
            worlds: None,
            conns: None,
            events: None,
        };
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => opts.addr = it.next()?.clone(),
                "--workers" => opts.workers = Some(it.next()?.parse().ok().filter(|&n| n >= 1)?),
                "--durable" => opts.durable = Some(it.next()?.clone()),
                "--fsync" => opts.fsync = Some(it.next()?.parse::<FsyncPolicy>().ok()?),
                "--snapshot-every" => opts.snapshot_every = Some(it.next()?.parse::<u64>().ok()?),
                "--segment-bytes" => {
                    opts.segment_bytes = Some(it.next()?.parse::<u64>().ok().filter(|&n| n >= 1)?)
                }
                "--compact-after" => {
                    opts.compact_after = Some(it.next()?.parse::<u64>().ok().filter(|&n| n >= 1)?)
                }
                "--selftest" => opts.selftest = true,
                "--worlds" => opts.worlds = Some(it.next()?.parse().ok().filter(|&n| n >= 1)?),
                "--conns" => opts.conns = Some(it.next()?.parse().ok().filter(|&n| n >= 1)?),
                "--events" => opts.events = Some(it.next()?.parse().ok()?),
                s if s.starts_with('-') => return None,
                _ => positional.push(a.clone()),
            }
        }
        if (opts.fsync.is_some()
            || opts.snapshot_every.is_some()
            || opts.segment_bytes.is_some()
            || opts.compact_after.is_some())
            && opts.durable.is_none()
        {
            return None;
        }
        if !opts.selftest
            && (opts.worlds.is_some() || opts.conns.is_some() || opts.events.is_some())
        {
            return None;
        }
        match (positional.len(), opts.selftest) {
            (1, _) => opts.file = positional.pop(),
            (0, true) => {}
            _ => return None,
        }
        Some(opts)
    }

    fn serve_options(&self) -> troll::serve::ServeOptions {
        let mut so = troll::serve::ServeOptions::default();
        if let Some(w) = self.workers {
            so.workers = w;
        }
        so.durable = self.durable.as_ref().map(std::path::PathBuf::from);
        if let Some(f) = self.fsync {
            so.store.fsync = f;
        }
        if let Some(n) = self.snapshot_every {
            so.store.snapshot_every = n;
        }
        if let Some(n) = self.segment_bytes {
            so.store.segment_bytes = n;
        }
        so.compact_after = self.compact_after;
        so
    }
}

fn cmd_serve(opts: &ServeCliOpts) -> Result<(), String> {
    let source = match &opts.file {
        Some(file) => std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?,
        None => troll::specs::DEPT.to_string(),
    };
    if opts.selftest {
        // TROLL_BENCH_SMOKE=1 shrinks the default load to CI size
        let smoke = std::env::var("TROLL_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let mut cfg = troll::serve::LoadConfig {
            opts: opts.serve_options(),
            ..Default::default()
        };
        if smoke {
            cfg.worlds = 8;
            cfg.conns = 2;
            cfg.events_per_world = 16;
        }
        if let Some(n) = opts.worlds {
            cfg.worlds = n;
        }
        if let Some(n) = opts.conns {
            cfg.conns = n;
        }
        if let Some(n) = opts.events {
            cfg.events_per_world = n;
        }
        let report = troll::serve::run_load(&source, &cfg)?;
        println!("{}", report.render());
        if report.errors > 0 {
            return Err(format!("{} error responses during selftest", report.errors));
        }
        return Ok(());
    }
    let server = troll::serve::Server::bind(opts.addr.as_str(), &source, opts.serve_options())
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("troll-serve listening on {addr}");
    let summary = server.run().map_err(|e| e.to_string())?;
    println!(
        "troll-serve exiting: worlds={} requests={} events={} commits={} conflicts={} errors={}",
        summary.worlds,
        summary.requests,
        summary.events,
        summary.commits,
        summary.conflicts,
        summary.errors
    );
    Ok(())
}

/// Parsed `troll follow` invocation.
struct FollowCliOpts {
    addr: String,
    dir: String,
    listen: Option<String>,
    poll_ms: Option<u64>,
    once: bool,
    fsync: Option<FsyncPolicy>,
}

impl FollowCliOpts {
    fn parse(args: &[String]) -> Option<Self> {
        let mut listen = None;
        let mut poll_ms = None;
        let mut once = false;
        let mut fsync = None;
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--listen" => listen = Some(it.next()?.clone()),
                "--poll-ms" => poll_ms = Some(it.next()?.parse::<u64>().ok().filter(|&n| n >= 1)?),
                "--once" => once = true,
                "--fsync" => fsync = Some(it.next()?.parse::<FsyncPolicy>().ok()?),
                s if s.starts_with('-') => return None,
                _ => positional.push(a.clone()),
            }
        }
        let [addr, dir] = positional.as_slice() else {
            return None;
        };
        Some(FollowCliOpts {
            addr: addr.clone(),
            dir: dir.clone(),
            listen,
            poll_ms,
            once,
            fsync,
        })
    }
}

fn cmd_follow(opts: &FollowCliOpts) -> Result<(), String> {
    let mut fopts = troll::repl::FollowOptions {
        once: opts.once,
        listen: opts.listen.clone(),
        ..Default::default()
    };
    if let Some(ms) = opts.poll_ms {
        fopts.poll_ms = ms;
    }
    if let Some(f) = opts.fsync {
        fopts.store.fsync = f;
    }
    let summary = troll::repl::run_follow(&opts.addr, std::path::Path::new(&opts.dir), &fopts)
        .map_err(|e| e.to_string())?;
    println!(
        "follow: worlds={} records={} snapshots={} polls={} primary_lost={}",
        summary.worlds,
        summary.records_applied,
        summary.snapshots_installed,
        summary.polls,
        summary.primary_lost
    );
    Ok(())
}

/// Parsed `troll compact` invocation.
struct CompactOpts {
    dir: String,
    dry_run: bool,
}

impl CompactOpts {
    fn parse(args: &[String]) -> Option<Self> {
        let mut dry_run = false;
        let mut positional = Vec::new();
        for a in args {
            match a.as_str() {
                "--dry-run" => dry_run = true,
                s if s.starts_with('-') => return None,
                _ => positional.push(a.clone()),
            }
        }
        let [dir] = positional.as_slice() else {
            return None;
        };
        Some(CompactOpts {
            dir: dir.clone(),
            dry_run,
        })
    }
}

fn cmd_compact(opts: &CompactOpts) -> Result<(), String> {
    let dir = std::path::Path::new(&opts.dir);
    if opts.dry_run {
        let plan = troll::store::compact_plan(dir).map_err(|e| format!("{}: {e}", opts.dir))?;
        println!(
            "compact plan: snapshot={} records_since={} bytes_since={} prunable_segments={} prunable_bytes={} next_seq={}",
            plan.snapshot_seq
                .map_or_else(|| "none".into(), |s| s.to_string()),
            plan.records_since,
            plan.bytes_since,
            plan.prunable_segments,
            plan.prunable_bytes,
            plan.next_seq
        );
        return Ok(());
    }
    let source = std::fs::read_to_string(dir.join(troll::store::SPEC_FILE))
        .map_err(|e| format!("{}: {e}", opts.dir))?;
    // Compaction appends nothing, so the fsync policy only governs the
    // final sync `compact` issues itself.
    let store_opts = StoreOptions {
        fsync: FsyncPolicy::OnClose,
        ..StoreOptions::default()
    };
    let (ob, mut store, _info) = troll::store::open_world(dir, &source, &store_opts)
        .map_err(|e| format!("{}: {e}", opts.dir))?;
    let report = store
        .compact(&ob)
        .map_err(|e| format!("{}: {e}", opts.dir))?;
    store.close(&ob).map_err(|e| format!("{}: {e}", opts.dir))?;
    println!(
        "compacted: snapshot={} pruned_segments={}",
        report.snapshot_seq, report.pruned_segments
    );
    Ok(())
}

/// Renders the run's metrics: every registered counter and histogram,
/// the process-wide counters (temporal scan/monitor tallies, state-map
/// sharing rates `state.clone_shared` / `state.path_copy`), plus the
/// monitor-cache façade so the two views can be compared.
fn print_stats(ob: &ObjectBase) {
    let snapshot = ob.metrics().snapshot();
    let out = std::io::stdout();
    let mut out = out.lock();
    let _ = writeln!(out, "-- stats --");
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "{name:<34} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{name:<34} n={} mean={}ns p50<={}ns p90<={}ns p99<={}ns",
            h.count, h.mean_ns, h.p50_ns, h.p90_ns, h.p99_ns
        );
    }
    let global = troll_obs::global().snapshot();
    for (name, value) in &global.counters {
        let _ = writeln!(out, "global.{name:<27} {value}");
    }
    let _ = writeln!(
        out,
        "{:<34} {}",
        "monitor_cache (snapshot)",
        ob.monitor_cache_stats()
    );
}
