//! The `troll` command-line tool: check, format, inspect and animate
//! TROLL specifications.
//!
//! ```text
//! troll check <file.troll>…       parse + analyze, report errors
//! troll fmt <file.troll>          print the normalized source
//! troll info <file.troll>         summarize classes/interfaces/modules
//! troll graph <file.troll>        emit a Graphviz DOT system diagram
//! troll animate <file> <script>   run an animation script
//! ```
//!
//! Animation scripts are line-oriented; `--` starts a comment. Terms use
//! TROLL expression syntax, identities the `|CLASS|(key…)` literal form:
//!
//! ```text
//! birth DEPT ("Toys") establishment (date(1991,10,16))
//! exec  |DEPT|("Toys") hire (|PERSON|("ada"))
//! show  |DEPT|("Toys") employees
//! view  SAL_EMPLOYEE
//! call  SAL_EMPLOYEE |PERSON|("ada") IncreaseSalary ()
//! obligations |TASK|("t1")
//! tick
//! ```

use std::process::ExitCode;
use troll::System;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") if args.len() >= 2 => cmd_check(&args[1..]),
        Some("fmt") if args.len() == 2 => cmd_fmt(&args[1]),
        Some("info") if args.len() == 2 => cmd_info(&args[1]),
        Some("graph") if args.len() == 2 => cmd_graph(&args[1]),
        Some("animate") if args.len() == 3 => cmd_animate(&args[1], &args[2]),
        _ => {
            eprintln!(
                "usage: troll check <file>… | fmt <file> | info <file> | graph <file> | animate <file> <script>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(files: &[String]) -> Result<(), String> {
    let mut failed = false;
    for file in files {
        match System::load_file(file) {
            Ok(system) => {
                println!(
                    "{file}: ok ({} classes, {} interfaces, {} modules)",
                    system.model().classes.len(),
                    system.model().interfaces.len(),
                    system.model().modules.len()
                );
            }
            Err(e) => {
                println!("{file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        Err("some files failed to check".into())
    } else {
        Ok(())
    }
}

fn cmd_fmt(file: &str) -> Result<(), String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let spec = troll::lang::parse(&source).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", troll::lang::pretty::print_spec(&spec));
    Ok(())
}

fn cmd_graph(file: &str) -> Result<(), String> {
    let system = System::load_file(file).map_err(|e| format!("{file}: {e}"))?;
    print!("{}", troll::lang::graph::to_dot(system.model()));
    Ok(())
}

fn cmd_info(file: &str) -> Result<(), String> {
    let system = System::load_file(file).map_err(|e| format!("{file}: {e}"))?;
    let model = system.model();
    for (name, class) in &model.classes {
        let kind = if class.singleton {
            "object"
        } else {
            "object class"
        };
        let view = match &class.view {
            Some((base, troll::lang::ViewKind::Phase)) => format!(" (phase of {base})"),
            Some((base, troll::lang::ViewKind::Specialization)) => {
                format!(" (specialization of {base})")
            }
            None => String::new(),
        };
        println!(
            "{kind} {name}{view}: {} attributes, {} events, {} valuation rules, {} permissions, {} constraints, {} interactions",
            class.template.signature().attributes().count(),
            class.template.signature().events().len(),
            class.valuation.len(),
            class.permissions.len(),
            class.constraints.len(),
            class.interactions.len(),
        );
    }
    for (name, iface) in &model.interfaces {
        let bases: Vec<&str> = iface.bases.iter().map(|(c, _)| c.as_str()).collect();
        let kind = if iface.is_join() { "join view" } else { "view" };
        println!(
            "interface {name} ({kind} of {}): {} attributes, {} events{}",
            bases.join(", "),
            iface.attributes.len(),
            iface.events.len(),
            if iface.selection.is_some() {
                ", with selection"
            } else {
                ""
            }
        );
    }
    for (name, module) in &model.modules {
        println!(
            "module {name}: conceptual {:?}, internal {:?}, exports {:?}",
            module.conceptual,
            module.internal,
            module
                .external
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
        );
    }
    if !model.global_interactions.is_empty() {
        println!(
            "{} global interaction rule(s)",
            model.global_interactions.len()
        );
    }
    Ok(())
}

fn cmd_animate(file: &str, script: &str) -> Result<(), String> {
    let system = System::load_file(file).map_err(|e| format!("{file}: {e}"))?;
    let mut ob = system.object_base().map_err(|e| e.to_string())?;
    let script_text = std::fs::read_to_string(script).map_err(|e| format!("{script}: {e}"))?;
    let outcomes =
        troll::script::run_script(&mut ob, &script_text).map_err(|e| format!("{script}:{e}"))?;
    for outcome in outcomes {
        println!("{outcome}");
    }
    Ok(())
}
