//! # troll — executable object-oriented specification and stepwise
//! refinement
//!
//! A complete, executable reproduction of
//!
//! > Gunter Saake, Ralf Jungclaus, Hans-Dieter Ehrich.
//! > *Object-Oriented Specification and Stepwise Refinement* (1991).
//!
//! This facade crate ties the substrates together into one pipeline:
//!
//! ```text
//! TROLL source ──parse──▶ AST ──analyze──▶ SystemModel ──▶ ObjectBase (animate)
//!                                              │                │
//!                                              ├──▶ Community / InheritanceSchema (object model)
//!                                              ├──▶ Module / GuardedBase (schema architecture)
//!                                              └──▶ check_refinement (stepwise refinement)
//! ```
//!
//! The individual layers are re-exported as modules:
//!
//! * [`data`] — abstract data types, terms, query algebra;
//! * [`temporal`] — temporal logic over object histories;
//! * [`process`] — templates as processes, simulation, event sharing;
//! * [`kernel`] — templates, aspects, morphisms, inheritance schemas,
//!   object communities;
//! * [`lang`] — the TROLL language front-end;
//! * [`runtime`] — the object base / animator;
//! * [`serve`] — the multi-world animation server (`troll serve`);
//! * [`repl`] — log-shipping replication: follower replay of a serve
//!   primary's durable log (`troll follow`);
//! * [`refine`] — refinement checking and the three-level schema
//!   architecture;
//! * [`obs`] — zero-dependency tracing & metrics (attach an observer
//!   with [`runtime::ObjectBase::set_observer`], read counters via
//!   [`runtime::ObjectBase::metrics`]).
//!
//! # Quickstart
//!
//! ```
//! use troll::System;
//! use troll::data::Value;
//!
//! let system = System::load_str(troll::specs::DEPT)?;
//! let mut ob = system.object_base()?;
//!
//! let d = troll::data::Date::new(1991, 10, 16)?;
//! let toys = ob.birth("DEPT", vec![Value::from("Toys")],
//!                     "establishment", vec![Value::Date(d)])?;
//! let ada = Value::Id(troll::data::ObjectId::new(
//!     "PERSON", vec![Value::from("ada")]));
//! ob.execute(&toys, "hire", vec![ada.clone()])?;
//! ob.execute(&toys, "fire", vec![ada])?;
//! ob.execute(&toys, "closure", vec![])?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use troll_runtime::script;

pub use troll_data as data;
pub use troll_kernel as kernel;
pub use troll_lang as lang;
pub use troll_obs as obs;
pub use troll_process as process;
pub use troll_refine as refine;
pub use troll_repl as repl;
pub use troll_runtime as runtime;
pub use troll_serve as serve;
pub use troll_store as store;
pub use troll_temporal as temporal;

use std::fmt;
use std::path::Path;

/// The specification corpus shipped with the library: every worked
/// example of the paper as a TROLL source, used by the examples, the
/// integration tests and the benchmark harness.
pub mod specs {
    /// §4 — the `DEPT` object class (quickstart; experiment E3).
    pub const DEPT: &str = include_str!("../../../specs/dept.troll");
    /// §4 — PERSON/MANAGER phase, DEPT, TheCompany, global interactions
    /// (experiments E3–E5).
    pub const COMPANY: &str = include_str!("../../../specs/company.troll");
    /// §5.2 — EMPLOYEE / emp_rel / EMPL_IMPL / EMPL (experiment E7).
    pub const EMPLOYMENT: &str = include_str!("../../../specs/employment.troll");
    /// §5.1 — the four interface classes (experiment E6).
    pub const VIEWS: &str = include_str!("../../../specs/views.troll");
    /// §6 — module declarations for the three-level architecture
    /// (experiment E8).
    pub const MODULES: &str = include_str!("../../../specs/modules.troll");
    /// An original library-domain system exercising the full feature
    /// set (permissions, phases, obligations, join views, modules).
    pub const LIBRARY: &str = include_str!("../../../specs/library.troll");
    /// §6.1 — the shared system clock with time-triggered activities.
    pub const CLOCK: &str = include_str!("../../../specs/clock.troll");

    /// Every shipped spec with its name (for corpus-wide tests and the
    /// parser benchmark E9).
    pub const ALL: &[(&str, &str)] = &[
        ("dept", DEPT),
        ("company", COMPANY),
        ("employment", EMPLOYMENT),
        ("views", VIEWS),
        ("modules", MODULES),
        ("library", LIBRARY),
        ("clock", CLOCK),
    ];
}

/// Top-level error: any failure along the pipeline.
#[derive(Debug)]
pub enum TrollError {
    /// Lexing/parsing/analysis failure.
    Lang(lang::LangError),
    /// Execution failure.
    Runtime(runtime::RuntimeError),
    /// Refinement/module failure.
    Refine(refine::RefineError),
    /// Object-model failure.
    Kernel(kernel::KernelError),
    /// File system failure.
    Io(std::io::Error),
}

impl fmt::Display for TrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrollError::Lang(e) => write!(f, "language error: {e}"),
            TrollError::Runtime(e) => write!(f, "runtime error: {e}"),
            TrollError::Refine(e) => write!(f, "refinement error: {e}"),
            TrollError::Kernel(e) => write!(f, "object model error: {e}"),
            TrollError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TrollError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrollError::Lang(e) => Some(e),
            TrollError::Runtime(e) => Some(e),
            TrollError::Refine(e) => Some(e),
            TrollError::Kernel(e) => Some(e),
            TrollError::Io(e) => Some(e),
        }
    }
}

impl From<lang::LangError> for TrollError {
    fn from(e: lang::LangError) -> Self {
        TrollError::Lang(e)
    }
}

impl From<runtime::RuntimeError> for TrollError {
    fn from(e: runtime::RuntimeError) -> Self {
        TrollError::Runtime(e)
    }
}

impl From<refine::RefineError> for TrollError {
    fn from(e: refine::RefineError) -> Self {
        TrollError::Refine(e)
    }
}

impl From<kernel::KernelError> for TrollError {
    fn from(e: kernel::KernelError) -> Self {
        TrollError::Kernel(e)
    }
}

impl From<std::io::Error> for TrollError {
    fn from(e: std::io::Error) -> Self {
        TrollError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TrollError>;

/// A loaded, analyzed TROLL system: the entry point of the pipeline.
#[derive(Debug, Clone)]
pub struct System {
    model: lang::SystemModel,
}

impl System {
    /// Parses and analyzes TROLL source text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or analysis error.
    pub fn load_str(source: &str) -> Result<Self> {
        let spec = lang::parse(source)?;
        let model = lang::analyze(&spec)?;
        Ok(System { model })
    }

    /// Reads, parses and analyzes a `.troll` file.
    ///
    /// # Errors
    ///
    /// I/O errors plus everything [`System::load_str`] reports.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self> {
        let source = std::fs::read_to_string(path)?;
        Self::load_str(&source)
    }

    /// The analyzed model.
    pub fn model(&self) -> &lang::SystemModel {
        &self.model
    }

    /// Creates a fresh object base ready to animate this system.
    ///
    /// # Errors
    ///
    /// Propagates object-base construction failures.
    pub fn object_base(&self) -> Result<runtime::ObjectBase> {
        Ok(runtime::ObjectBase::new(self.model.clone())?)
    }

    /// Builds the module system from the specification's `module`
    /// declarations.
    pub fn modules(&self) -> refine::ModuleSystem {
        let mut sys = refine::ModuleSystem::new();
        for m in self.model.modules.values() {
            sys.add(refine::Module::from_model(m));
        }
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shipped_specs_load() {
        for (name, src) in specs::ALL {
            let system = System::load_str(src)
                .unwrap_or_else(|e| panic!("spec `{name}` failed to load: {e}"));
            assert!(
                !system.model().classes.is_empty(),
                "spec `{name}` has no classes"
            );
        }
    }

    #[test]
    fn load_file_round_trip() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/dept.troll");
        let system = System::load_file(dir).unwrap();
        assert!(system.model().class("DEPT").is_some());
        assert!(matches!(
            System::load_file("/nonexistent/path.troll").unwrap_err(),
            TrollError::Io(_)
        ));
    }

    #[test]
    fn error_conversions_and_display() {
        let e: TrollError = lang::LangError::new(1, 2, "boom").into();
        assert!(e.to_string().contains("language error"));
        let e: TrollError = runtime::RuntimeError::UnknownClass("X".into()).into();
        assert!(e.to_string().contains("runtime error"));
        let e: TrollError = refine::RefineError::UnknownModule("M".into()).into();
        assert!(e.to_string().contains("refinement error"));
        let e: TrollError = kernel::KernelError::UnknownTemplate("T".into()).into();
        assert!(e.to_string().contains("object model error"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn modules_from_spec() {
        let system = System::load_str(specs::MODULES).unwrap();
        let sys = system.modules();
        assert!(sys.module("PERSONNEL").is_some());
        assert!(sys.module("PAYROLL").is_some());
        assert!(sys.validate(system.model()).is_empty());
    }

    #[test]
    fn bad_source_reports_lang_error() {
        assert!(matches!(
            System::load_str("object class Broken").unwrap_err(),
            TrollError::Lang(_)
        ));
    }
}
