//! Minimal, dependency-free micro-benchmark harness exposing the subset
//! of the `criterion` 0.8 API that troll-rs uses. The workspace builds
//! hermetically — no registry is reachable — so the real crate cannot be
//! resolved, and the EXPERIMENTS.md suite must still be runnable with
//! `cargo bench --workspace`.
//!
//! Methodology (simpler than the real crate, same spirit):
//! - each benchmark point is warmed up (~100 ms), then an iteration
//!   count is calibrated so one sample takes ~25 ms;
//! - `SAMPLES` timed samples are collected and the per-iteration
//!   median/min/max are reported in criterion's familiar
//!   `time: [low median high]` line (here: [min median max]);
//! - `iter_batched` times only the routine, never the setup closure.
//!
//! There is no statistical outlier analysis, no baseline comparison and
//! no HTML report; EXPERIMENTS.md cares about point estimates and
//! complexity *shapes*, which medians over 20+ samples capture well.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const SAMPLES: usize = 24;
const WARMUP: Duration = Duration::from_millis(100);
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// CI smoke mode: when `TROLL_BENCH_SMOKE` is set (to anything but
/// `0`), every point runs its routine once per sample with a single
/// sample and no warmup — the suite degenerates to "does every
/// benchmark still execute", cheap enough for a CI job.
fn smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var_os("TROLL_BENCH_SMOKE").is_some_and(|v| v != "0"))
}

fn samples() -> usize {
    if smoke() {
        1
    } else {
        SAMPLES
    }
}

fn warmup() -> Duration {
    if smoke() {
        Duration::ZERO
    } else {
        WARMUP
    }
}

fn target_sample() -> Duration {
    if smoke() {
        Duration::ZERO
    } else {
        TARGET_SAMPLE
    }
}

/// How batched inputs are grouped. The shim always times one routine
/// call at a time, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark point identifier: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` and `BenchmarkId` where the real API does.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_point(&id.into_label(), None, &mut f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's timing budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_point(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_point(&label, self.throughput, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        self
    }

    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

/// Collects per-iteration nanosecond samples for one benchmark point.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration.
        let mut iters: u64 = 0;
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup() || iters == 0 {
            black_box(routine());
            iters += 1;
        }
        let per_iter = (warm_start.elapsed().as_secs_f64() / iters as f64).max(1e-9);
        let batch = ((target_sample().as_secs_f64() / per_iter).ceil() as u64).max(1);

        for _ in 0..samples() {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(ns);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warmup (setup excluded from the estimate's numerator as in the
        // measured loop: only the routine is timed).
        // As in the real crate, the routine's *output* is dropped
        // outside the timed window — outputs often carry the whole
        // mutated state (e.g. an object base), and timing their
        // deallocation would re-introduce exactly the setup-shaped
        // costs `iter_batched` exists to exclude.
        let mut elapsed = Duration::ZERO;
        let mut iters: u64 = 0;
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup() || iters == 0 {
            let input = setup();
            let t = Instant::now();
            let out = black_box(routine(input));
            elapsed += t.elapsed();
            drop(out);
            iters += 1;
        }
        let per_iter = (elapsed.as_secs_f64() / iters as f64).max(1e-9);
        let batch = ((target_sample().as_secs_f64() / per_iter).ceil() as u64).clamp(1, 10_000);

        for _ in 0..samples() {
            let mut ns_total = 0.0;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                let out = black_box(routine(input));
                ns_total += t.elapsed().as_secs_f64() * 1e9;
                drop(out);
            }
            self.samples.push(ns_total / batch as f64);
        }
    }
}

/// Like the real crate, the first non-flag CLI argument is a substring
/// filter on benchmark labels (`cargo bench --bench e3_runtime --
/// e3_monitored_path` runs only that group). Flags are ignored.
fn filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

fn run_point(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(needle) = filter() {
        if !label.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(SAMPLES),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    b.samples.sort_by(|a, c| a.total_cmp(c));
    let min = b.samples[0];
    let max = *b.samples.last().unwrap();
    let median = b.samples[b.samples.len() / 2];
    let mut line = format!(
        "{label:<56} time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let per_sec = n as f64 / (median * 1e-9);
        line.push_str(&format!("  thrpt: {:.2} Melem/s", per_sec / 1e6));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt_ns(512.0), "512.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
    }
}
