//! The object query algebra of \[SJ90, SJS91\].
//!
//! Section 5.1 of the paper: "For the derivation of attribute values we
//! may use an object query language enabling value retrieval from object
//! states. We use an object query algebra … This algebra resembles well
//! known concepts of database query algebras handling values (not
//! objects!)."
//!
//! Relations are sets of tuple values; operations are pure functions on
//! them. Predicates and projections are expressed as [`Term`]s evaluated
//! with the tuple's fields bound as variables (layered over an outer
//! environment so derivation rules can reference identification
//! attributes such as `EmpName`, as in the paper's `EMPL_IMPL`):
//!
//! ```text
//! Salary = the(project|esalary|(select|ename = EmpName and ebirth = EmpBirth|(employees)))
//! ```
//!
//! ```
//! use troll_data::{algebra, Term, Op, Value, MapEnv};
//! let rel = Value::set_of(vec![
//!     Value::tuple_of(vec![("ename", Value::from("ada")), ("esalary", Value::from(100))]),
//!     Value::tuple_of(vec![("ename", Value::from("bob")), ("esalary", Value::from(200))]),
//! ]);
//! let env = MapEnv::new();
//! let pred = Term::eq(Term::var("ename"), Term::constant(Value::from("ada")));
//! let selected = algebra::select(&rel, &pred, &env)?;
//! let projected = algebra::project(&selected, &["esalary"])?;
//! assert_eq!(algebra::the_element(&projected)?, Value::from(100));
//! # Ok::<(), troll_data::DataError>(())
//! ```

use crate::term::Layered;
use crate::{DataError, Env, PSet, Result, Term, Value};

/// Environment exposing a tuple's fields as variables.
struct TupleEnv<'a> {
    tuple: &'a Value,
}

impl Env for TupleEnv<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.tuple.field(name).cloned()
    }
}

fn want_relation(v: &Value) -> Result<&PSet> {
    v.as_set()
        .ok_or_else(|| DataError::sort_mismatch("query algebra", "set of tuples", v))
}

/// `select|pred|(rel)` — the subset of tuples satisfying `pred`.
///
/// The predicate sees the tuple's fields as variables, shadowing `outer`.
///
/// # Errors
///
/// Fails if `rel` is not a set, if the predicate errors, or if the
/// predicate does not evaluate to a boolean.
pub fn select(rel: &Value, pred: &Term, outer: &dyn Env) -> Result<Value> {
    select_by(rel, |env| pred.eval(env), outer)
}

/// [`select`] with the predicate abstracted to any evaluator over the
/// per-row environment — the single row loop both the tree walk and a
/// bytecode-compiled predicate go through, so relation traversal, field
/// shadowing (tuple fields layered over `outer`), and every error site
/// are shared verbatim.
pub fn select_by(
    rel: &Value,
    mut pred: impl FnMut(&dyn Env) -> Result<Value>,
    outer: &dyn Env,
) -> Result<Value> {
    let tuples = want_relation(rel)?;
    let mut out = PSet::new();
    for t in tuples {
        let tuple_env = TupleEnv { tuple: t };
        let env = Layered {
            top: &tuple_env,
            base: outer,
        };
        let keep = pred(&env)?;
        match keep.as_bool() {
            Some(true) => {
                out.insert(t.clone());
            }
            Some(false) => {}
            None => {
                return Err(DataError::sort_mismatch(
                    "selection predicate",
                    "bool",
                    keep,
                ))
            }
        }
    }
    Ok(Value::Set(out))
}

/// `project|f1, …, fn|(rel)` — restriction of each tuple to the given
/// fields. Projecting onto a **single** field yields a set of raw field
/// values (the paper's `project|salary|` feeds directly into `count`);
/// projecting onto several yields a set of narrower tuples.
///
/// # Errors
///
/// Fails if `rel` is not a set of tuples or a field is missing.
pub fn project(rel: &Value, fields: &[&str]) -> Result<Value> {
    let tuples = want_relation(rel)?;
    let mut out = PSet::new();
    for t in tuples {
        match t {
            Value::Tuple(_) => {
                if let [single] = fields {
                    let v = t.field(single).ok_or_else(|| missing_field(single, t))?;
                    out.insert(v.clone());
                } else {
                    let mut narrowed = Vec::with_capacity(fields.len());
                    for f in fields {
                        let v = t.field(f).ok_or_else(|| missing_field(f, t))?;
                        narrowed.push(((*f).to_string(), v.clone()));
                    }
                    out.insert(Value::tuple_of(narrowed));
                }
            }
            other => {
                return Err(DataError::sort_mismatch("project", "tuple", other));
            }
        }
    }
    Ok(Value::Set(out))
}

fn missing_field(field: &str, tuple: &Value) -> DataError {
    let available = match tuple {
        Value::Tuple(fs) => fs.iter().map(|(n, _)| n.clone()).collect(),
        _ => Vec::new(),
    };
    DataError::NoSuchField {
        field: field.to_string(),
        available,
    }
}

/// Natural join: tuples from `left` and `right` are combined whenever
/// they agree on all shared field names. Fields are merged; this is the
/// algebraic basis of the paper's **join views** (`WORKS_FOR`).
///
/// # Errors
///
/// Fails if either relation is not a set of tuples.
pub fn join(left: &Value, right: &Value) -> Result<Value> {
    let l = want_relation(left)?;
    let r = want_relation(right)?;
    let mut out = PSet::new();
    for lt in l {
        let lf = match lt {
            Value::Tuple(fs) => fs,
            other => return Err(DataError::sort_mismatch("join", "tuple", other)),
        };
        for rt in r {
            let rf = match rt {
                Value::Tuple(fs) => fs,
                other => return Err(DataError::sort_mismatch("join", "tuple", other)),
            };
            let agrees = lf.iter().all(|(n, v)| match rt.field(n) {
                Some(rv) => rv == v,
                None => true,
            });
            if agrees {
                let mut merged: Vec<(String, Value)> = lf.clone();
                for (n, v) in rf {
                    if lt.field(n).is_none() {
                        merged.push((n.clone(), v.clone()));
                    }
                }
                out.insert(Value::tuple_of(merged));
            }
        }
    }
    Ok(Value::Set(out))
}

/// Theta-join: the cross product of `left` and `right` filtered by a
/// predicate that sees the fields of **both** tuples (left fields shadow
/// right fields on name clashes). Used for join views whose condition is
/// not simple field equality, e.g. the paper's
/// `WORKS_FOR … selection where P.surrogate in D.employees`.
///
/// # Errors
///
/// Fails if either relation is not a set of tuples or the predicate does
/// not evaluate to a boolean.
pub fn theta_join(left: &Value, right: &Value, pred: &Term, outer: &dyn Env) -> Result<Value> {
    let l = want_relation(left)?;
    let r = want_relation(right)?;
    let mut out = PSet::new();
    for lt in l {
        for rt in r {
            let (lf, rf) = match (lt, rt) {
                (Value::Tuple(a), Value::Tuple(b)) => (a, b),
                _ => return Err(DataError::sort_mismatch("theta_join", "tuple", (lt, rt))),
            };
            let mut merged: Vec<(String, Value)> = lf.clone();
            for (n, v) in rf {
                if lt.field(n).is_none() {
                    merged.push((n.clone(), v.clone()));
                }
            }
            let merged = Value::tuple_of(merged);
            let tuple_env = TupleEnv { tuple: &merged };
            let env = Layered {
                top: &tuple_env,
                base: outer,
            };
            let keep = pred.eval(&env)?;
            match keep.as_bool() {
                Some(true) => {
                    out.insert(merged);
                }
                Some(false) => {}
                None => {
                    return Err(DataError::sort_mismatch("join predicate", "bool", keep));
                }
            }
        }
    }
    Ok(Value::Set(out))
}

/// Renames a field in every tuple of the relation (classical `ρ`).
///
/// # Errors
///
/// Fails if `rel` is not a set of tuples or `from` is missing anywhere.
pub fn rename(rel: &Value, from: &str, to: &str) -> Result<Value> {
    let tuples = want_relation(rel)?;
    let mut out = PSet::new();
    for t in tuples {
        match t {
            Value::Tuple(fields) => {
                if t.field(from).is_none() {
                    return Err(missing_field(from, t));
                }
                let renamed: Vec<(String, Value)> = fields
                    .iter()
                    .map(|(n, v)| {
                        let n = if n == from { to.to_string() } else { n.clone() };
                        (n, v.clone())
                    })
                    .collect();
                out.insert(Value::tuple_of(renamed));
            }
            other => return Err(DataError::sort_mismatch("rename", "tuple", other)),
        }
    }
    Ok(Value::Set(out))
}

/// `count(rel)` — cardinality as an integer value.
///
/// # Errors
///
/// Fails if `rel` is not a set.
pub fn count(rel: &Value) -> Result<Value> {
    Ok(Value::Int(want_relation(rel)?.len() as i64))
}

/// Sum of a numeric field over the relation (ints or money).
///
/// # Errors
///
/// Fails on missing fields, mixed sorts, or overflow.
pub fn sum(rel: &Value, field: &str) -> Result<Value> {
    let tuples = want_relation(rel)?;
    let mut acc: Option<Value> = None;
    for t in tuples {
        let v = t.field(field).ok_or_else(|| missing_field(field, t))?;
        acc = Some(match acc {
            None => v.clone(),
            Some(a) => crate::Op::Add.apply(&[a, v.clone()])?,
        });
    }
    Ok(acc.unwrap_or(Value::Int(0)))
}

/// Minimum of a field over the relation; `Undefined` on an empty relation.
///
/// # Errors
///
/// Fails on missing fields.
pub fn min(rel: &Value, field: &str) -> Result<Value> {
    fold_extremum(rel, field, |a, b| a < b)
}

/// Maximum of a field over the relation; `Undefined` on an empty relation.
///
/// # Errors
///
/// Fails on missing fields.
pub fn max(rel: &Value, field: &str) -> Result<Value> {
    fold_extremum(rel, field, |a, b| a > b)
}

fn fold_extremum(
    rel: &Value,
    field: &str,
    better: impl Fn(&Value, &Value) -> bool,
) -> Result<Value> {
    let tuples = want_relation(rel)?;
    let mut best: Option<&Value> = None;
    for t in tuples {
        let v = t.field(field).ok_or_else(|| missing_field(field, t))?;
        best = Some(match best {
            None => v,
            Some(b) if better(v, b) => v,
            Some(b) => b,
        });
    }
    Ok(best.cloned().unwrap_or(Value::Undefined))
}

/// Extracts the unique element of a singleton set — the implicit final
/// step of derivations like the paper's `Salary = …(select|key match|…)`
/// where the key constraint guarantees uniqueness.
///
/// # Errors
///
/// Returns [`DataError::Undefined`] when the set is empty or has more
/// than one element.
pub fn the_element(rel: &Value) -> Result<Value> {
    let s = want_relation(rel)?;
    match s.len() {
        1 => Ok(s.iter().next().expect("len checked").clone()),
        0 => Err(DataError::Undefined("the() of empty set".into())),
        n => Err(DataError::Undefined(format!("the() of {n}-element set"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MapEnv, Money, Op};

    fn emp(name: &str, salary: i64) -> Value {
        Value::tuple_of(vec![
            ("ename", Value::from(name)),
            ("esalary", Value::from(salary)),
        ])
    }

    fn rel() -> Value {
        Value::set_of(vec![emp("ada", 100), emp("bob", 200), emp("eve", 200)])
    }

    #[test]
    fn select_filters_by_field_predicate() {
        let pred = Term::apply(Op::Ge, vec![Term::var("esalary"), Term::constant(150i64)]);
        let out = select(&rel(), &pred, &MapEnv::new()).unwrap();
        assert_eq!(out, Value::set_of(vec![emp("bob", 200), emp("eve", 200)]));
    }

    #[test]
    fn select_sees_outer_env() {
        let mut env = MapEnv::new();
        env.bind("EmpName", Value::from("ada"));
        let pred = Term::eq(Term::var("ename"), Term::var("EmpName"));
        let out = select(&rel(), &pred, &env).unwrap();
        assert_eq!(out, Value::set_of(vec![emp("ada", 100)]));
    }

    #[test]
    fn tuple_fields_shadow_outer_env() {
        let mut env = MapEnv::new();
        env.bind("esalary", Value::from(-1));
        let pred = Term::eq(Term::var("esalary"), Term::constant(100i64));
        let out = select(&rel(), &pred, &env).unwrap();
        assert_eq!(count(&out).unwrap(), Value::from(1));
    }

    #[test]
    fn project_single_field_yields_values() {
        let out = project(&rel(), &["esalary"]).unwrap();
        // duplicates collapse: two employees earn 200
        assert_eq!(out, Value::set_of(vec![Value::from(100), Value::from(200)]));
    }

    #[test]
    fn project_multi_field_yields_tuples() {
        let out = project(&rel(), &["ename"]).unwrap();
        assert_eq!(count(&out).unwrap(), Value::from(3));
        let out = project(&rel(), &["ename", "esalary"]).unwrap();
        assert_eq!(out, rel());
        assert!(project(&rel(), &["missing"]).is_err());
    }

    #[test]
    fn paper_derivation_pipeline() {
        // Salary = the(project|esalary|(select|ename = EmpName|employees))
        let mut env = MapEnv::new();
        env.bind("EmpName", Value::from("bob"));
        let pred = Term::eq(Term::var("ename"), Term::var("EmpName"));
        let selected = select(&rel(), &pred, &env).unwrap();
        let projected = project(&selected, &["esalary"]).unwrap();
        assert_eq!(the_element(&projected).unwrap(), Value::from(200));
    }

    #[test]
    fn the_element_requires_singleton() {
        assert!(the_element(&Value::empty_set()).is_err());
        assert!(the_element(&rel()).is_err());
    }

    #[test]
    fn natural_join_on_shared_fields() {
        let depts = Value::set_of(vec![
            Value::tuple_of(vec![
                ("ename", Value::from("ada")),
                ("dept", Value::from("R")),
            ]),
            Value::tuple_of(vec![
                ("ename", Value::from("bob")),
                ("dept", Value::from("S")),
            ]),
        ]);
        let joined = join(&rel(), &depts).unwrap();
        assert_eq!(count(&joined).unwrap(), Value::from(2));
        let ada = select(
            &joined,
            &Term::eq(Term::var("ename"), Term::constant(Value::from("ada"))),
            &MapEnv::new(),
        )
        .unwrap();
        let ada = the_element(&ada).unwrap();
        assert_eq!(ada.field("dept"), Some(&Value::from("R")));
        assert_eq!(ada.field("esalary"), Some(&Value::from(100)));
    }

    #[test]
    fn join_with_no_shared_fields_is_cross_product() {
        let a = Value::set_of(vec![Value::tuple_of(vec![("x", Value::from(1))])]);
        let b = Value::set_of(vec![
            Value::tuple_of(vec![("y", Value::from(2))]),
            Value::tuple_of(vec![("y", Value::from(3))]),
        ]);
        assert_eq!(count(&join(&a, &b).unwrap()).unwrap(), Value::from(2));
    }

    #[test]
    fn theta_join_with_membership_predicate() {
        // WORKS_FOR: P.surrogate in D.employees — modelled with a 'members' set
        let persons = Value::set_of(vec![
            Value::tuple_of(vec![("pname", Value::from("ada"))]),
            Value::tuple_of(vec![("pname", Value::from("bob"))]),
        ]);
        let depts = Value::set_of(vec![Value::tuple_of(vec![
            ("dname", Value::from("Research")),
            ("members", Value::set_of(vec![Value::from("ada")])),
        ])]);
        let pred = Term::apply(Op::In, vec![Term::var("pname"), Term::var("members")]);
        let out = theta_join(&persons, &depts, &pred, &MapEnv::new()).unwrap();
        assert_eq!(count(&out).unwrap(), Value::from(1));
        let row = the_element(&out).unwrap();
        assert_eq!(row.field("pname"), Some(&Value::from("ada")));
        assert_eq!(row.field("dname"), Some(&Value::from("Research")));
    }

    #[test]
    fn rename_field() {
        let out = rename(&rel(), "ename", "name").unwrap();
        let ada = select(
            &out,
            &Term::eq(Term::var("name"), Term::constant(Value::from("ada"))),
            &MapEnv::new(),
        )
        .unwrap();
        assert_eq!(count(&ada).unwrap(), Value::from(1));
        assert!(rename(&rel(), "missing", "x").is_err());
    }

    #[test]
    fn aggregates() {
        assert_eq!(count(&rel()).unwrap(), Value::from(3));
        assert_eq!(sum(&rel(), "esalary").unwrap(), Value::from(500));
        assert_eq!(min(&rel(), "esalary").unwrap(), Value::from(100));
        assert_eq!(max(&rel(), "esalary").unwrap(), Value::from(200));
        assert_eq!(sum(&Value::empty_set(), "x").unwrap(), Value::from(0));
        assert_eq!(min(&Value::empty_set(), "x").unwrap(), Value::Undefined);
    }

    #[test]
    fn aggregates_over_money() {
        let payroll = Value::set_of(vec![
            Value::tuple_of(vec![("sal", Value::Money(Money::from_major(10)))]),
            Value::tuple_of(vec![("sal", Value::Money(Money::from_major(20)))]),
        ]);
        assert_eq!(
            sum(&payroll, "sal").unwrap(),
            Value::Money(Money::from_major(30))
        );
    }

    #[test]
    fn non_relation_inputs_rejected() {
        assert!(select(&Value::from(1), &Term::truth(), &MapEnv::new()).is_err());
        assert!(project(&Value::from(1), &["x"]).is_err());
        assert!(join(&Value::from(1), &rel()).is_err());
        assert!(count(&Value::from(1)).is_err());
        // set of non-tuples rejected by project
        let bad = Value::set_of(vec![Value::from(1)]);
        assert!(project(&bad, &["x"]).is_err());
    }

    #[test]
    fn select_requires_boolean_predicate() {
        let not_bool = Term::constant(5i64);
        assert!(select(&rel(), &not_bool, &MapEnv::new()).is_err());
    }

    mod laws {
        use super::*;
        use proptest::prelude::*;

        fn arb_relation() -> impl Strategy<Value = Value> {
            proptest::collection::btree_set(
                (0i64..20, 0i64..5).prop_map(|(a, b)| {
                    Value::tuple_of(vec![("a", Value::from(a)), ("b", Value::from(b))])
                }),
                0..12,
            )
            .prop_map(|s| Value::Set(s.into_iter().collect()))
        }

        fn pred(threshold: i64) -> Term {
            Term::apply(Op::Ge, vec![Term::var("a"), Term::constant(threshold)])
        }

        proptest! {
            /// σ_p ∘ σ_q = σ_q ∘ σ_p (selections commute).
            #[test]
            fn selections_commute(rel in arb_relation(), p in 0i64..20, q in 0i64..20) {
                let env = MapEnv::new();
                let pq = select(&select(&rel, &pred(p), &env).unwrap(), &pred(q), &env).unwrap();
                let qp = select(&select(&rel, &pred(q), &env).unwrap(), &pred(p), &env).unwrap();
                prop_assert_eq!(pq, qp);
            }

            /// σ_p is idempotent.
            #[test]
            fn selection_idempotent(rel in arb_relation(), p in 0i64..20) {
                let env = MapEnv::new();
                let once = select(&rel, &pred(p), &env).unwrap();
                let twice = select(&once, &pred(p), &env).unwrap();
                prop_assert_eq!(once, twice);
            }

            /// |σ_p(R)| ≤ |R| and σ_p(R) ⊆ R.
            #[test]
            fn selection_shrinks(rel in arb_relation(), p in 0i64..20) {
                let env = MapEnv::new();
                let out = select(&rel, &pred(p), &env).unwrap();
                let (o, r) = (out.as_set().unwrap(), rel.as_set().unwrap());
                prop_assert!(o.len() <= r.len());
                prop_assert!(o.is_subset(r));
            }

            /// Projection is idempotent on its own field set.
            #[test]
            fn projection_idempotent(rel in arb_relation()) {
                let once = project(&rel, &["a", "b"]).unwrap();
                let twice = project(&once, &["a", "b"]).unwrap();
                prop_assert_eq!(once.clone(), twice);
                prop_assert_eq!(once, rel);
            }

            /// π commutes with σ when σ only mentions kept fields.
            #[test]
            fn project_select_commute(rel in arb_relation(), p in 0i64..20) {
                let env = MapEnv::new();
                let sel_then_proj =
                    project(&select(&rel, &pred(p), &env).unwrap(), &["a"]).unwrap();
                // projecting to a single field yields raw values, so the
                // commuted side projects AFTER evaluating on tuples:
                let proj_keeping = project(&rel, &["a"]).unwrap();
                // σ over raw values needs the value bound as `a`; rebuild
                // tuples to compare fairly
                let rebuilt = Value::Set(
                    proj_keeping
                        .as_set()
                        .unwrap()
                        .iter()
                        .filter(|v| v.as_int().unwrap() >= p)
                        .cloned()
                        .collect(),
                );
                prop_assert_eq!(sel_then_proj, rebuilt);
            }

            /// Natural join with the full relation is idempotent: R ⋈ R = R.
            #[test]
            fn self_join_identity(rel in arb_relation()) {
                let joined = join(&rel, &rel).unwrap();
                prop_assert_eq!(joined, rel);
            }

            /// count respects selection partition:
            /// |σ_p(R)| + |σ_¬p(R)| = |R|.
            #[test]
            fn selection_partitions(rel in arb_relation(), p in 0i64..20) {
                let env = MapEnv::new();
                let yes = select(&rel, &pred(p), &env).unwrap();
                let no = select(
                    &rel,
                    &Term::apply(Op::Not, vec![pred(p)]),
                    &env,
                )
                .unwrap();
                let total = rel.as_set().unwrap().len();
                prop_assert_eq!(
                    yes.as_set().unwrap().len() + no.as_set().unwrap().len(),
                    total
                );
            }
        }
    }
}
