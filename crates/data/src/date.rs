//! Calendar dates — the `date` data type of the paper's examples
//! (`est_date: date`, `birthdate: date`, `ebirth: date`).

use crate::DataError;
use std::fmt;
use std::str::FromStr;

/// A proleptic Gregorian calendar date.
///
/// TROLL specifications use `date` as an opaque base sort with equality
/// and ordering (department establishment dates, person birthdates).
/// We implement a real calendar so examples can construct and compare
/// meaningful dates.
///
/// # Example
///
/// ```
/// use troll_data::Date;
/// let d = Date::new(1991, 10, 16)?;
/// assert!(d < Date::new(2026, 7, 5)?);
/// assert_eq!(d.to_string(), "1991-10-16");
/// # Ok::<(), troll_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating the month and day against the calendar.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidDate`] if `month` is not in `1..=12` or
    /// `day` is not valid for the given month/year (leap years are
    /// handled).
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DataError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(DataError::InvalidDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Number of days since the epoch 0000-03-01 (useful for date
    /// arithmetic and ordering proofs in tests).
    pub fn day_number(&self) -> i64 {
        // Standard civil-from-days inverse (Howard Hinnant's algorithm).
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = i64::from((self.month + 9) % 12);
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }

    /// Returns the date `n` days later (or earlier for negative `n`).
    ///
    /// # Panics
    ///
    /// Panics when the result falls outside the representable year range
    /// (`i32`) or the day arithmetic overflows `i64`. Use
    /// [`Date::checked_plus_days`] on untrusted offsets — the valuation
    /// evaluator does, surfacing [`DataError::Overflow`] instead.
    pub fn plus_days(&self, n: i64) -> Date {
        self.checked_plus_days(n).unwrap_or_else(|| {
            panic!("date {self} plus {n} days overflows the representable range")
        })
    }

    /// Returns the date `n` days later (or earlier for negative `n`), or
    /// `None` when the day arithmetic overflows `i64` or the resulting
    /// year does not fit an `i32`.
    pub fn checked_plus_days(&self, n: i64) -> Option<Date> {
        let z = self.day_number().checked_add(n)?;
        let era = if z >= 0 { z } else { z.checked_sub(146_096)? } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe.checked_add(era.checked_mul(400)?)?;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = ((mp + 2) % 12 + 1) as u8;
        let y = i32::try_from(y.checked_add(i64::from(m <= 2))?).ok()?;
        Some(Date {
            year: y,
            month: m,
            day: d,
        })
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = DataError;

    /// Parses `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || DataError::InvalidDate {
            year: 0,
            month: 0,
            day: 0,
        };
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u8 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::new(year, month, day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_and_invalid_dates() {
        assert!(Date::new(1991, 10, 16).is_ok());
        assert!(Date::new(2024, 2, 29).is_ok()); // leap year
        assert!(Date::new(2023, 2, 29).is_err());
        assert!(Date::new(2023, 13, 1).is_err());
        assert!(Date::new(2023, 0, 1).is_err());
        assert!(Date::new(2023, 4, 31).is_err());
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-year leap
        assert!(Date::new(1900, 2, 29).is_err()); // 100-year non-leap
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(1991, 10, 16).unwrap();
        let b = Date::new(1991, 11, 1).unwrap();
        let c = Date::new(1992, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn parse_round_trip() {
        let d: Date = "1991-10-16".parse().unwrap();
        assert_eq!(d, Date::new(1991, 10, 16).unwrap());
        assert_eq!(d.to_string().parse::<Date>().unwrap(), d);
        assert!("not-a-date".parse::<Date>().is_err());
        assert!("1991-13-01".parse::<Date>().is_err());
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        let d = Date::new(1991, 12, 31).unwrap();
        assert_eq!(d.plus_days(1), Date::new(1992, 1, 1).unwrap());
        assert_eq!(d.plus_days(-365), Date::new(1990, 12, 31).unwrap());
        let leap = Date::new(2024, 2, 28).unwrap();
        assert_eq!(leap.plus_days(1), Date::new(2024, 2, 29).unwrap());
        assert_eq!(leap.plus_days(2), Date::new(2024, 3, 1).unwrap());
    }

    #[test]
    fn checked_plus_days_guards_overflow() {
        let d = Date::new(1991, 10, 16).unwrap();
        assert_eq!(
            d.checked_plus_days(1),
            Some(Date::new(1991, 10, 17).unwrap())
        );
        // i64 day arithmetic overflow
        assert_eq!(d.checked_plus_days(i64::MAX), None);
        assert_eq!(d.checked_plus_days(i64::MIN), None);
        // year leaves the i32 range without overflowing i64 days
        assert_eq!(d.checked_plus_days(800 * 365 * 3_000_000_000), None);
        assert_eq!(d.checked_plus_days(-800 * 365 * 3_000_000_000), None);
        // boundary years still round-trip
        let far = Date::new(i32::MAX, 12, 1).unwrap();
        assert_eq!(far.checked_plus_days(-1).unwrap().plus_days(1), far);
        assert_eq!(far.checked_plus_days(31), None);
    }

    proptest! {
        #[test]
        fn day_number_is_strictly_monotone(y in 1800i32..2200, m in 1u8..=12, d in 1u8..=28, n in 1i64..1000) {
            let date = Date::new(y, m, d).unwrap();
            let later = date.plus_days(n);
            prop_assert!(later > date);
            prop_assert_eq!(later.day_number() - date.day_number(), n);
        }

        #[test]
        fn plus_days_round_trips(y in 1800i32..2200, m in 1u8..=12, d in 1u8..=28, n in -10000i64..10000) {
            let date = Date::new(y, m, d).unwrap();
            prop_assert_eq!(date.plus_days(n).plus_days(-n), date);
        }
    }
}
