//! Error type for data-level operations.

use std::fmt;

/// Error raised by evaluation of data terms and built-in operations.
///
/// TROLL data terms are strongly sorted; evaluation only fails on genuine
/// sort errors (applying an operation to values outside its domain),
/// references to unbound variables, or partial operations applied outside
/// their domain (e.g. division by zero, `head` of an empty list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An operation was applied to values of the wrong sort.
    SortMismatch {
        /// The operation (or context) that failed.
        context: String,
        /// Human-readable description of what was expected.
        expected: String,
        /// Debug rendering of the offending value.
        found: String,
    },
    /// A variable was referenced that is not bound in the environment.
    UnboundVariable(String),
    /// A tuple field was accessed that does not exist.
    NoSuchField {
        /// The field name looked up.
        field: String,
        /// The fields that do exist on the tuple.
        available: Vec<String>,
    },
    /// A partial operation was applied outside its domain.
    Undefined(String),
    /// Arithmetic overflowed the underlying machine representation.
    Overflow(String),
    /// An operation was applied with the wrong number of arguments.
    Arity {
        /// The operation name.
        op: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// An invalid date was constructed.
    InvalidDate {
        /// Year component.
        year: i32,
        /// Month component.
        month: u8,
        /// Day component.
        day: u8,
    },
}

impl DataError {
    /// Convenience constructor for [`DataError::SortMismatch`].
    pub fn sort_mismatch(
        context: impl Into<String>,
        expected: impl Into<String>,
        found: impl fmt::Debug,
    ) -> Self {
        DataError::SortMismatch {
            context: context.into(),
            expected: expected.into(),
            found: format!("{found:?}"),
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SortMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "sort mismatch in {context}: expected {expected}, found {found}"
            ),
            DataError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            DataError::NoSuchField { field, available } => {
                write!(f, "no field `{field}` in tuple with fields {available:?}")
            }
            DataError::Undefined(what) => write!(f, "undefined: {what}"),
            DataError::Overflow(what) => write!(f, "arithmetic overflow in {what}"),
            DataError::Arity {
                op,
                expected,
                found,
            } => write!(
                f,
                "operation `{op}` expects {expected} argument(s), got {found}"
            ),
            DataError::InvalidDate { year, month, day } => {
                write!(f, "invalid date {year:04}-{month:02}-{day:02}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DataError::UnboundVariable("x".into());
        assert_eq!(e.to_string(), "unbound variable `x`");
        let e = DataError::Arity {
            op: "insert".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("insert"));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }

    #[test]
    fn sort_mismatch_helper_formats_found_value() {
        let e = DataError::sort_mismatch("plus", "int", 3.5f64);
        match e {
            DataError::SortMismatch { found, .. } => assert_eq!(found, "3.5"),
            _ => panic!("wrong variant"),
        }
    }
}
