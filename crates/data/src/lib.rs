//! # troll-data — abstract data types for TROLL specifications
//!
//! This crate provides the *data dimension* of the TROLL object
//! specification language (Saake, Jungclaus, Ehrich 1991): the abstract
//! data types over which object attributes, event parameters and object
//! identities range.
//!
//! The paper treats data values as given by "an arbitrary abstract data
//! type" (Section 3, object identities; Section 4, `data types date,
//! PERSON, set(PERSON)`). This crate makes that precise and executable:
//!
//! * [`Sort`] — the type language: base sorts (`bool`, `int`, `nat`,
//!   `string`, `date`, `money`), identity sorts `|C|` for each object
//!   class `C`, and the parameterized constructors `set(_)`, `list(_)`,
//!   `map(_,_)`, `tuple(...)` and `optional(_)` used throughout the paper
//!   (e.g. `set(tuple(ename:string, ebirth:date, esalary:integer))` in the
//!   `emp_rel` example of Section 5.2).
//! * [`Value`] — the value universe, with total ordering so values can be
//!   members of sets and keys of maps.
//! * [`Op`] — the built-in operations (`insert`, `remove`, `in`,
//!   arithmetic, comparisons, …) referenced by valuation rules.
//! * [`Term`] — the core term IR that valuation rules, permissions,
//!   constraints and derivation rules are lowered to, evaluated against an
//!   [`Env`].
//! * [`algebra`] — the object query algebra of \[SJ90\] used in interface
//!   definitions and derivation rules (`select`, `project`, `join`,
//!   aggregates), operating on sets of tuples.
//!
//! # Example
//!
//! ```
//! use troll_data::{Value, Term, Op, MapEnv};
//!
//! // employees = insert(P, employees)   — the DEPT valuation rule
//! let term = Term::apply(
//!     Op::Insert,
//!     vec![Term::var("P"), Term::var("employees")],
//! );
//! let mut env = MapEnv::new();
//! env.bind("P", Value::from("alice"));
//! env.bind("employees", Value::set_of(vec![Value::from("bob")]));
//! let out = term.eval(&env)?;
//! assert_eq!(out, Value::set_of(vec![Value::from("alice"), Value::from("bob")]));
//! # Ok::<(), troll_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
mod date;
mod error;
mod money;
mod ops;
mod pcoll;
mod sort;
mod statemap;
mod term;
mod value;

pub use date::Date;
pub use error::DataError;
pub use money::Money;
pub use ops::Op;
pub use pcoll::{PList, PMap, PSet};
pub use sort::{Sort, TupleField};
pub use statemap::StateMap;
pub use term::{Env, Layered, MapEnv, Quantifier, Term};
pub use value::{ObjectId, Value};

/// Convenience result alias for fallible data operations.
pub type Result<T> = std::result::Result<T, DataError>;
