//! Fixed-point monetary amounts — the `money` data type used by the
//! paper's interface examples (`Salary: money`, `IncomeInYear(integer):
//! money`).

use crate::DataError;
use std::fmt;
use std::ops::Neg;
use std::str::FromStr;

/// A monetary amount in hundredths (cents) of an unspecified currency.
///
/// The paper's `SAL_EMPLOYEE2` interface derives
/// `CurrentIncomePerYear = Salary * 13.5` and calls
/// `ChangeSalary(Salary * 1.1)`; to keep the data universe totally
/// ordered (required for sets and maps) we avoid floating point and use
/// exact fixed-point arithmetic with banker's-free truncation toward
/// zero, matching what a database implementation of TROLL would do.
///
/// # Example
///
/// ```
/// use troll_data::Money;
/// let salary = Money::from_major(5_000);
/// assert_eq!(salary.scale_by_tenths(11), Money::from_major(5_500)); // *1.1
/// assert_eq!(salary.to_string(), "5000.00");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Money(i64);

impl Money {
    /// Zero amount.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from whole currency units.
    pub fn from_major(units: i64) -> Self {
        Money(units * 100)
    }

    /// Creates an amount from hundredths (cents).
    pub fn from_cents(cents: i64) -> Self {
        Money(cents)
    }

    /// The amount in cents.
    pub fn cents(&self) -> i64 {
        self.0
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Overflow`] on overflow.
    pub fn checked_add(self, other: Money) -> Result<Money, DataError> {
        self.0
            .checked_add(other.0)
            .map(Money)
            .ok_or_else(|| DataError::Overflow("money addition".into()))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Overflow`] on overflow.
    pub fn checked_sub(self, other: Money) -> Result<Money, DataError> {
        self.0
            .checked_sub(other.0)
            .map(Money)
            .ok_or_else(|| DataError::Overflow("money subtraction".into()))
    }

    /// Multiplies by an integer factor.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Overflow`] on overflow.
    pub fn checked_mul(self, factor: i64) -> Result<Money, DataError> {
        self.0
            .checked_mul(factor)
            .map(Money)
            .ok_or_else(|| DataError::Overflow("money multiplication".into()))
    }

    /// Scales by `tenths / 10` exactly (e.g. `scale_by_tenths(11)` is
    /// multiplication by 1.1, `scale_by_tenths(135)` by 13.5), truncating
    /// any sub-cent remainder toward zero.
    pub fn scale_by_tenths(self, tenths: i64) -> Money {
        Money(self.0.saturating_mul(tenths) / 10)
    }

    /// Scales by the rational `num / den`, truncating toward zero.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Undefined`] if `den == 0` and
    /// [`DataError::Overflow`] on overflow.
    pub fn scale(self, num: i64, den: i64) -> Result<Money, DataError> {
        if den == 0 {
            return Err(DataError::Undefined(
                "money scale by zero denominator".into(),
            ));
        }
        self.0
            .checked_mul(num)
            .map(|x| Money(x / den))
            .ok_or_else(|| DataError::Overflow("money scaling".into()))
    }
}

impl Neg for Money {
    type Output = Money;

    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

impl FromStr for Money {
    type Err = DataError;

    /// Parses `123`, `123.4` or `123.45` (optionally signed).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || DataError::Undefined(format!("cannot parse money literal `{s}`"));
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (-1i64, r),
            None => (1i64, s),
        };
        let (whole, frac) = match rest.split_once('.') {
            Some((w, f)) => (w, f),
            None => (rest, ""),
        };
        if whole.is_empty() || frac.len() > 2 {
            return Err(bad());
        }
        let units: i64 = whole.parse().map_err(|_| bad())?;
        let cents: i64 = if frac.is_empty() {
            0
        } else {
            let padded = format!("{frac:0<2}");
            padded.parse().map_err(|_| bad())?
        };
        Ok(Money(sign * (units * 100 + cents)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Money::from_major(5000).to_string(), "5000.00");
        assert_eq!(Money::from_cents(123).to_string(), "1.23");
        assert_eq!(Money::from_cents(-5).to_string(), "-0.05");
        assert_eq!(Money::ZERO, Money::default());
    }

    #[test]
    fn paper_derivations() {
        // SAL_EMPLOYEE2: CurrentIncomePerYear = Salary * 13.5
        let salary = Money::from_major(4_000);
        assert_eq!(salary.scale_by_tenths(135), Money::from_major(54_000));
        // IncreaseSalary >> ChangeSalary(Salary * 1.1)
        assert_eq!(salary.scale_by_tenths(11), Money::from_major(4_400));
    }

    #[test]
    fn parsing() {
        assert_eq!("5000".parse::<Money>().unwrap(), Money::from_major(5000));
        assert_eq!("12.5".parse::<Money>().unwrap(), Money::from_cents(1250));
        assert_eq!("-3.07".parse::<Money>().unwrap(), Money::from_cents(-307));
        assert!("12.345".parse::<Money>().is_err());
        assert!("abc".parse::<Money>().is_err());
        assert!(".5".parse::<Money>().is_err());
    }

    #[test]
    fn checked_arithmetic() {
        let a = Money::from_major(10);
        let b = Money::from_major(3);
        assert_eq!(a.checked_add(b).unwrap(), Money::from_major(13));
        assert_eq!(a.checked_sub(b).unwrap(), Money::from_major(7));
        assert_eq!(a.checked_mul(3).unwrap(), Money::from_major(30));
        assert!(Money::from_cents(i64::MAX)
            .checked_add(Money::from_cents(1))
            .is_err());
        assert!(Money::from_cents(i64::MAX).checked_mul(2).is_err());
        assert!(a.scale(1, 0).is_err());
        assert_eq!(a.scale(3, 2).unwrap(), Money::from_major(15));
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(cents in -1_000_000_000i64..1_000_000_000) {
            let m = Money::from_cents(cents);
            prop_assert_eq!(m.to_string().parse::<Money>().unwrap(), m);
        }

        #[test]
        fn add_sub_inverse(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (a, b) = (Money::from_cents(a), Money::from_cents(b));
            prop_assert_eq!(a.checked_add(b).unwrap().checked_sub(b).unwrap(), a);
        }

        #[test]
        fn ordering_respects_cents(a in any::<i32>(), b in any::<i32>()) {
            let (ma, mb) = (Money::from_cents(a as i64), Money::from_cents(b as i64));
            prop_assert_eq!(ma.cmp(&mb), (a as i64).cmp(&(b as i64)));
        }
    }
}
