//! Built-in operations on data values.
//!
//! These are the operations TROLL valuation rules and derivation rules
//! refer to: the paper's examples use `insert`, `remove`, `delete`, `in`
//! on sets, arithmetic on integers and money (`Salary + n`,
//! `Salary * 13.5`), and comparisons (`Salary ≥ 5000`).

use crate::{DataError, Money, PList, PMap, PSet, Result, Value};
use std::fmt;

/// A built-in operation symbol.
///
/// Apply one with [`Op::apply`]:
///
/// ```
/// use troll_data::{Op, Value};
/// let s = Value::set_of(vec![Value::from(1)]);
/// let s2 = Op::Insert.apply(&[Value::from(2), s])?;
/// assert_eq!(Op::Card.apply(&[s2])?, Value::from(2));
/// # Ok::<(), troll_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Op {
    // --- boolean ---
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Logical negation.
    Not,
    /// Logical implication.
    Implies,

    // --- comparison (any sort, structural) ---
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Strictly less (ints, money, dates, strings).
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,

    // --- arithmetic (int and money) ---
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (int×int, or money×int in either order).
    Mul,
    /// Integer division (partial: divisor must be nonzero).
    Div,
    /// Remainder (partial: divisor must be nonzero).
    Mod,
    /// Numeric negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Money scaled by tenths: `scale_tenths(m, 11)` is `m * 1.1`.
    ScaleTenths,

    // --- sets ---
    /// `insert(x, s)` — set with `x` added (paper's valuation rules).
    Insert,
    /// `remove(x, s)` — set with `x` removed (alias: `delete`).
    Remove,
    /// `in(x, s)` — membership test (also works on lists and map keys).
    In,
    /// Set union.
    Union,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Difference,
    /// Subset test.
    Subset,
    /// `card(s)` / `count(s)` — cardinality of a set or length of a list.
    Card,

    // --- lists ---
    /// `append(x, l)` — list with `x` appended at the back.
    Append,
    /// `concat(l1, l2)` — list concatenation.
    Concat,
    /// `head(l)` — first element (partial).
    Head,
    /// `tail(l)` — all but the first element (partial).
    Tail,
    /// `nth(i, l)` — zero-based indexing (partial).
    Nth,
    /// `to_set(l)` — forget order and multiplicity.
    ToSet,
    /// `to_list(s)` — enumerate a set in its canonical order.
    ToList,

    // --- maps ---
    /// `put(k, v, m)` — map update.
    MapPut,
    /// `get(k, m)` — map lookup (partial).
    MapGet,
    /// `drop(k, m)` — remove a key.
    MapDrop,
    /// `keys(m)` — the key set.
    MapKeys,
    /// `values(m)` — the values as a list (in key order).
    MapValues,

    // --- strings ---
    /// String concatenation.
    StrConcat,
    /// String length.
    StrLen,
    /// Substring containment.
    StrContains,

    // --- dates ---
    /// `plus_days(d, n)`.
    DatePlusDays,
    /// `year(d)`.
    DateYear,

    // --- definedness ---
    /// `defined(v)` — true unless `v` is the undefined observation.
    IsDefined,

    // --- identities ---
    /// `mkid(class, [k1, …])` — constructs an object identity from a
    /// class name and a key list. Surface syntax: `|CLASS|(k1, …)`.
    MkId,
}

impl Op {
    /// The TROLL surface name of the operation (what the parser accepts).
    pub fn name(&self) -> &'static str {
        use Op::*;
        match self {
            And => "and",
            Or => "or",
            Not => "not",
            Implies => "implies",
            Eq => "=",
            Neq => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "div",
            Mod => "mod",
            Neg => "neg",
            Abs => "abs",
            Min => "min",
            Max => "max",
            ScaleTenths => "scale_tenths",
            Insert => "insert",
            Remove => "remove",
            In => "in",
            Union => "union",
            Intersect => "intersect",
            Difference => "difference",
            Subset => "subset",
            Card => "card",
            Append => "append",
            Concat => "concat",
            Head => "head",
            Tail => "tail",
            Nth => "nth",
            ToSet => "to_set",
            ToList => "to_list",
            MapPut => "put",
            MapGet => "get",
            MapDrop => "drop",
            MapKeys => "keys",
            MapValues => "values",
            StrConcat => "str_concat",
            StrLen => "str_len",
            StrContains => "str_contains",
            DatePlusDays => "plus_days",
            DateYear => "year",
            IsDefined => "defined",
            MkId => "mkid",
        }
    }

    /// Looks an operation up by its surface name (including aliases such
    /// as `delete` for `remove` and `count` for `card`).
    pub fn by_name(name: &str) -> Option<Op> {
        use Op::*;
        Some(match name {
            "and" => And,
            "or" => Or,
            "not" => Not,
            "implies" => Implies,
            "=" => Eq,
            "<>" | "!=" => Neq,
            "<" => Lt,
            "<=" => Le,
            ">" => Gt,
            ">=" => Ge,
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "div" | "/" => Div,
            "mod" => Mod,
            "neg" => Neg,
            "abs" => Abs,
            "min" => Min,
            "max" => Max,
            "scale_tenths" => ScaleTenths,
            "insert" => Insert,
            "remove" | "delete" => Remove,
            "in" => In,
            "union" => Union,
            "intersect" => Intersect,
            "difference" | "minus" => Difference,
            "subset" => Subset,
            "card" | "count" => Card,
            "append" => Append,
            "concat" => Concat,
            "head" => Head,
            "tail" => Tail,
            "nth" => Nth,
            "to_set" => ToSet,
            "to_list" => ToList,
            "put" => MapPut,
            "get" => MapGet,
            "drop" => MapDrop,
            "keys" => MapKeys,
            "values" => MapValues,
            "str_concat" | "++" => StrConcat,
            "str_len" => StrLen,
            "str_contains" => StrContains,
            "plus_days" => DatePlusDays,
            "year" => DateYear,
            "defined" => IsDefined,
            "mkid" => MkId,
            _ => return None,
        })
    }

    /// Number of arguments the operation takes.
    pub fn arity(&self) -> usize {
        use Op::*;
        match self {
            Not | Neg | Abs | Card | Head | Tail | ToSet | ToList | MapKeys | MapValues
            | StrLen | DateYear | IsDefined => 1,
            And | Or | Implies | Eq | Neq | Lt | Le | Gt | Ge | Add | Sub | Mul | Div | Mod
            | Min | Max | ScaleTenths | Insert | Remove | In | Union | Intersect | Difference
            | Subset | Append | Concat | Nth | MapGet | MapDrop | StrConcat | StrContains
            | DatePlusDays | MkId => 2,
            MapPut => 3,
        }
    }

    /// Applies the operation to the given arguments.
    ///
    /// # Errors
    ///
    /// * [`DataError::Arity`] if the wrong number of arguments is given.
    /// * [`DataError::SortMismatch`] if an argument has the wrong sort.
    /// * [`DataError::Undefined`] for partial operations outside their
    ///   domain (`head []`, `get` on a missing key, division by zero).
    /// * [`DataError::Overflow`] on arithmetic overflow.
    pub fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.arity() {
            return Err(DataError::Arity {
                op: self.name().to_string(),
                expected: self.arity(),
                found: args.len(),
            });
        }
        match self.arity() {
            1 => self.apply1(&args[0]),
            2 => self.apply2(&args[0], &args[1]),
            _ => self.apply3(&args[0], &args[1], &args[2]),
        }
    }

    /// [`Op::apply`] for a unary operation, without slice packing.
    ///
    /// # Panics
    ///
    /// If `self` is not unary (`arity() != 1`).
    pub fn apply1(&self, a: &Value) -> Result<Value> {
        use Op::*;
        match self {
            Not => {
                let a = want_bool(self, a)?;
                Ok(Value::Bool(!a))
            }
            Neg => match a {
                Value::Int(i) => i
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or_else(|| DataError::Overflow("neg".into())),
                Value::Money(m) => Ok(Value::Money(-*m)),
                other => Err(DataError::sort_mismatch("neg", "int or money", other)),
            },
            Abs => match a {
                Value::Int(i) => i
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| DataError::Overflow("abs".into())),
                Value::Money(m) => Ok(Value::Money(if m.cents() < 0 { -*m } else { *m })),
                other => Err(DataError::sort_mismatch("abs", "int or money", other)),
            },
            Card => match a {
                Value::Set(s) => Ok(Value::Int(s.len() as i64)),
                Value::List(l) => Ok(Value::Int(l.len() as i64)),
                Value::Map(m) => Ok(Value::Int(m.len() as i64)),
                other => Err(DataError::sort_mismatch("card", "set, list or map", other)),
            },
            Head => want_list(self, a)?
                .first()
                .cloned()
                .ok_or_else(|| DataError::Undefined("head of empty list".into())),
            Tail => {
                let l = want_list(self, a)?;
                match l.tail() {
                    None => Err(DataError::Undefined("tail of empty list".into())),
                    Some(t) => Ok(Value::List(t)),
                }
            }
            ToSet => {
                let l = want_list(self, a)?;
                Ok(Value::Set(l.iter().cloned().collect()))
            }
            ToList => {
                let s = want_set(self, a)?;
                Ok(Value::List(s.iter().cloned().collect()))
            }
            MapKeys => {
                let m = want_map(self, a)?;
                Ok(Value::Set(m.keys().cloned().collect()))
            }
            MapValues => {
                let m = want_map(self, a)?;
                Ok(Value::List(m.values().cloned().collect()))
            }
            StrLen => match a {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DataError::sort_mismatch("str_len", "string", other)),
            },
            DateYear => match a {
                Value::Date(d) => Ok(Value::Int(i64::from(d.year()))),
                other => Err(DataError::sort_mismatch("year", "date", other)),
            },
            IsDefined => Ok(Value::Bool(!a.is_undefined())),
            other => unreachable!("apply1 called with non-unary op {other}"),
        }
    }

    /// [`Op::apply`] for a binary operation, without slice packing —
    /// the operands need not be adjacent in the caller's storage.
    ///
    /// # Panics
    ///
    /// If `self` is not binary (`arity() != 2`).
    pub fn apply2(&self, a: &Value, b: &Value) -> Result<Value> {
        use Op::*;
        match self {
            And => bool2(self, a, b, |a, b| a && b),
            Or => bool2(self, a, b, |a, b| a || b),
            Implies => bool2(self, a, b, |a, b| !a || b),
            Eq => Ok(Value::Bool(a == b)),
            Neq => Ok(Value::Bool(a != b)),
            Lt | Le | Gt | Ge => compare(self, a, b),
            Add | Sub | Mul | Div | Mod | Min | Max => arith(self, a, b),
            ScaleTenths => match (a, b) {
                (Value::Money(m), Value::Int(t)) => Ok(Value::Money(m.scale_by_tenths(*t))),
                (a, b) => Err(DataError::sort_mismatch(
                    "scale_tenths",
                    "(money, int)",
                    (a, b),
                )),
            },
            Insert => {
                let mut s = want_set(self, b)?.clone();
                s.insert(a.clone());
                Ok(Value::Set(s))
            }
            Remove => {
                let mut s = want_set(self, b)?.clone();
                s.remove(a);
                Ok(Value::Set(s))
            }
            In => match b {
                Value::Set(s) => Ok(Value::Bool(s.contains(a))),
                Value::List(l) => Ok(Value::Bool(l.contains(a))),
                Value::Map(m) => Ok(Value::Bool(m.contains_key(a))),
                other => Err(DataError::sort_mismatch("in", "set, list or map", other)),
            },
            Union => set2(self, a, b, |a, b| {
                let mut out = a.clone();
                for e in b.iter() {
                    out.insert(e.clone());
                }
                out
            }),
            Intersect => set2(self, a, b, |a, b| {
                a.iter().filter(|e| b.contains(e)).cloned().collect()
            }),
            Difference => set2(self, a, b, |a, b| {
                a.iter().filter(|e| !b.contains(e)).cloned().collect()
            }),
            Subset => {
                let a = want_set(self, a)?;
                let b = want_set(self, b)?;
                Ok(Value::Bool(a.is_subset(b)))
            }
            Append => {
                let mut l = want_list(self, b)?.clone();
                l.push_back(a.clone());
                Ok(Value::List(l))
            }
            Concat => {
                let mut l = want_list(self, a)?.clone();
                l.extend(want_list(self, b)?.iter().cloned());
                Ok(Value::List(l))
            }
            Nth => {
                let i = want_int(self, a)?;
                let l = want_list(self, b)?;
                usize::try_from(i)
                    .ok()
                    .and_then(|i| l.get(i))
                    .cloned()
                    .ok_or_else(|| DataError::Undefined(format!("nth({i}) out of bounds")))
            }
            MapGet => want_map(self, b)?
                .get(a)
                .cloned()
                .ok_or_else(|| DataError::Undefined(format!("get: key {a} not in map"))),
            MapDrop => {
                let mut m = want_map(self, b)?.clone();
                m.remove(a);
                Ok(Value::Map(m))
            }
            StrConcat => match (a, b) {
                (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
                (a, b) => Err(DataError::sort_mismatch(
                    "str_concat",
                    "(string, string)",
                    (a, b),
                )),
            },
            StrContains => match (a, b) {
                (Value::Str(hay), Value::Str(needle)) => Ok(Value::Bool(hay.contains(needle))),
                (a, b) => Err(DataError::sort_mismatch(
                    "str_contains",
                    "(string, string)",
                    (a, b),
                )),
            },
            DatePlusDays => match (a, b) {
                (Value::Date(d), Value::Int(n)) => d
                    .checked_plus_days(*n)
                    .map(Value::Date)
                    .ok_or_else(|| DataError::Overflow("plus_days".into())),
                (a, b) => Err(DataError::sort_mismatch("plus_days", "(date, int)", (a, b))),
            },
            MkId => match (a, b) {
                (Value::Str(class), Value::List(key)) => Ok(Value::Id(crate::ObjectId::new(
                    class.clone(),
                    key.iter().cloned().collect(),
                ))),
                (a, b) => Err(DataError::sort_mismatch(
                    "mkid",
                    "(string, list of key values)",
                    (a, b),
                )),
            },
            other => unreachable!("apply2 called with non-binary op {other}"),
        }
    }

    /// [`Op::apply`] for a ternary operation, without slice packing.
    ///
    /// # Panics
    ///
    /// If `self` is not ternary (`arity() != 3`).
    pub fn apply3(&self, a: &Value, b: &Value, c: &Value) -> Result<Value> {
        use Op::*;
        match self {
            MapPut => {
                let mut m = want_map(self, c)?.clone();
                m.insert(a.clone(), b.clone());
                Ok(Value::Map(m))
            }
            other => unreachable!("apply3 called with non-ternary op {other}"),
        }
    }

    /// Applies the operation to arguments the caller owns, donating
    /// collection operands instead of cloning them (set insert/remove
    /// and the other collection-building operations). Produces exactly
    /// the value or error [`Op::apply`] would — each arm is guarded on
    /// the operand shapes it consumes and everything else (including
    /// every error case) delegates to `apply` with the arguments
    /// untouched. Consumed operand slots are left `Undefined`.
    ///
    /// With persistent collection payloads the collection handle itself
    /// is O(1) to clone either way; what donation still saves is the
    /// clone of the *element* operand (`insert`/`append`/`put`).
    pub fn apply_owned(&self, args: &mut [Value]) -> Result<Value> {
        use std::mem::take;
        use Op::*;
        if args.len() != self.arity() {
            return self.apply(args);
        }
        match self {
            Insert if args[1].as_set().is_some() => {
                let Value::Set(mut s) = take(&mut args[1]) else {
                    unreachable!()
                };
                s.insert(take(&mut args[0]));
                Ok(Value::Set(s))
            }
            Remove if args[1].as_set().is_some() => {
                let Value::Set(mut s) = take(&mut args[1]) else {
                    unreachable!()
                };
                s.remove(&args[0]);
                Ok(Value::Set(s))
            }
            Union if args[0].as_set().is_some() && args[1].as_set().is_some() => {
                let (Value::Set(mut a), Value::Set(b)) = (take(&mut args[0]), take(&mut args[1]))
                else {
                    unreachable!()
                };
                a.extend(b);
                Ok(Value::Set(a))
            }
            Append if args[1].as_list().is_some() => {
                let Value::List(mut l) = take(&mut args[1]) else {
                    unreachable!()
                };
                l.push_back(take(&mut args[0]));
                Ok(Value::List(l))
            }
            Concat if args[0].as_list().is_some() && args[1].as_list().is_some() => {
                let (Value::List(mut a), Value::List(b)) = (take(&mut args[0]), take(&mut args[1]))
                else {
                    unreachable!()
                };
                a.extend(b);
                Ok(Value::List(a))
            }
            Head if args[0].as_list().is_some_and(|l| !l.is_empty()) => {
                let Value::List(mut l) = take(&mut args[0]) else {
                    unreachable!()
                };
                Ok(l.remove_at(0).expect("guarded non-empty"))
            }
            Tail if args[0].as_list().is_some_and(|l| !l.is_empty()) => {
                let Value::List(l) = take(&mut args[0]) else {
                    unreachable!()
                };
                Ok(Value::List(l.tail().expect("guarded non-empty")))
            }
            ToSet if args[0].as_list().is_some() => {
                let Value::List(l) = take(&mut args[0]) else {
                    unreachable!()
                };
                Ok(Value::Set(l.into_iter().collect()))
            }
            ToList if args[0].as_set().is_some() => {
                let Value::Set(s) = take(&mut args[0]) else {
                    unreachable!()
                };
                Ok(Value::List(s.into_iter().collect()))
            }
            MapPut if matches!(args[2], Value::Map(_)) => {
                let Value::Map(mut m) = take(&mut args[2]) else {
                    unreachable!()
                };
                m.insert(take(&mut args[0]), take(&mut args[1]));
                Ok(Value::Map(m))
            }
            MapDrop if matches!(args[1], Value::Map(_)) => {
                let Value::Map(mut m) = take(&mut args[1]) else {
                    unreachable!()
                };
                m.remove(&args[0]);
                Ok(Value::Map(m))
            }
            _ => self.apply(args),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn want_bool(op: &Op, v: &Value) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| DataError::sort_mismatch(op.name(), "bool", v))
}

fn want_int(op: &Op, v: &Value) -> Result<i64> {
    v.as_int()
        .ok_or_else(|| DataError::sort_mismatch(op.name(), "int", v))
}

fn want_set<'a>(op: &Op, v: &'a Value) -> Result<&'a PSet> {
    v.as_set()
        .ok_or_else(|| DataError::sort_mismatch(op.name(), "set", v))
}

fn want_list<'a>(op: &Op, v: &'a Value) -> Result<&'a PList> {
    v.as_list()
        .ok_or_else(|| DataError::sort_mismatch(op.name(), "list", v))
}

fn want_map<'a>(op: &Op, v: &'a Value) -> Result<&'a PMap> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DataError::sort_mismatch(op.name(), "map", other)),
    }
}

fn bool2(op: &Op, a: &Value, b: &Value, f: impl Fn(bool, bool) -> bool) -> Result<Value> {
    let a = want_bool(op, a)?;
    let b = want_bool(op, b)?;
    Ok(Value::Bool(f(a, b)))
}

fn set2(op: &Op, a: &Value, b: &Value, f: impl Fn(&PSet, &PSet) -> PSet) -> Result<Value> {
    let a = want_set(op, a)?;
    let b = want_set(op, b)?;
    Ok(Value::Set(f(a, b)))
}

fn compare(op: &Op, a: &Value, b: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Money(x), Value::Money(y)) => x.cmp(y),
        (Value::Date(x), Value::Date(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            return Err(DataError::sort_mismatch(
                op.name(),
                "two comparable values of the same sort",
                (a, b),
            ))
        }
    };
    Ok(Value::Bool(match op {
        Op::Lt => ord == Ordering::Less,
        Op::Le => ord != Ordering::Greater,
        Op::Gt => ord == Ordering::Greater,
        Op::Ge => ord != Ordering::Less,
        _ => unreachable!("compare called with non-comparison op"),
    }))
}

fn arith(op: &Op, a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let r = match op {
                Op::Add => x.checked_add(*y),
                Op::Sub => x.checked_sub(*y),
                Op::Mul => x.checked_mul(*y),
                Op::Div => {
                    if *y == 0 {
                        return Err(DataError::Undefined("division by zero".into()));
                    }
                    x.checked_div(*y)
                }
                Op::Mod => {
                    if *y == 0 {
                        return Err(DataError::Undefined("modulo by zero".into()));
                    }
                    x.checked_rem(*y)
                }
                Op::Min => Some(*x.min(y)),
                Op::Max => Some(*x.max(y)),
                _ => unreachable!("arith called with non-arith op"),
            };
            r.map(Value::Int)
                .ok_or_else(|| DataError::Overflow(op.name().into()))
        }
        (Value::Money(x), Value::Money(y)) => match op {
            Op::Add => x.checked_add(*y).map(Value::Money),
            Op::Sub => x.checked_sub(*y).map(Value::Money),
            Op::Min => Ok(Value::Money(*x.min(y))),
            Op::Max => Ok(Value::Money(*x.max(y))),
            _ => Err(DataError::sort_mismatch(
                op.name(),
                "money supports +, -, min, max",
                (a, b),
            )),
        },
        (Value::Money(m), Value::Int(k)) | (Value::Int(k), Value::Money(m)) if *op == Op::Mul => {
            m.checked_mul(*k).map(Value::Money)
        }
        (Value::Money(m), Value::Int(k)) if *op == Op::Add => {
            // `Salary + n` in the paper's EMPL_IMPL adds an integer amount
            // (whole currency units) to a money value.
            m.checked_add(Money::from_major(*k)).map(Value::Money)
        }
        (Value::Money(m), Value::Int(k)) if *op == Op::Sub => {
            m.checked_sub(Money::from_major(*k)).map(Value::Money)
        }
        _ => Err(DataError::sort_mismatch(
            op.name(),
            "numeric arguments of matching sort",
            (a, b),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Date;

    fn set(vals: Vec<i64>) -> Value {
        Value::set_of(vals.into_iter().map(Value::from))
    }

    #[test]
    fn name_round_trip() {
        for op in [
            Op::And,
            Op::Insert,
            Op::Remove,
            Op::In,
            Op::Card,
            Op::Eq,
            Op::Lt,
            Op::Add,
            Op::MapPut,
            Op::Head,
            Op::DateYear,
            Op::IsDefined,
        ] {
            assert_eq!(Op::by_name(op.name()), Some(op));
        }
        assert_eq!(Op::by_name("delete"), Some(Op::Remove));
        assert_eq!(Op::by_name("count"), Some(Op::Card));
        assert_eq!(Op::by_name("nonsense"), None);
    }

    #[test]
    fn arity_enforced() {
        let e = Op::Insert.apply(&[Value::from(1)]).unwrap_err();
        assert!(matches!(e, DataError::Arity { .. }));
    }

    #[test]
    fn set_ops() {
        let s = set(vec![1, 2]);
        assert_eq!(
            Op::Insert.apply(&[Value::from(3), s.clone()]).unwrap(),
            set(vec![1, 2, 3])
        );
        assert_eq!(
            Op::Remove.apply(&[Value::from(1), s.clone()]).unwrap(),
            set(vec![2])
        );
        assert_eq!(
            Op::In.apply(&[Value::from(2), s.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Op::Union.apply(&[s.clone(), set(vec![3])]).unwrap(),
            set(vec![1, 2, 3])
        );
        assert_eq!(
            Op::Intersect.apply(&[s.clone(), set(vec![2, 3])]).unwrap(),
            set(vec![2])
        );
        assert_eq!(
            Op::Difference.apply(&[s.clone(), set(vec![2])]).unwrap(),
            set(vec![1])
        );
        assert_eq!(
            Op::Subset.apply(&[set(vec![1]), s.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Op::Card.apply(&[s]).unwrap(), Value::from(2));
    }

    #[test]
    fn insert_is_idempotent_on_sets() {
        let s = set(vec![1]);
        let once = Op::Insert.apply(&[Value::from(1), s]).unwrap();
        assert_eq!(once, set(vec![1]));
    }

    #[test]
    fn list_ops() {
        let l = Value::list_of(vec![Value::from(1), Value::from(2)]);
        assert_eq!(
            Op::Head.apply(std::slice::from_ref(&l)).unwrap(),
            Value::from(1)
        );
        assert_eq!(
            Op::Tail.apply(std::slice::from_ref(&l)).unwrap(),
            Value::list_of(vec![Value::from(2)])
        );
        assert_eq!(
            Op::Nth.apply(&[Value::from(1), l.clone()]).unwrap(),
            Value::from(2)
        );
        assert!(Op::Head.apply(&[Value::empty_list()]).is_err());
        assert!(Op::Tail.apply(&[Value::empty_list()]).is_err());
        assert!(Op::Nth.apply(&[Value::from(5), l.clone()]).is_err());
        assert!(Op::Nth.apply(&[Value::from(-1), l.clone()]).is_err());
        assert_eq!(
            Op::Append.apply(&[Value::from(3), l.clone()]).unwrap(),
            Value::list_of(vec![Value::from(1), Value::from(2), Value::from(3)])
        );
        assert_eq!(Op::ToSet.apply(&[l]).unwrap(), set(vec![1, 2]));
    }

    #[test]
    fn map_ops() {
        let m = Value::map_of(vec![(Value::from("a"), Value::from(1))]);
        let m2 = Op::MapPut
            .apply(&[Value::from("b"), Value::from(2), m.clone()])
            .unwrap();
        assert_eq!(
            Op::MapGet.apply(&[Value::from("b"), m2.clone()]).unwrap(),
            Value::from(2)
        );
        assert!(Op::MapGet.apply(&[Value::from("zzz"), m2.clone()]).is_err());
        assert_eq!(
            Op::MapKeys.apply(std::slice::from_ref(&m2)).unwrap(),
            Value::set_of(vec![Value::from("a"), Value::from("b")])
        );
        let dropped = Op::MapDrop.apply(&[Value::from("a"), m2]).unwrap();
        assert_eq!(Op::Card.apply(&[dropped]).unwrap(), Value::from(1));
        assert_eq!(
            Op::In.apply(&[Value::from("a"), m]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic_int() {
        assert_eq!(
            Op::Add.apply(&[Value::from(2), Value::from(3)]).unwrap(),
            Value::from(5)
        );
        assert_eq!(
            Op::Div.apply(&[Value::from(7), Value::from(2)]).unwrap(),
            Value::from(3)
        );
        assert!(Op::Div.apply(&[Value::from(1), Value::from(0)]).is_err());
        assert!(Op::Mod.apply(&[Value::from(1), Value::from(0)]).is_err());
        assert!(Op::Add
            .apply(&[Value::from(i64::MAX), Value::from(1)])
            .is_err());
        assert_eq!(
            Op::Min.apply(&[Value::from(2), Value::from(3)]).unwrap(),
            Value::from(2)
        );
    }

    #[test]
    fn arithmetic_money() {
        let m = Value::Money(Money::from_major(100));
        // money + money
        assert_eq!(
            Op::Add.apply(&[m.clone(), m.clone()]).unwrap(),
            Value::Money(Money::from_major(200))
        );
        // money * int — SAL_EMPLOYEE2's Salary-based derivations
        assert_eq!(
            Op::Mul.apply(&[m.clone(), Value::from(3)]).unwrap(),
            Value::Money(Money::from_major(300))
        );
        // Salary + n with integer n (EMPL_IMPL IncreaseSalary)
        assert_eq!(
            Op::Add.apply(&[m.clone(), Value::from(50)]).unwrap(),
            Value::Money(Money::from_major(150))
        );
        // Salary * 1.1 via tenths
        assert_eq!(
            Op::ScaleTenths.apply(&[m, Value::from(11)]).unwrap(),
            Value::Money(Money::from_major(110))
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Op::Ge
                .apply(&[
                    Value::Money(Money::from_major(5500)),
                    Value::Money(Money::from_major(5000))
                ])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Op::Lt
                .apply(&[
                    Value::Date(Date::new(1991, 1, 1).unwrap()),
                    Value::Date(Date::new(1992, 1, 1).unwrap())
                ])
                .unwrap(),
            Value::Bool(true)
        );
        assert!(Op::Lt.apply(&[Value::from(1), Value::from("x")]).is_err());
        assert_eq!(
            Op::Eq.apply(&[Value::from(1), Value::from("x")]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn definedness() {
        assert_eq!(
            Op::IsDefined.apply(&[Value::Undefined]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Op::IsDefined.apply(&[Value::from(0)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn strings_and_dates() {
        assert_eq!(
            Op::StrConcat
                .apply(&[Value::from("ab"), Value::from("cd")])
                .unwrap(),
            Value::from("abcd")
        );
        assert_eq!(
            Op::StrLen.apply(&[Value::from("abc")]).unwrap(),
            Value::from(3)
        );
        assert_eq!(
            Op::StrContains
                .apply(&[Value::from("research dept"), Value::from("research")])
                .unwrap(),
            Value::Bool(true)
        );
        let d = Value::Date(Date::new(1991, 12, 31).unwrap());
        assert_eq!(
            Op::DatePlusDays
                .apply(&[d.clone(), Value::from(1)])
                .unwrap(),
            Value::Date(Date::new(1992, 1, 1).unwrap())
        );
        assert_eq!(Op::DateYear.apply(&[d]).unwrap(), Value::from(1991));
    }

    #[test]
    fn plus_days_overflow_is_an_error() {
        let d = Value::Date(Date::new(1991, 12, 31).unwrap());
        for n in [i64::MAX, i64::MIN, 800 * 365 * 3_000_000_000] {
            match Op::DatePlusDays.apply(&[d.clone(), Value::from(n)]) {
                Err(DataError::Overflow(what)) => assert_eq!(what, "plus_days"),
                other => panic!("expected overflow error, got {other:?}"),
            }
        }
    }
}
