//! Persistent, structurally shared collection values.
//!
//! [`PSet`], [`PList`] and [`PMap`] are the payloads of `Value::Set`,
//! `Value::List` and `Value::Map`. They follow the same playbook as
//! [`StateMap`](crate::StateMap): path-copying AVL trees whose nodes are
//! shared via [`Arc`], so cloning a collection is O(1) and producing
//! "old collection ± one element" is O(log n) — only the spine from the
//! root to the touched position is reallocated, everything else is
//! shared with the previous version.
//!
//! This is what makes delta-shaped valuation rules
//! (`employees := insert(P, employees)`) flat in history: historical
//! snapshots keep old versions alive, which with `Arc::make_mut`-style
//! copy-on-write would force a full O(n) clone on every step. Here the
//! old and new versions share all untouched subtrees by construction.
//!
//! Ordering, equality and hashing are **content-based** and coincide
//! with the previous `BTreeSet`/`Vec`/`BTreeMap` payloads: sets and maps
//! iterate in key order, lists in positional order, and comparisons are
//! lexicographic over that iteration. Canonical encodings and the total
//! order on `Value` are therefore unchanged.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// shared AVL core
// ---------------------------------------------------------------------------

type Link<T> = Option<Arc<Node<T>>>;

#[derive(Debug)]
struct Node<T> {
    elem: T,
    left: Link<T>,
    right: Link<T>,
    height: u8,
    size: usize,
}

fn height<T>(l: &Link<T>) -> u8 {
    l.as_ref().map_or(0, |n| n.height)
}

fn size<T>(l: &Link<T>) -> usize {
    l.as_ref().map_or(0, |n| n.size)
}

fn mk<T>(elem: T, left: Link<T>, right: Link<T>) -> Arc<Node<T>> {
    let height = 1 + height(&left).max(height(&right));
    let size = 1 + size(&left) + size(&right);
    Arc::new(Node {
        elem,
        left,
        right,
        height,
        size,
    })
}

/// Rebuilds a node and restores the AVL invariant (|balance| ≤ 1) with
/// at most two rotations. `elem`'s subtrees may differ in height by at
/// most 2, which is all that path-copy insert/remove can produce.
fn balance<T: Clone>(elem: T, left: Link<T>, right: Link<T>) -> Arc<Node<T>> {
    let (hl, hr) = (height(&left), height(&right));
    if hl > hr + 1 {
        let l = left.as_ref().expect("left-heavy implies left node");
        if height(&l.left) >= height(&l.right) {
            // single right rotation
            let new_right = mk(elem, l.right.clone(), right);
            mk(l.elem.clone(), l.left.clone(), Some(new_right))
        } else {
            // left-right double rotation
            let lr = l.right.as_ref().expect("double rotation pivot");
            let new_left = mk(l.elem.clone(), l.left.clone(), lr.left.clone());
            let new_right = mk(elem, lr.right.clone(), right);
            mk(lr.elem.clone(), Some(new_left), Some(new_right))
        }
    } else if hr > hl + 1 {
        let r = right.as_ref().expect("right-heavy implies right node");
        if height(&r.right) >= height(&r.left) {
            // single left rotation
            let new_left = mk(elem, left, r.left.clone());
            mk(r.elem.clone(), Some(new_left), r.right.clone())
        } else {
            // right-left double rotation
            let rl = r.left.as_ref().expect("double rotation pivot");
            let new_left = mk(elem, left, rl.left.clone());
            let new_right = mk(r.elem.clone(), rl.right.clone(), r.right.clone());
            mk(rl.elem.clone(), Some(new_left), Some(new_right))
        }
    } else {
        mk(elem, left, right)
    }
}

/// Removes the minimum element of a non-empty subtree, returning it and
/// the remaining tree.
fn take_min<T: Clone>(node: &Arc<Node<T>>) -> (T, Link<T>) {
    match &node.left {
        None => (node.elem.clone(), node.right.clone()),
        Some(l) => {
            let (min, rest) = take_min(l);
            (
                min,
                Some(balance(node.elem.clone(), rest, node.right.clone())),
            )
        }
    }
}

/// Ordered insert by `cmp`. Returns `None` when an equal element is
/// already present and `replace` is false (the tree is unchanged — the
/// caller keeps the original root, preserving sharing), otherwise the
/// new root and the displaced element, if any.
fn ins_ord<T: Clone>(
    link: &Link<T>,
    elem: &T,
    cmp: &impl Fn(&T, &T) -> Ordering,
    replace: bool,
) -> Option<(Arc<Node<T>>, Option<T>)> {
    match link {
        None => Some((mk(elem.clone(), None, None), None)),
        Some(n) => match cmp(elem, &n.elem) {
            Ordering::Equal => {
                if replace {
                    let old = n.elem.clone();
                    Some((mk(elem.clone(), n.left.clone(), n.right.clone()), Some(old)))
                } else {
                    None
                }
            }
            Ordering::Less => ins_ord(&n.left, elem, cmp, replace)
                .map(|(l, old)| (balance(n.elem.clone(), Some(l), n.right.clone()), old)),
            Ordering::Greater => ins_ord(&n.right, elem, cmp, replace)
                .map(|(r, old)| (balance(n.elem.clone(), n.left.clone(), Some(r)), old)),
        },
    }
}

/// Ordered remove by `cmp`. Returns `None` when no equal element exists
/// (the tree is unchanged), otherwise the new root and the removed
/// element.
fn rem_ord<T: Clone>(
    link: &Link<T>,
    key: &T,
    cmp: &impl Fn(&T, &T) -> Ordering,
) -> Option<(Link<T>, T)> {
    let n = link.as_ref()?;
    match cmp(key, &n.elem) {
        Ordering::Equal => {
            let removed = n.elem.clone();
            let rest = match (&n.left, &n.right) {
                (None, r) => r.clone(),
                (l, None) => l.clone(),
                (l, Some(r)) => {
                    let (succ, r_rest) = take_min(r);
                    Some(balance(succ, l.clone(), r_rest))
                }
            };
            Some((rest, removed))
        }
        Ordering::Less => rem_ord(&n.left, key, cmp)
            .map(|(l, removed)| (Some(balance(n.elem.clone(), l, n.right.clone())), removed)),
        Ordering::Greater => rem_ord(&n.right, key, cmp)
            .map(|(r, removed)| (Some(balance(n.elem.clone(), n.left.clone(), r)), removed)),
    }
}

fn get_ord<'a, T, K: ?Sized>(
    link: &'a Link<T>,
    key: &K,
    cmp: &impl Fn(&K, &T) -> Ordering,
) -> Option<&'a T> {
    let mut cur = link;
    while let Some(n) = cur {
        match cmp(key, &n.elem) {
            Ordering::Equal => return Some(&n.elem),
            Ordering::Less => cur = &n.left,
            Ordering::Greater => cur = &n.right,
        }
    }
    None
}

/// Positional insert (list semantics); `idx ≤ size`.
fn ins_at<T: Clone>(link: &Link<T>, idx: usize, elem: T) -> Arc<Node<T>> {
    match link {
        None => mk(elem, None, None),
        Some(n) => {
            let lsz = size(&n.left);
            if idx <= lsz {
                balance(
                    n.elem.clone(),
                    Some(ins_at(&n.left, idx, elem)),
                    n.right.clone(),
                )
            } else {
                balance(
                    n.elem.clone(),
                    n.left.clone(),
                    Some(ins_at(&n.right, idx - lsz - 1, elem)),
                )
            }
        }
    }
}

/// Positional remove (list semantics); `idx < size`.
fn rem_at<T: Clone>(node: &Arc<Node<T>>, idx: usize) -> (Link<T>, T) {
    let lsz = size(&node.left);
    match idx.cmp(&lsz) {
        Ordering::Equal => {
            let removed = node.elem.clone();
            let rest = match (&node.left, &node.right) {
                (None, r) => r.clone(),
                (l, None) => l.clone(),
                (l, Some(r)) => {
                    let (succ, r_rest) = take_min(r);
                    Some(balance(succ, l.clone(), r_rest))
                }
            };
            (rest, removed)
        }
        Ordering::Less => {
            let l = node.left.as_ref().expect("idx < lsz implies left node");
            let (l_rest, removed) = rem_at(l, idx);
            (
                Some(balance(node.elem.clone(), l_rest, node.right.clone())),
                removed,
            )
        }
        Ordering::Greater => {
            let r = node.right.as_ref().expect("idx > lsz implies right node");
            let (r_rest, removed) = rem_at(r, idx - lsz - 1);
            (
                Some(balance(node.elem.clone(), node.left.clone(), r_rest)),
                removed,
            )
        }
    }
}

fn get_at<T>(link: &Link<T>, idx: usize) -> Option<&T> {
    let mut cur = link;
    let mut idx = idx;
    while let Some(n) = cur {
        let lsz = size(&n.left);
        match idx.cmp(&lsz) {
            Ordering::Equal => return Some(&n.elem),
            Ordering::Less => cur = &n.left,
            Ordering::Greater => {
                idx -= lsz + 1;
                cur = &n.right;
            }
        }
    }
    None
}

/// Builds a balanced tree from a slice of already-ordered elements in
/// O(n) without rotations.
fn build<T: Clone>(elems: &[T]) -> Link<T> {
    if elems.is_empty() {
        return None;
    }
    let mid = elems.len() / 2;
    Some(mk(
        elems[mid].clone(),
        build(&elems[..mid]),
        build(&elems[mid + 1..]),
    ))
}

/// In-order borrowing iterator over a tree.
pub struct TreeIter<'a, T> {
    stack: Vec<&'a Node<T>>,
}

impl<'a, T> TreeIter<'a, T> {
    fn new(root: &'a Link<T>) -> Self {
        let mut it = TreeIter { stack: Vec::new() };
        it.push_left(root);
        it
    }

    fn push_left(&mut self, mut link: &'a Link<T>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, T> Iterator for TreeIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some(&n.elem)
    }
}

fn link_ptr_eq<T>(a: &Link<T>, b: &Link<T>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// PSet
// ---------------------------------------------------------------------------

use crate::Value;

/// A persistent finite set of [`Value`]s, iterated in ascending order.
///
/// Clone is O(1); [`insert`](PSet::insert) and [`remove`](PSet::remove)
/// are O(log n) path copies that share all untouched subtrees with the
/// previous version. Inserting an element already present (or removing
/// an absent one) returns the structure unchanged — not even the spine
/// is reallocated.
#[derive(Clone, Default)]
pub struct PSet {
    root: Link<Value>,
}

impl PSet {
    /// The empty set.
    pub fn new() -> Self {
        PSet { root: None }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Membership test, O(log n).
    pub fn contains(&self, v: &Value) -> bool {
        get_ord(&self.root, v, &|k: &Value, e: &Value| k.cmp(e)).is_some()
    }

    /// Inserts `v`; returns `true` if it was not already present.
    pub fn insert(&mut self, v: Value) -> bool {
        match ins_ord(&self.root, &v, &|a: &Value, b: &Value| a.cmp(b), false) {
            Some((root, _)) => {
                self.root = Some(root);
                true
            }
            None => false,
        }
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: &Value) -> bool {
        match rem_ord(&self.root, v, &|a: &Value, b: &Value| a.cmp(b)) {
            Some((root, _)) => {
                self.root = root;
                true
            }
            None => false,
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<&Value> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = &cur.left {
            cur = l;
        }
        Some(&cur.elem)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &PSet) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        self.len() <= other.len() && self.iter().all(|e| other.contains(e))
    }

    /// In-order iterator over the elements.
    pub fn iter(&self) -> TreeIter<'_, Value> {
        TreeIter::new(&self.root)
    }

    /// Whether two handles share the same root node (O(1) certain-equal).
    pub fn ptr_eq(&self, other: &PSet) -> bool {
        link_ptr_eq(&self.root, &other.root)
    }
}

impl PartialEq for PSet {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || (self.len() == other.len() && self.iter().eq(other.iter()))
    }
}

impl Eq for PSet {}

impl PartialOrd for PSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PSet {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.ptr_eq(other) {
            return Ordering::Equal;
        }
        self.iter().cmp(other.iter())
    }
}

impl Hash for PSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for e in self.iter() {
            e.hash(state);
        }
    }
}

impl fmt::Debug for PSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Value> for PSet {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut elems: Vec<Value> = iter.into_iter().collect();
        elems.sort();
        elems.dedup();
        PSet {
            root: build(&elems),
        }
    }
}

impl Extend<Value> for PSet {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a PSet {
    type Item = &'a Value;
    type IntoIter = TreeIter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for PSet {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter().cloned().collect::<Vec<_>>().into_iter()
    }
}

// ---------------------------------------------------------------------------
// PList
// ---------------------------------------------------------------------------

/// A persistent finite list of [`Value`]s (size-indexed AVL tree).
///
/// Clone is O(1); [`push_back`](PList::push_back), positional
/// [`get`](PList::get) and [`remove_at`](PList::remove_at) are
/// O(log n), sharing untouched subtrees with the previous version.
#[derive(Clone, Default)]
pub struct PList {
    root: Link<Value>,
}

impl PList {
    /// The empty list.
    pub fn new() -> Self {
        PList { root: None }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The element at position `idx`, if in bounds.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        get_at(&self.root, idx)
    }

    /// The first element, if any.
    pub fn first(&self) -> Option<&Value> {
        self.get(0)
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&Value> {
        let n = self.len();
        if n == 0 {
            None
        } else {
            self.get(n - 1)
        }
    }

    /// Appends an element, O(log n).
    pub fn push_back(&mut self, v: Value) {
        let idx = self.len();
        self.root = Some(ins_at(&self.root, idx, v));
    }

    /// Inserts an element at `idx` (≤ len), shifting the suffix.
    pub fn insert_at(&mut self, idx: usize, v: Value) {
        assert!(idx <= self.len(), "PList::insert_at out of bounds");
        self.root = Some(ins_at(&self.root, idx, v));
    }

    /// Removes and returns the element at `idx`, if in bounds.
    pub fn remove_at(&mut self, idx: usize) -> Option<Value> {
        if idx >= self.len() {
            return None;
        }
        let root = self.root.as_ref().expect("non-empty");
        let (rest, removed) = rem_at(root, idx);
        self.root = rest;
        Some(removed)
    }

    /// The list without its first element (shares the untouched suffix
    /// structure with `self`).
    pub fn tail(&self) -> Option<PList> {
        let root = self.root.as_ref()?;
        let (rest, _) = rem_at(root, 0);
        Some(PList { root: rest })
    }

    /// Linear membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.iter().any(|e| e == v)
    }

    /// In-order iterator over the elements.
    pub fn iter(&self) -> TreeIter<'_, Value> {
        TreeIter::new(&self.root)
    }

    /// Whether two handles share the same root node (O(1) certain-equal).
    pub fn ptr_eq(&self, other: &PList) -> bool {
        link_ptr_eq(&self.root, &other.root)
    }
}

impl PartialEq for PList {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || (self.len() == other.len() && self.iter().eq(other.iter()))
    }
}

impl Eq for PList {}

impl PartialOrd for PList {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PList {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.ptr_eq(other) {
            return Ordering::Equal;
        }
        self.iter().cmp(other.iter())
    }
}

impl Hash for PList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for e in self.iter() {
            e.hash(state);
        }
    }
}

impl fmt::Debug for PList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl FromIterator<Value> for PList {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let elems: Vec<Value> = iter.into_iter().collect();
        PList {
            root: build(&elems),
        }
    }
}

impl Extend<Value> for PList {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.push_back(v);
        }
    }
}

impl<'a> IntoIterator for &'a PList {
    type Item = &'a Value;
    type IntoIter = TreeIter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for PList {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter().cloned().collect::<Vec<_>>().into_iter()
    }
}

// ---------------------------------------------------------------------------
// PMap
// ---------------------------------------------------------------------------

/// A persistent finite map from [`Value`] keys to [`Value`]s, iterated
/// in ascending key order.
///
/// Clone is O(1); [`insert`](PMap::insert) and [`remove`](PMap::remove)
/// are O(log n) path copies sharing untouched subtrees.
#[derive(Clone, Default)]
pub struct PMap {
    root: Link<(Value, Value)>,
}

fn key_cmp(a: &(Value, Value), b: &(Value, Value)) -> Ordering {
    a.0.cmp(&b.0)
}

impl PMap {
    /// The empty map.
    pub fn new() -> Self {
        PMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Looks up the value for `key`, O(log n).
    pub fn get(&self, key: &Value) -> Option<&Value> {
        get_ord(&self.root, key, &|k: &Value, e: &(Value, Value)| {
            k.cmp(&e.0)
        })
        .map(|e| &e.1)
    }

    /// Whether `key` has an entry.
    pub fn contains_key(&self, key: &Value) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces the entry for `key`; returns the previous
    /// value, if any.
    pub fn insert(&mut self, key: Value, value: Value) -> Option<Value> {
        let entry = (key, value);
        let (root, old) = ins_ord(&self.root, &entry, &key_cmp, true)
            .expect("replace-mode insert always changes the tree");
        self.root = Some(root);
        old.map(|(_, v)| v)
    }

    /// Removes the entry for `key`; returns its value, if any.
    pub fn remove(&mut self, key: &Value) -> Option<Value> {
        let probe = (key.clone(), Value::Undefined);
        match rem_ord(&self.root, &probe, &key_cmp) {
            Some((root, (_, v))) => {
                self.root = root;
                Some(v)
            }
            None => None,
        }
    }

    /// In-order iterator over `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Value)> {
        TreeIter::new(&self.root).map(|e| (&e.0, &e.1))
    }

    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        TreeIter::new(&self.root).map(|e| &e.0)
    }

    /// Iterator over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        TreeIter::new(&self.root).map(|e| &e.1)
    }

    /// Whether two handles share the same root node (O(1) certain-equal).
    pub fn ptr_eq(&self, other: &PMap) -> bool {
        link_ptr_eq(&self.root, &other.root)
    }
}

impl PartialEq for PMap {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other)
            || (self.len() == other.len()
                && TreeIter::new(&self.root).eq(TreeIter::new(&other.root)))
    }
}

impl Eq for PMap {}

impl PartialOrd for PMap {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PMap {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.ptr_eq(other) {
            return Ordering::Equal;
        }
        TreeIter::new(&self.root).cmp(TreeIter::new(&other.root))
    }
}

impl Hash for PMap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for e in TreeIter::new(&self.root) {
            e.hash(state);
        }
    }
}

impl fmt::Debug for PMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(Value, Value)> for PMap {
    fn from_iter<I: IntoIterator<Item = (Value, Value)>>(iter: I) -> Self {
        // later duplicates of a key override earlier ones, as for BTreeMap
        let dedup: std::collections::BTreeMap<Value, Value> = iter.into_iter().collect();
        let elems: Vec<(Value, Value)> = dedup.into_iter().collect();
        PMap {
            root: build(&elems),
        }
    }
}

impl Extend<(Value, Value)> for PMap {
    fn extend<I: IntoIterator<Item = (Value, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl IntoIterator for PMap {
    type Item = (Value, Value);
    type IntoIter = std::vec::IntoIter<(Value, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        TreeIter::new(&self.root)
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn vi(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn set_basic_ops_match_btreeset() {
        let mut p = PSet::new();
        let mut b = BTreeSet::new();
        for i in [5, 3, 8, 1, 9, 3, 7, 2, 6, 4, 0] {
            assert_eq!(p.insert(vi(i)), b.insert(vi(i)));
        }
        assert_eq!(p.len(), b.len());
        assert!(p.iter().eq(b.iter()));
        for i in [3, 11, 0, 9] {
            assert_eq!(p.remove(&vi(i)), b.remove(&vi(i)));
        }
        assert!(p.iter().eq(b.iter()));
        assert_eq!(p.first(), b.first());
    }

    #[test]
    fn set_noop_insert_shares_root() {
        let mut p: PSet = (0..10).map(vi).collect();
        let before = p.clone();
        assert!(!p.insert(vi(5)));
        assert!(p.ptr_eq(&before));
        assert!(!p.remove(&vi(42)));
        assert!(p.ptr_eq(&before));
    }

    #[test]
    fn set_insert_shares_untouched_structure() {
        let old: PSet = (0..64).map(vi).collect();
        let mut new = old.clone();
        assert!(new.insert(vi(1000)));
        assert_eq!(old.len(), 64);
        assert_eq!(new.len(), 65);
        assert!(old.iter().eq((0..64).map(vi).collect::<Vec<_>>().iter()));
    }

    #[test]
    fn list_push_get_tail() {
        let mut p = PList::new();
        for i in 0..100 {
            p.push_back(vi(i));
        }
        assert_eq!(p.len(), 100);
        assert_eq!(p.get(0), Some(&vi(0)));
        assert_eq!(p.get(99), Some(&vi(99)));
        assert_eq!(p.get(100), None);
        let t = p.tail().unwrap();
        assert_eq!(t.len(), 99);
        assert_eq!(t.first(), Some(&vi(1)));
        // original unchanged
        assert_eq!(p.first(), Some(&vi(0)));
    }

    #[test]
    fn list_ordering_matches_vec() {
        let a: PList = [1, 2, 3].into_iter().map(vi).collect();
        let b: PList = [1, 2, 4].into_iter().map(vi).collect();
        let c: PList = [1, 2].into_iter().map(vi).collect();
        assert!(a < b);
        assert!(c < a);
        let va = vec![vi(1), vi(2), vi(3)];
        let vb = vec![vi(1), vi(2), vi(4)];
        assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn map_basic_ops_match_btreemap() {
        let mut p = PMap::new();
        let mut b = BTreeMap::new();
        for (k, v) in [(3, 30), (1, 10), (2, 20), (3, 31), (5, 50)] {
            assert_eq!(p.insert(vi(k), vi(v)), b.insert(vi(k), vi(v)));
        }
        assert_eq!(p.len(), b.len());
        assert!(p.iter().eq(b.iter()));
        assert_eq!(p.get(&vi(3)), b.get(&vi(3)));
        assert_eq!(p.remove(&vi(1)), b.remove(&vi(1)));
        assert_eq!(p.remove(&vi(9)), b.remove(&vi(9)));
        assert!(p.iter().eq(b.iter()));
    }

    fn check_avl(link: &Link<Value>) -> u8 {
        match link {
            None => 0,
            Some(n) => {
                let hl = check_avl(&n.left);
                let hr = check_avl(&n.right);
                assert!(hl.abs_diff(hr) <= 1, "AVL invariant violated");
                assert_eq!(n.height, 1 + hl.max(hr));
                assert_eq!(n.size, 1 + size(&n.left) + size(&n.right));
                1 + hl.max(hr)
            }
        }
    }

    proptest! {
        #[test]
        fn set_differential_vs_btreeset(ops in proptest::collection::vec((any::<bool>(), -20i64..20), 0..200)) {
            let mut p = PSet::new();
            let mut b = BTreeSet::new();
            for (is_insert, x) in ops {
                if is_insert {
                    prop_assert_eq!(p.insert(vi(x)), b.insert(vi(x)));
                } else {
                    prop_assert_eq!(p.remove(&vi(x)), b.remove(&vi(x)));
                }
                prop_assert_eq!(p.len(), b.len());
                check_avl(&p.root);
            }
            prop_assert!(p.iter().eq(b.iter()));
        }

        #[test]
        fn list_differential_vs_vec(ops in proptest::collection::vec((0u8..3, -20i64..20), 0..200)) {
            let mut p = PList::new();
            let mut v: Vec<Value> = Vec::new();
            for (kind, x) in ops {
                match kind {
                    0 => { p.push_back(vi(x)); v.push(vi(x)); }
                    1 => {
                        let idx = (x.unsigned_abs() as usize) % (v.len() + 1);
                        p.insert_at(idx, vi(x));
                        v.insert(idx, vi(x));
                    }
                    _ => {
                        if !v.is_empty() {
                            let idx = (x.unsigned_abs() as usize) % v.len();
                            prop_assert_eq!(p.remove_at(idx), Some(v.remove(idx)));
                        }
                    }
                }
                prop_assert_eq!(p.len(), v.len());
                check_avl(&p.root);
            }
            prop_assert!(p.iter().eq(v.iter()));
        }

        #[test]
        fn map_differential_vs_btreemap(ops in proptest::collection::vec((any::<bool>(), -20i64..20, -50i64..50), 0..200)) {
            let mut p = PMap::new();
            let mut b = BTreeMap::new();
            for (is_insert, k, v) in ops {
                if is_insert {
                    prop_assert_eq!(p.insert(vi(k), vi(v)), b.insert(vi(k), vi(v)));
                } else {
                    prop_assert_eq!(p.remove(&vi(k)), b.remove(&vi(k)));
                }
            }
            prop_assert!(p.iter().eq(b.iter()));
        }

        #[test]
        fn from_iter_matches_incremental(elems in proptest::collection::vec(-50i64..50, 0..100)) {
            let built: PSet = elems.iter().map(|&i| vi(i)).collect();
            let mut incr = PSet::new();
            for &i in &elems {
                incr.insert(vi(i));
            }
            prop_assert_eq!(&built, &incr);
            check_avl(&built.root);
            let lbuilt: PList = elems.iter().map(|&i| vi(i)).collect();
            prop_assert!(lbuilt.iter().eq(elems.iter().map(|&i| vi(i)).collect::<Vec<_>>().iter()));
            check_avl(&lbuilt.root);
        }
    }
}
