//! The sort (type) language of TROLL data terms.

use std::fmt;

/// A named, sorted tuple field, as in
/// `tuple(ename:string, ebirth:date, esalary:integer)` (paper §5.2).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleField {
    /// Field name.
    pub name: String,
    /// Field sort.
    pub sort: Sort,
}

impl TupleField {
    /// Creates a field.
    pub fn new(name: impl Into<String>, sort: Sort) -> Self {
        TupleField {
            name: name.into(),
            sort,
        }
    }
}

/// Sorts classify the values of [`crate::Value`].
///
/// The base sorts are those used in the paper's specifications (`string`,
/// `date`, `integer`, `money`, `bool`); `nat` is included because the
/// paper's data signature examples assume natural numbers for counts.
/// `Id(class)` is the identity sort written `|C|` in TROLL (e.g.
/// `OfficialCar : |CAR|` in the `MANAGER` class).
///
/// # Example
///
/// ```
/// use troll_data::{Sort, TupleField};
/// // set(tuple(ename:string, ebirth:date, esalary:integer))
/// let emps = Sort::set(Sort::tuple(vec![
///     TupleField::new("ename", Sort::String),
///     TupleField::new("ebirth", Sort::Date),
///     TupleField::new("esalary", Sort::Int),
/// ]));
/// assert_eq!(
///     emps.to_string(),
///     "set(tuple(ename:string, ebirth:date, esalary:int))"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// Truth values.
    Bool,
    /// Integers.
    Int,
    /// Natural numbers (a subsort of `Int`; values are `Int`s checked to
    /// be non-negative).
    Nat,
    /// Character strings.
    String,
    /// Calendar dates.
    Date,
    /// Monetary amounts.
    Money,
    /// Identity sort `|C|` of the object class named by the payload.
    Id(String),
    /// Finite sets.
    Set(Box<Sort>),
    /// Finite lists.
    List(Box<Sort>),
    /// Finite maps.
    Map(Box<Sort>, Box<Sort>),
    /// Named-field tuples (records).
    Tuple(Vec<TupleField>),
    /// Optional values (an attribute may be undefined before its first
    /// valuation; `optional` makes this explicit).
    Optional(Box<Sort>),
}

impl Sort {
    /// `set(elem)`.
    pub fn set(elem: Sort) -> Sort {
        Sort::Set(Box::new(elem))
    }

    /// `list(elem)`.
    pub fn list(elem: Sort) -> Sort {
        Sort::List(Box::new(elem))
    }

    /// `map(key, value)`.
    pub fn map(key: Sort, value: Sort) -> Sort {
        Sort::Map(Box::new(key), Box::new(value))
    }

    /// `tuple(f1:s1, …, fn:sn)`.
    pub fn tuple(fields: Vec<TupleField>) -> Sort {
        Sort::Tuple(fields)
    }

    /// `optional(inner)`.
    pub fn optional(inner: Sort) -> Sort {
        Sort::Optional(Box::new(inner))
    }

    /// Identity sort `|class|`.
    pub fn id(class: impl Into<String>) -> Sort {
        Sort::Id(class.into())
    }

    /// Whether a value of sort `self` may be used where `other` is
    /// expected. This is the subsort relation of the paper's data
    /// signature: `Nat ≤ Int`, `s ≤ optional(s)`, and congruent closure
    /// through the constructors.
    pub fn is_subsort_of(&self, other: &Sort) -> bool {
        use Sort::*;
        match (self, other) {
            (a, b) if a == b => true,
            (Nat, Int) => true,
            (a, Optional(b)) => a.is_subsort_of(b),
            (Set(a), Set(b)) | (List(a), List(b)) => a.is_subsort_of(b),
            (Map(ka, va), Map(kb, vb)) => ka.is_subsort_of(kb) && va.is_subsort_of(vb),
            (Tuple(fa), Tuple(fb)) => {
                fa.len() == fb.len()
                    && fa
                        .iter()
                        .zip(fb)
                        .all(|(x, y)| x.name == y.name && x.sort.is_subsort_of(&y.sort))
            }
            _ => false,
        }
    }

    /// Looks up the sort of a tuple field; `None` when `self` is not a
    /// tuple or the field is absent.
    pub fn field_sort(&self, field: &str) -> Option<&Sort> {
        match self {
            Sort::Tuple(fields) => fields.iter().find(|f| f.name == field).map(|f| &f.sort),
            _ => None,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Int => write!(f, "int"),
            Sort::Nat => write!(f, "nat"),
            Sort::String => write!(f, "string"),
            Sort::Date => write!(f, "date"),
            Sort::Money => write!(f, "money"),
            Sort::Id(class) => write!(f, "|{class}|"),
            Sort::Set(e) => write!(f, "set({e})"),
            Sort::List(e) => write!(f, "list({e})"),
            Sort::Map(k, v) => write!(f, "map({k}, {v})"),
            Sort::Tuple(fields) => {
                write!(f, "tuple(")?;
                for (i, fld) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}:{}", fld.name, fld.sort)?;
                }
                write!(f, ")")
            }
            Sort::Optional(inner) => write!(f, "optional({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_troll_syntax() {
        assert_eq!(
            Sort::set(Sort::Id("PERSON".into())).to_string(),
            "set(|PERSON|)"
        );
        assert_eq!(
            Sort::map(Sort::String, Sort::Int).to_string(),
            "map(string, int)"
        );
        assert_eq!(Sort::optional(Sort::Date).to_string(), "optional(date)");
    }

    #[test]
    fn subsort_nat_int() {
        assert!(Sort::Nat.is_subsort_of(&Sort::Int));
        assert!(!Sort::Int.is_subsort_of(&Sort::Nat));
        assert!(Sort::set(Sort::Nat).is_subsort_of(&Sort::set(Sort::Int)));
        assert!(Sort::Int.is_subsort_of(&Sort::optional(Sort::Int)));
        assert!(Sort::Nat.is_subsort_of(&Sort::optional(Sort::Int)));
    }

    #[test]
    fn subsort_is_reflexive_on_samples() {
        let samples = vec![
            Sort::Bool,
            Sort::id("DEPT"),
            Sort::tuple(vec![TupleField::new("a", Sort::Int)]),
            Sort::map(Sort::String, Sort::set(Sort::Date)),
        ];
        for s in &samples {
            assert!(s.is_subsort_of(s), "{s} not reflexive");
        }
    }

    #[test]
    fn tuple_subsort_requires_same_field_names() {
        let a = Sort::tuple(vec![TupleField::new("x", Sort::Nat)]);
        let b = Sort::tuple(vec![TupleField::new("x", Sort::Int)]);
        let c = Sort::tuple(vec![TupleField::new("y", Sort::Int)]);
        assert!(a.is_subsort_of(&b));
        assert!(!a.is_subsort_of(&c));
    }

    #[test]
    fn field_sort_lookup() {
        let t = Sort::tuple(vec![
            TupleField::new("ename", Sort::String),
            TupleField::new("esalary", Sort::Int),
        ]);
        assert_eq!(t.field_sort("esalary"), Some(&Sort::Int));
        assert_eq!(t.field_sort("missing"), None);
        assert_eq!(Sort::Int.field_sort("x"), None);
    }
}
