//! Persistent, structurally-shared attribute-state maps.
//!
//! The paper's observation semantics make every step of an object's
//! life carry the attribute state the object exhibited at that point
//! (`obs(b·t)`, §3), so the runtime snapshots the state map on every
//! committed event — and keeps every historical snapshot alive in the
//! trace. [`StateMap`] makes those snapshots cheap: it is an immutable
//! balanced search tree with [`Arc`]-shared nodes, so
//!
//! * `clone` is O(1) — a reference-count bump on the root;
//! * `insert`/`remove` are O(log n) — only the root-to-leaf path is
//!   copied, everything else is shared with the previous version;
//! * `get` is O(log n), iteration is in key order (matching the
//!   `BTreeMap` it replaced);
//! * [`StateMap::ptr_eq`] answers "same snapshot?" in O(1).
//!
//! Keys are `Arc<str>` and values `Arc<Value>`, so path copies share
//! both with the old version instead of deep-cloning (a department's
//! `employees` set is never copied because an unrelated attribute
//! changed).
//!
//! Two process-wide counters in [`troll_obs::global`] make the sharing
//! rate observable (`troll animate --stats`):
//!
//! * `state.clone_shared` — O(1) shared-root clones taken;
//! * `state.path_copy` — insert/remove operations that copied a path.
//!
//! The `btree-state` cargo feature swaps the internals for a plain
//! `BTreeMap` with the same API — the differential-testing oracle: the
//! whole suite can run against either representation and must behave
//! identically (only cost and the sharing counters change).

use crate::value::Value;
use crate::Env;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use troll_obs::Counter;

/// Counter of O(1) shared-root clones (`state.clone_shared`).
fn clone_shared() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| troll_obs::global().counter("state.clone_shared"))
}

/// Counter of path-copying updates (`state.path_copy`).
fn path_copy() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| troll_obs::global().counter("state.path_copy"))
}

#[cfg(not(feature = "btree-state"))]
mod imp {
    use super::{clone_shared, path_copy, Value};
    use std::cmp::Ordering;
    use std::sync::Arc;

    /// One tree node. `key`/`value` are `Arc`s so a path copy shares
    /// them with the previous version of the map.
    #[derive(Debug)]
    pub(super) struct Node {
        key: Arc<str>,
        value: Arc<Value>,
        left: Link,
        right: Link,
        height: u8,
    }

    type Link = Option<Arc<Node>>;

    fn height(link: &Link) -> u8 {
        link.as_ref().map_or(0, |n| n.height)
    }

    /// Allocates a node over existing children (the only constructor —
    /// height is always derived, never stored stale).
    fn mk(key: Arc<str>, value: Arc<Value>, left: Link, right: Link) -> Arc<Node> {
        let height = 1 + height(&left).max(height(&right));
        Arc::new(Node {
            key,
            value,
            left,
            right,
            height,
        })
    }

    /// Rebuilds a node AVL-balanced. Children differ from the parent's
    /// previous children in at most one subtree, so at most two
    /// rotations restore the invariant.
    fn balance(key: Arc<str>, value: Arc<Value>, left: Link, right: Link) -> Arc<Node> {
        let (hl, hr) = (height(&left), height(&right));
        if hl > hr + 1 {
            // left-heavy: the left child exists by the height bound
            let l = left.expect("left-heavy node has a left child");
            if height(&l.left) >= height(&l.right) {
                // single right rotation
                let new_right = mk(key, value, l.right.clone(), right);
                mk(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    Some(new_right),
                )
            } else {
                // left-right double rotation
                let lr = l.right.as_ref().expect("taller right subtree exists");
                let new_left = mk(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    lr.left.clone(),
                );
                let new_right = mk(key, value, lr.right.clone(), right);
                mk(
                    lr.key.clone(),
                    lr.value.clone(),
                    Some(new_left),
                    Some(new_right),
                )
            }
        } else if hr > hl + 1 {
            let r = right.expect("right-heavy node has a right child");
            if height(&r.right) >= height(&r.left) {
                // single left rotation
                let new_left = mk(key, value, left, r.left.clone());
                mk(
                    r.key.clone(),
                    r.value.clone(),
                    Some(new_left),
                    r.right.clone(),
                )
            } else {
                // right-left double rotation
                let rl = r.left.as_ref().expect("taller left subtree exists");
                let new_left = mk(key, value, left, rl.left.clone());
                let new_right = mk(
                    r.key.clone(),
                    r.value.clone(),
                    rl.right.clone(),
                    r.right.clone(),
                );
                mk(
                    rl.key.clone(),
                    rl.value.clone(),
                    Some(new_left),
                    Some(new_right),
                )
            }
        } else {
            mk(key, value, left, right)
        }
    }

    /// Returns the rebuilt subtree and whether the key was new.
    fn insert_rec(link: &Link, key: &Arc<str>, value: &Arc<Value>) -> (Arc<Node>, bool) {
        match link {
            None => (mk(key.clone(), value.clone(), None, None), true),
            Some(node) => match key.as_ref().cmp(node.key.as_ref()) {
                Ordering::Equal => (
                    // same key: replace the value in place, keep children
                    mk(
                        node.key.clone(),
                        value.clone(),
                        node.left.clone(),
                        node.right.clone(),
                    ),
                    false,
                ),
                Ordering::Less => {
                    let (new_left, added) = insert_rec(&node.left, key, value);
                    (
                        balance(
                            node.key.clone(),
                            node.value.clone(),
                            Some(new_left),
                            node.right.clone(),
                        ),
                        added,
                    )
                }
                Ordering::Greater => {
                    let (new_right, added) = insert_rec(&node.right, key, value);
                    (
                        balance(
                            node.key.clone(),
                            node.value.clone(),
                            node.left.clone(),
                            Some(new_right),
                        ),
                        added,
                    )
                }
            },
        }
    }

    /// Removes the minimum node, returning (its key, its value, rest).
    fn take_min(node: &Arc<Node>) -> (Arc<str>, Arc<Value>, Link) {
        match &node.left {
            None => (node.key.clone(), node.value.clone(), node.right.clone()),
            Some(left) => {
                let (k, v, rest) = take_min(left);
                (
                    k,
                    v,
                    Some(balance(
                        node.key.clone(),
                        node.value.clone(),
                        rest,
                        node.right.clone(),
                    )),
                )
            }
        }
    }

    /// Returns the rebuilt subtree (None if emptied) and the removed
    /// value, or `None` if the key was absent (subtree fully shared).
    fn remove_rec(link: &Link, key: &str) -> Option<(Link, Arc<Value>)> {
        let node = link.as_ref()?;
        match key.cmp(node.key.as_ref()) {
            Ordering::Equal => {
                let rebuilt = match (&node.left, &node.right) {
                    (None, r) => r.clone(),
                    (l, None) => l.clone(),
                    (Some(_), Some(right)) => {
                        let (k, v, rest) = take_min(right);
                        Some(balance(k, v, node.left.clone(), rest))
                    }
                };
                Some((rebuilt, node.value.clone()))
            }
            Ordering::Less => {
                let (new_left, removed) = remove_rec(&node.left, key)?;
                Some((
                    Some(balance(
                        node.key.clone(),
                        node.value.clone(),
                        new_left,
                        node.right.clone(),
                    )),
                    removed,
                ))
            }
            Ordering::Greater => {
                let (new_right, removed) = remove_rec(&node.right, key)?;
                Some((
                    Some(balance(
                        node.key.clone(),
                        node.value.clone(),
                        node.left.clone(),
                        new_right,
                    )),
                    removed,
                ))
            }
        }
    }

    /// A persistent ordered map from attribute names to [`Value`]s with
    /// O(1) structurally-shared clones (see the module docs).
    #[derive(Debug, Default)]
    pub struct StateMap {
        root: Link,
        len: usize,
    }

    impl StateMap {
        /// Creates an empty map.
        pub fn new() -> Self {
            StateMap { root: None, len: 0 }
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the map is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Looks up a key — O(log n), no allocation.
        pub fn get(&self, key: &str) -> Option<&Value> {
            let mut cur = self.root.as_ref()?;
            loop {
                match key.cmp(cur.key.as_ref()) {
                    Ordering::Equal => return Some(&cur.value),
                    Ordering::Less => cur = cur.left.as_ref()?,
                    Ordering::Greater => cur = cur.right.as_ref()?,
                }
            }
        }

        /// Inserts or replaces — O(log n): copies the root-to-leaf path,
        /// shares every untouched subtree, key and value with the
        /// previous version.
        pub fn insert(&mut self, key: impl Into<Arc<str>>, value: Value) {
            self.insert_shared(key.into(), Arc::new(value));
        }

        /// Insert taking already-shared key/value handles (used by
        /// [`StateMap::union`] so merged entries share allocations).
        pub(super) fn insert_shared(&mut self, key: Arc<str>, value: Arc<Value>) {
            path_copy().inc();
            let (root, added) = insert_rec(&self.root, &key, &value);
            self.root = Some(root);
            if added {
                self.len += 1;
            }
        }

        /// Removes a key, returning whether it was present — O(log n).
        pub fn remove(&mut self, key: &str) -> Option<Value> {
            let (root, removed) = remove_rec(&self.root, key)?;
            path_copy().inc();
            self.root = root;
            self.len -= 1;
            Some(removed.as_ref().clone())
        }

        /// Whether both maps share the same root — O(1). `true` implies
        /// equality; `false` implies nothing.
        pub fn ptr_eq(&self, other: &Self) -> bool {
            match (&self.root, &other.root) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }

        /// Iterates in ascending key order.
        pub fn iter(&self) -> Iter<'_> {
            let mut iter = Iter { stack: Vec::new() };
            iter.push_left(&self.root);
            iter
        }

        /// The entries as shared handles, in key order (crate-internal:
        /// lets [`StateMap::union`] avoid re-allocating keys/values).
        pub(super) fn iter_shared(&self) -> impl Iterator<Item = (&Arc<str>, &Arc<Value>)> {
            let mut iter = Iter { stack: Vec::new() };
            iter.push_left(&self.root);
            std::iter::from_fn(move || {
                let node = iter.stack.pop()?;
                iter.push_left(&node.right);
                Some((&node.key, &node.value))
            })
        }
    }

    impl Clone for StateMap {
        fn clone(&self) -> Self {
            clone_shared().inc();
            StateMap {
                root: self.root.clone(),
                len: self.len,
            }
        }
    }

    /// In-order iterator over a [`StateMap`].
    pub struct Iter<'a> {
        stack: Vec<&'a Node>,
    }

    impl<'a> Iter<'a> {
        fn push_left(&mut self, mut link: &'a Link) {
            while let Some(node) = link {
                self.stack.push(node);
                link = &node.left;
            }
        }
    }

    impl<'a> Iterator for Iter<'a> {
        type Item = (&'a str, &'a Value);

        fn next(&mut self) -> Option<Self::Item> {
            let node = self.stack.pop()?;
            self.push_left(&node.right);
            Some((node.key.as_ref(), &node.value))
        }
    }
}

#[cfg(feature = "btree-state")]
mod imp {
    use super::Value;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Differential-testing oracle representation: the plain `BTreeMap`
    /// the persistent tree replaced, behind the identical API. Clones
    /// are deep, `ptr_eq` is conservatively `false` for non-empty maps,
    /// and the sharing counters stay silent.
    #[derive(Debug, Default, Clone)]
    pub struct StateMap {
        map: BTreeMap<String, Value>,
    }

    impl StateMap {
        /// Creates an empty map.
        pub fn new() -> Self {
            StateMap {
                map: BTreeMap::new(),
            }
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.map.len()
        }

        /// Whether the map is empty.
        pub fn is_empty(&self) -> bool {
            self.map.is_empty()
        }

        /// Looks up a key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.map.get(key)
        }

        /// Inserts or replaces.
        pub fn insert(&mut self, key: impl Into<Arc<str>>, value: Value) {
            self.map.insert(key.into().as_ref().to_string(), value);
        }

        pub(super) fn insert_shared(&mut self, key: Arc<str>, value: Arc<Value>) {
            self.map
                .insert(key.as_ref().to_string(), value.as_ref().clone());
        }

        /// Removes a key, returning the removed value if present.
        pub fn remove(&mut self, key: &str) -> Option<Value> {
            self.map.remove(key)
        }

        /// No sharing in the oracle: only empty maps compare as shared.
        pub fn ptr_eq(&self, other: &Self) -> bool {
            self.map.is_empty() && other.map.is_empty()
        }

        /// Iterates in ascending key order.
        pub fn iter(&self) -> Iter<'_> {
            Iter {
                inner: self.map.iter(),
            }
        }
    }

    /// In-order iterator over the oracle [`StateMap`].
    pub struct Iter<'a> {
        inner: std::collections::btree_map::Iter<'a, String, Value>,
    }

    impl<'a> Iterator for Iter<'a> {
        type Item = (&'a str, &'a Value);

        fn next(&mut self) -> Option<Self::Item> {
            self.inner.next().map(|(k, v)| (k.as_str(), v))
        }
    }
}

pub use imp::{Iter, StateMap};

impl StateMap {
    /// Whether a key is present — O(log n).
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The union of two maps: `self`'s entries with `over`'s inserted
    /// on top (later wins), sharing `over`'s key/value allocations. Used
    /// for role-attribute overlays — O(|over|·log n), independent of
    /// |self|.
    pub fn union(&self, over: &StateMap) -> StateMap {
        let mut out = self.clone();
        out.extend_shared(over);
        out
    }

    /// Deep-copies into the `BTreeMap` representation (tests/oracles).
    pub fn to_btree(&self) -> BTreeMap<String, Value> {
        self.iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[cfg(not(feature = "btree-state"))]
    fn extend_shared(&mut self, other: &StateMap) {
        for (k, v) in other.iter_shared() {
            self.insert_shared(k.clone(), v.clone());
        }
    }

    #[cfg(feature = "btree-state")]
    fn extend_shared(&mut self, other: &StateMap) {
        for (k, v) in other.iter() {
            self.insert(k, v.clone());
        }
    }
}

impl PartialEq for StateMap {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || (self.len() == other.len() && self.iter().eq(other.iter()))
    }
}

impl Eq for StateMap {}

impl Extend<(String, Value)> for StateMap {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl FromIterator<(String, Value)> for StateMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut out = StateMap::new();
        out.extend(iter);
        out
    }
}

impl From<BTreeMap<String, Value>> for StateMap {
    fn from(map: BTreeMap<String, Value>) -> Self {
        map.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a StateMap {
    type Item = (&'a str, &'a Value);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Env for StateMap {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::from(i)
    }

    #[test]
    fn insert_get_remove_len() {
        let mut m = StateMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get("a"), None);
        m.insert("b", v(2));
        m.insert("a", v(1));
        m.insert("c", v(3));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get("a"), Some(&v(1)));
        assert_eq!(m.get("b"), Some(&v(2)));
        assert_eq!(m.get("c"), Some(&v(3)));
        // replace keeps the length
        m.insert("b", v(20));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get("b"), Some(&v(20)));
        assert_eq!(m.remove("b"), Some(v(20)));
        assert_eq!(m.remove("b"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("b"), None);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m = StateMap::new();
        for k in ["delta", "alpha", "echo", "bravo", "charlie"] {
            m.insert(k, Value::from(k));
        }
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "bravo", "charlie", "delta", "echo"]);
    }

    #[test]
    fn clone_shares_and_updates_do_not_leak_between_versions() {
        let mut m = StateMap::new();
        for i in 0..64 {
            m.insert(format!("k{i:02}"), v(i));
        }
        let snapshot = m.clone();
        #[cfg(not(feature = "btree-state"))]
        assert!(snapshot.ptr_eq(&m));
        m.insert("k07", v(700));
        m.remove("k40");
        assert!(!snapshot.ptr_eq(&m));
        // the old version observes the old values
        assert_eq!(snapshot.get("k07"), Some(&v(7)));
        assert_eq!(snapshot.get("k40"), Some(&v(40)));
        assert_eq!(snapshot.len(), 64);
        // the new one the new
        assert_eq!(m.get("k07"), Some(&v(700)));
        assert_eq!(m.get("k40"), None);
        assert_eq!(m.len(), 63);
    }

    #[test]
    fn equality_is_structural_with_ptr_fast_path() {
        let a: StateMap = [("x".to_string(), v(1)), ("y".to_string(), v(2))]
            .into_iter()
            .collect();
        let b: StateMap = [("y".to_string(), v(2)), ("x".to_string(), v(1))]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        let c = a.clone();
        #[cfg(not(feature = "btree-state"))]
        assert!(c.ptr_eq(&a));
        assert_eq!(c, a);
        let mut d = a.clone();
        d.insert("x", v(9));
        assert_ne!(d, a);
    }

    #[test]
    fn union_overlays_and_keeps_base() {
        let base: StateMap = [
            ("salary".to_string(), v(1000)),
            ("name".to_string(), Value::from("ada")),
        ]
        .into_iter()
        .collect();
        let over: StateMap = [
            ("car".to_string(), Value::from("tesla")),
            ("salary".to_string(), v(2000)),
        ]
        .into_iter()
        .collect();
        let merged = base.union(&over);
        assert_eq!(merged.get("salary"), Some(&v(2000)));
        assert_eq!(merged.get("car"), Some(&Value::from("tesla")));
        assert_eq!(merged.get("name"), Some(&Value::from("ada")));
        assert_eq!(merged.len(), 3);
        // inputs untouched
        assert_eq!(base.get("salary"), Some(&v(1000)));
        assert!(!base.contains_key("car"));
    }

    #[test]
    fn env_lookup_reads_entries() {
        let mut m = StateMap::new();
        m.insert("x", v(42));
        assert_eq!(m.lookup("x"), Some(v(42)));
        assert_eq!(m.lookup("y"), None);
    }

    #[test]
    fn to_btree_round_trips() {
        let mut m = StateMap::new();
        for i in (0..40).rev() {
            m.insert(format!("k{i:02}"), v(i));
        }
        let bt = m.to_btree();
        assert_eq!(bt.len(), 40);
        let back: StateMap = bt.clone().into();
        assert_eq!(back, m);
        assert_eq!(back.to_btree(), bt);
    }

    #[test]
    fn large_random_order_stays_balanced_enough_to_terminate() {
        // deterministic pseudo-shuffle: stride walk over 1 000 keys
        let mut m = StateMap::new();
        let n = 1000usize;
        let mut k = 0usize;
        for _ in 0..n {
            k = (k + 617) % n;
            m.insert(format!("key{k:04}"), v(k as i64));
        }
        assert_eq!(m.len(), n);
        for i in 0..n {
            assert_eq!(m.get(&format!("key{i:04}")), Some(&v(i as i64)));
        }
        let keys: Vec<&str> = m.iter().map(|(kk, _)| kk).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // removal of every other key keeps order and content
        for i in (0..n).step_by(2) {
            assert!(m.remove(&format!("key{i:04}")).is_some());
        }
        assert_eq!(m.len(), n / 2);
        for i in 0..n {
            assert_eq!(m.get(&format!("key{i:04}")).is_some(), i % 2 == 1);
        }
    }
}
