//! The core term IR for TROLL data expressions.
//!
//! Valuation rules, permissions, constraints, derivation rules and
//! selection predicates are all lowered to [`Term`]s by the language
//! front-end (`troll-lang`) and evaluated here against an [`Env`]. The
//! runtime binds attribute names, event parameters and `SELF` in the
//! environment; this crate stays agnostic of where bindings come from.

use crate::{DataError, Op, Result, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Quantifier kind for bounded quantification over finite collections,
/// as in the paper's `closure` permission:
/// `for all (P: PERSON : sometime(P in employees) ⇒ …)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// Universal quantification (`for all`).
    Forall,
    /// Existential quantification (`exists`).
    Exists,
}

/// A data term.
///
/// Terms are pure: evaluation has no side effects and depends only on the
/// environment.
///
/// # Example
///
/// ```
/// use troll_data::{Term, Op, Value, MapEnv};
/// // exists(s1: Emps) s1.esalary > 100
/// let term = Term::quant(
///     troll_data::Quantifier::Exists,
///     "s1",
///     Term::var("Emps"),
///     Term::apply(Op::Gt, vec![
///         Term::field(Term::var("s1"), "esalary"),
///         Term::constant(Value::from(100)),
///     ]),
/// );
/// let mut env = MapEnv::new();
/// env.bind("Emps", Value::set_of(vec![
///     Value::tuple_of(vec![("esalary", Value::from(150))]),
/// ]));
/// assert_eq!(term.eval(&env)?, Value::Bool(true));
/// # Ok::<(), troll_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A literal value.
    Const(Value),
    /// A variable reference, resolved in the evaluation environment.
    Var(String),
    /// Application of a built-in operation.
    Apply(Op, Vec<Term>),
    /// Tuple field projection, written `t.field`.
    Field(Box<Term>, String),
    /// Tuple construction, written `tuple(f1: t1, …)`.
    MkTuple(Vec<(String, Term)>),
    /// Set construction, written `{t1, …, tn}`.
    MkSet(Vec<Term>),
    /// List construction, written `[t1, …, tn]`.
    MkList(Vec<Term>),
    /// Conditional, written `if c then a else b`.
    IfThenElse(Box<Term>, Box<Term>, Box<Term>),
    /// Bounded quantification over a finite set or list.
    Quant {
        /// Which quantifier.
        q: Quantifier,
        /// Bound variable name.
        var: String,
        /// Term denoting the finite domain (a set or list).
        domain: Box<Term>,
        /// Body predicate, evaluated with `var` bound to each element.
        body: Box<Term>,
    },
    /// Local binding, written `let x = t1 in t2`.
    Let {
        /// Bound variable name.
        var: String,
        /// Bound term.
        value: Box<Term>,
        /// Body evaluated with the binding in scope.
        body: Box<Term>,
    },
    /// Query-algebra selection, written `select|pred|(rel)` in TROLL
    /// interface derivations (§5.1/§5.2). The predicate sees the tuple's
    /// fields as variables.
    Select {
        /// Relation term (set of tuples).
        rel: Box<Term>,
        /// Selection predicate.
        pred: Box<Term>,
    },
    /// Query-algebra projection, written `project|f1, …|(rel)`.
    Project {
        /// Relation term (set of tuples).
        rel: Box<Term>,
        /// Fields to keep.
        fields: Vec<String>,
    },
    /// Extracts the unique element of a singleton set — the implicit
    /// final step of key-based derivations like the paper's
    /// `Salary = …(select|key match|(employees))`.
    The(Box<Term>),
}

impl Term {
    /// A literal term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The boolean literal `true`.
    pub fn truth() -> Term {
        Term::Const(Value::Bool(true))
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// An operation application.
    pub fn apply(op: Op, args: Vec<Term>) -> Term {
        Term::Apply(op, args)
    }

    /// Field projection `base.field`.
    pub fn field(base: Term, field: impl Into<String>) -> Term {
        Term::Field(Box::new(base), field.into())
    }

    /// Conditional term.
    pub fn ite(cond: Term, then: Term, els: Term) -> Term {
        Term::IfThenElse(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Bounded quantification.
    pub fn quant(q: Quantifier, var: impl Into<String>, domain: Term, body: Term) -> Term {
        Term::Quant {
            q,
            var: var.into(),
            domain: Box::new(domain),
            body: Box::new(body),
        }
    }

    /// Local binding.
    pub fn let_in(var: impl Into<String>, value: Term, body: Term) -> Term {
        Term::Let {
            var: var.into(),
            value: Box::new(value),
            body: Box::new(body),
        }
    }

    /// Query-algebra selection.
    pub fn select(rel: Term, pred: Term) -> Term {
        Term::Select {
            rel: Box::new(rel),
            pred: Box::new(pred),
        }
    }

    /// Query-algebra projection.
    pub fn project(rel: Term, fields: Vec<impl Into<String>>) -> Term {
        Term::Project {
            rel: Box::new(rel),
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// Unique-element extraction from a singleton set.
    pub fn the(rel: Term) -> Term {
        Term::The(Box::new(rel))
    }

    /// Binary equality shorthand.
    pub fn eq(a: Term, b: Term) -> Term {
        Term::apply(Op::Eq, vec![a, b])
    }

    /// Binary conjunction shorthand.
    pub fn and(a: Term, b: Term) -> Term {
        Term::apply(Op::And, vec![a, b])
    }

    /// Evaluates the term in the given environment.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`]s from operation application, unbound
    /// variables, and projections on non-tuples.
    pub fn eval(&self, env: &dyn Env) -> Result<Value> {
        match self {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(name) => env
                .lookup(name)
                .ok_or_else(|| DataError::UnboundVariable(name.clone())),
            Term::Apply(op, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                op.apply(&vals)
            }
            Term::Field(base, field) => {
                let v = base.eval(env)?;
                match &v {
                    Value::Tuple(fields) => {
                        v.field(field)
                            .cloned()
                            .ok_or_else(|| DataError::NoSuchField {
                                field: field.clone(),
                                available: fields.iter().map(|(n, _)| n.clone()).collect(),
                            })
                    }
                    other => Err(DataError::sort_mismatch(
                        format!(".{field}"),
                        "tuple",
                        other,
                    )),
                }
            }
            Term::MkTuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, t) in fields {
                    out.push((n.clone(), t.eval(env)?));
                }
                Ok(Value::tuple_of(out))
            }
            Term::MkSet(elems) => {
                let mut out = crate::PSet::new();
                for t in elems {
                    out.insert(t.eval(env)?);
                }
                Ok(Value::Set(out))
            }
            Term::MkList(elems) => {
                let mut out = crate::PList::new();
                for t in elems {
                    out.push_back(t.eval(env)?);
                }
                Ok(Value::List(out))
            }
            Term::IfThenElse(c, a, b) => {
                let cond = c.eval(env)?;
                match cond.as_bool() {
                    Some(true) => a.eval(env),
                    Some(false) => b.eval(env),
                    None => Err(DataError::sort_mismatch("if-condition", "bool", cond)),
                }
            }
            Term::Quant {
                q,
                var,
                domain,
                body,
            } => {
                let dom = domain.eval(env)?;
                let elems: Vec<Value> = match dom {
                    Value::Set(s) => s.into_iter().collect(),
                    Value::List(l) => l.into_iter().collect(),
                    other => {
                        return Err(DataError::sort_mismatch(
                            "quantifier domain",
                            "set or list",
                            other,
                        ))
                    }
                };
                for elem in elems {
                    let scoped = Binding {
                        name: var,
                        value: elem,
                        parent: env,
                    };
                    let b = body.eval(&scoped)?;
                    match (q, b.as_bool()) {
                        (Quantifier::Forall, Some(false)) => return Ok(Value::Bool(false)),
                        (Quantifier::Exists, Some(true)) => return Ok(Value::Bool(true)),
                        (_, Some(_)) => {}
                        (_, None) => {
                            return Err(DataError::sort_mismatch("quantifier body", "bool", b))
                        }
                    }
                }
                Ok(Value::Bool(matches!(q, Quantifier::Forall)))
            }
            Term::Let { var, value, body } => {
                let v = value.eval(env)?;
                let scoped = Binding {
                    name: var,
                    value: v,
                    parent: env,
                };
                body.eval(&scoped)
            }
            Term::Select { rel, pred } => {
                let r = rel.eval(env)?;
                crate::algebra::select(&r, pred, env)
            }
            Term::Project { rel, fields } => {
                let r = rel.eval(env)?;
                let fields: Vec<&str> = fields.iter().map(String::as_str).collect();
                crate::algebra::project(&r, &fields)
            }
            Term::The(rel) => {
                let r = rel.eval(env)?;
                crate::algebra::the_element(&r)
            }
        }
    }

    /// Collects the free variables of the term into `out`.
    pub fn free_vars_into(&self, out: &mut Vec<String>) {
        self.free_vars_bound(&mut Vec::new(), out);
    }

    /// Returns the free variables of the term (sorted, deduplicated).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.free_vars_into(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn free_vars_bound(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Term::Const(_) => {}
            Term::Var(name) => {
                if !bound.iter().any(|b| b == name) {
                    out.push(name.clone());
                }
            }
            Term::Apply(_, args) => {
                for a in args {
                    a.free_vars_bound(bound, out);
                }
            }
            Term::Field(base, _) => base.free_vars_bound(bound, out),
            Term::MkTuple(fields) => {
                for (_, t) in fields {
                    t.free_vars_bound(bound, out);
                }
            }
            Term::MkSet(elems) | Term::MkList(elems) => {
                for t in elems {
                    t.free_vars_bound(bound, out);
                }
            }
            Term::IfThenElse(c, a, b) => {
                c.free_vars_bound(bound, out);
                a.free_vars_bound(bound, out);
                b.free_vars_bound(bound, out);
            }
            Term::Quant {
                var, domain, body, ..
            } => {
                domain.free_vars_bound(bound, out);
                bound.push(var.clone());
                body.free_vars_bound(bound, out);
                bound.pop();
            }
            Term::Let { var, value, body } => {
                value.free_vars_bound(bound, out);
                bound.push(var.clone());
                body.free_vars_bound(bound, out);
                bound.pop();
            }
            // Selection predicates also see the tuple's fields as
            // variables; we conservatively report those as free since the
            // field set is not statically known.
            Term::Select { rel, pred } => {
                rel.free_vars_bound(bound, out);
                pred.free_vars_bound(bound, out);
            }
            Term::Project { rel, .. } | Term::The(rel) => rel.free_vars_bound(bound, out),
        }
    }

    /// Substitutes `replacement` for every free occurrence of `var`.
    pub fn subst(&self, var: &str, replacement: &Term) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(name) => {
                if name == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Term::Apply(op, args) => Term::Apply(
                *op,
                args.iter().map(|a| a.subst(var, replacement)).collect(),
            ),
            Term::Field(base, f) => Term::Field(Box::new(base.subst(var, replacement)), f.clone()),
            Term::MkTuple(fields) => Term::MkTuple(
                fields
                    .iter()
                    .map(|(n, t)| (n.clone(), t.subst(var, replacement)))
                    .collect(),
            ),
            Term::MkSet(elems) => {
                Term::MkSet(elems.iter().map(|t| t.subst(var, replacement)).collect())
            }
            Term::MkList(elems) => {
                Term::MkList(elems.iter().map(|t| t.subst(var, replacement)).collect())
            }
            Term::IfThenElse(c, a, b) => Term::ite(
                c.subst(var, replacement),
                a.subst(var, replacement),
                b.subst(var, replacement),
            ),
            Term::Quant {
                q,
                var: bound,
                domain,
                body,
            } => {
                let domain = domain.subst(var, replacement);
                let body = if bound == var {
                    (**body).clone()
                } else {
                    body.subst(var, replacement)
                };
                Term::quant(*q, bound.clone(), domain, body)
            }
            Term::Let {
                var: bound,
                value,
                body,
            } => {
                let value = value.subst(var, replacement);
                let body = if bound == var {
                    (**body).clone()
                } else {
                    body.subst(var, replacement)
                };
                Term::let_in(bound.clone(), value, body)
            }
            Term::Select { rel, pred } => {
                Term::select(rel.subst(var, replacement), pred.subst(var, replacement))
            }
            Term::Project { rel, fields } => Term::Project {
                rel: Box::new(rel.subst(var, replacement)),
                fields: fields.clone(),
            },
            Term::The(rel) => Term::the(rel.subst(var, replacement)),
        }
    }

    /// Substitutes the constant `bindings[v]` for every free occurrence
    /// of each variable `v`. Because every replacement is a closed
    /// constant, sequential substitution coincides with simultaneous
    /// substitution.
    pub fn subst_map(&self, bindings: &BTreeMap<String, Value>) -> Term {
        let mut t = self.clone();
        for (var, value) in bindings {
            t = t.subst(var, &Term::Const(value.clone()));
        }
        t
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(name) => write!(f, "{name}"),
            Term::Apply(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::Field(base, field) => write!(f, "{base}.{field}"),
            Term::MkTuple(fields) => {
                write!(f, "tuple(")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, ")")
            }
            Term::MkSet(elems) => {
                write!(f, "{{")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            Term::MkList(elems) => {
                write!(f, "[")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
            Term::IfThenElse(c, a, b) => write!(f, "if {c} then {a} else {b}"),
            Term::Quant {
                q,
                var,
                domain,
                body,
            } => {
                let kw = match q {
                    Quantifier::Forall => "for all",
                    Quantifier::Exists => "exists",
                };
                write!(f, "{kw}({var} in {domain} : {body})")
            }
            Term::Let { var, value, body } => write!(f, "let {var} = {value} in {body}"),
            Term::Select { rel, pred } => write!(f, "select|{pred}|({rel})"),
            Term::Project { rel, fields } => {
                write!(f, "project|{}|({rel})", fields.join(", "))
            }
            Term::The(rel) => write!(f, "the({rel})"),
        }
    }
}

/// An evaluation environment: resolves variable names to values.
///
/// The runtime implements this over object attribute states, event
/// parameters and `SELF`; tests can use [`MapEnv`].
pub trait Env {
    /// Looks up a variable; `None` means unbound.
    fn lookup(&self, name: &str) -> Option<Value>;
}

/// A simple map-backed environment for tests and standalone evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapEnv {
    bindings: BTreeMap<String, Value>,
}

impl MapEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        MapEnv::default()
    }

    /// Adds or replaces a binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Builds an environment from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Self {
        MapEnv {
            bindings: pairs.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }
}

impl Env for MapEnv {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.bindings.get(name).cloned()
    }
}

impl Env for BTreeMap<String, Value> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

/// A single binding layered over a parent environment (used for
/// quantifier and `let` scopes).
struct Binding<'a> {
    name: &'a str,
    value: Value,
    parent: &'a dyn Env,
}

impl Env for Binding<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        if name == self.name {
            Some(self.value.clone())
        } else {
            self.parent.lookup(name)
        }
    }
}

/// Chains two environments; the first shadows the second.
#[derive(Debug, Clone, Copy)]
pub struct Layered<'a, A: ?Sized, B: ?Sized> {
    /// Environment consulted first.
    pub top: &'a A,
    /// Fallback environment.
    pub base: &'a B,
}

impl<A: Env + ?Sized, B: Env + ?Sized> Env for Layered<'_, A, B> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.top.lookup(name).or_else(|| self.base.lookup(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn env() -> MapEnv {
        MapEnv::from_pairs(vec![
            ("x", Value::from(10)),
            ("y", Value::from(4)),
            (
                "emps",
                Value::set_of(vec![
                    Value::tuple_of(vec![("name", Value::from("a")), ("sal", Value::from(100))]),
                    Value::tuple_of(vec![("name", Value::from("b")), ("sal", Value::from(200))]),
                ]),
            ),
        ])
    }

    #[test]
    fn arithmetic_eval() {
        let t = Term::apply(Op::Add, vec![Term::var("x"), Term::var("y")]);
        assert_eq!(t.eval(&env()).unwrap(), Value::from(14));
    }

    #[test]
    fn unbound_variable_reported() {
        let t = Term::var("zzz");
        assert_eq!(
            t.eval(&env()).unwrap_err(),
            DataError::UnboundVariable("zzz".into())
        );
    }

    #[test]
    fn field_access_and_error() {
        let tup = Term::constant(Value::tuple_of(vec![("a", Value::from(1))]));
        assert_eq!(
            Term::field(tup.clone(), "a").eval(&env()).unwrap(),
            Value::from(1)
        );
        let err = Term::field(tup, "b").eval(&env()).unwrap_err();
        assert!(matches!(err, DataError::NoSuchField { .. }));
        let err = Term::field(Term::var("x"), "b").eval(&env()).unwrap_err();
        assert!(matches!(err, DataError::SortMismatch { .. }));
    }

    #[test]
    fn conditional_short_circuits_branches() {
        // the untaken branch may be erroneous without failing evaluation
        let t = Term::ite(
            Term::constant(true),
            Term::var("x"),
            Term::var("does-not-exist"),
        );
        assert_eq!(t.eval(&env()).unwrap(), Value::from(10));
    }

    #[test]
    fn forall_over_tuples() {
        // for all(e in emps : e.sal >= 100)
        let t = Term::quant(
            Quantifier::Forall,
            "e",
            Term::var("emps"),
            Term::apply(
                Op::Ge,
                vec![Term::field(Term::var("e"), "sal"), Term::constant(100i64)],
            ),
        );
        assert_eq!(t.eval(&env()).unwrap(), Value::Bool(true));
        // exists(e in emps : e.sal > 150)
        let t = Term::quant(
            Quantifier::Exists,
            "e",
            Term::var("emps"),
            Term::apply(
                Op::Gt,
                vec![Term::field(Term::var("e"), "sal"), Term::constant(150i64)],
            ),
        );
        assert_eq!(t.eval(&env()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn quantifiers_over_empty_domain() {
        let empty = Term::constant(Value::empty_set());
        let falsum = Term::constant(false);
        assert_eq!(
            Term::quant(Quantifier::Forall, "e", empty.clone(), falsum.clone())
                .eval(&env())
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Term::quant(Quantifier::Exists, "e", empty, falsum)
                .eval(&env())
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn quantifier_shadowing() {
        // x is 10 outside, shadowed inside the quantifier
        let t = Term::quant(
            Quantifier::Forall,
            "x",
            Term::constant(Value::set_of(vec![Value::from(1)])),
            Term::eq(Term::var("x"), Term::constant(1i64)),
        );
        assert_eq!(t.eval(&env()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn let_binding() {
        let t = Term::let_in(
            "z",
            Term::apply(Op::Mul, vec![Term::var("x"), Term::constant(2i64)]),
            Term::apply(Op::Add, vec![Term::var("z"), Term::var("y")]),
        );
        assert_eq!(t.eval(&env()).unwrap(), Value::from(24));
    }

    #[test]
    fn free_vars_respect_binders() {
        let t = Term::quant(
            Quantifier::Forall,
            "e",
            Term::var("emps"),
            Term::and(
                Term::apply(Op::IsDefined, vec![Term::var("e")]),
                Term::eq(Term::var("x"), Term::var("x")),
            ),
        );
        assert_eq!(t.free_vars(), vec!["emps".to_string(), "x".to_string()]);
    }

    #[test]
    fn subst_avoids_bound_occurrences() {
        let t = Term::quant(Quantifier::Forall, "x", Term::var("dom"), Term::var("x"));
        let replaced = t.subst("x", &Term::constant(5i64));
        // bound x untouched
        assert_eq!(replaced, t);
        let t2 = Term::var("x").subst("x", &Term::constant(5i64));
        assert_eq!(t2, Term::constant(5i64));
    }

    #[test]
    fn display_is_readable() {
        let t = Term::apply(Op::Insert, vec![Term::var("P"), Term::var("employees")]);
        assert_eq!(t.to_string(), "insert(P, employees)");
        let q = Term::the(Term::project(
            Term::select(
                Term::var("Emps"),
                Term::eq(Term::var("ename"), Term::var("n")),
            ),
            vec!["esalary"],
        ));
        assert_eq!(
            q.to_string(),
            "the(project|esalary|(select|=(ename, n)|(Emps)))"
        );
    }

    #[test]
    fn algebra_terms_evaluate() {
        // the(project|sal|(select|name = "a"|(emps)))  — §5.2 derivation shape
        let q = Term::the(Term::project(
            Term::select(
                Term::var("emps"),
                Term::eq(Term::var("name"), Term::constant(Value::from("a"))),
            ),
            vec!["sal"],
        ));
        assert_eq!(q.eval(&env()).unwrap(), Value::from(100));
        // selection predicate sees outer variables too
        let mut e2 = env();
        e2.bind("target", Value::from("b"));
        let q2 = Term::the(Term::project(
            Term::select(
                Term::var("emps"),
                Term::eq(Term::var("name"), Term::var("target")),
            ),
            vec!["sal"],
        ));
        assert_eq!(q2.eval(&e2).unwrap(), Value::from(200));
        // the() on non-singleton errors
        let bad = Term::the(Term::var("emps"));
        assert!(bad.eval(&env()).is_err());
    }

    #[test]
    fn algebra_terms_subst_and_free_vars() {
        let q = Term::select(Term::var("rel"), Term::eq(Term::var("f"), Term::var("x")));
        assert_eq!(
            q.free_vars(),
            vec!["f".to_string(), "rel".to_string(), "x".to_string()]
        );
        let substituted = q.subst("x", &Term::constant(1i64));
        assert_eq!(
            substituted,
            Term::select(
                Term::var("rel"),
                Term::eq(Term::var("f"), Term::constant(1i64))
            )
        );
        let p = Term::project(Term::var("rel"), vec!["a"]).subst("rel", &Term::var("r2"));
        assert_eq!(p, Term::project(Term::var("r2"), vec!["a"]));
    }

    #[test]
    fn layered_env_shadows() {
        let mut top = MapEnv::new();
        top.bind("x", Value::from(1));
        let base = env();
        let layered = Layered {
            top: &top,
            base: &base,
        };
        assert_eq!(layered.lookup("x"), Some(Value::from(1)));
        assert_eq!(layered.lookup("y"), Some(Value::from(4)));
    }

    proptest! {
        #[test]
        fn subst_then_eval_equals_bind_then_eval(x in -100i64..100, y in -100i64..100) {
            // (x + y) with x substituted == (x + y) with x bound
            let t = Term::apply(Op::Add, vec![Term::var("a"), Term::var("b")]);
            let substituted = t.subst("a", &Term::constant(x));
            let mut env1 = MapEnv::new();
            env1.bind("b", Value::from(y));
            let mut env2 = MapEnv::new();
            env2.bind("a", Value::from(x));
            env2.bind("b", Value::from(y));
            prop_assert_eq!(substituted.eval(&env1).unwrap(), t.eval(&env2).unwrap());
        }

        #[test]
        fn eval_is_deterministic(x in -100i64..100) {
            let t = Term::apply(Op::Mul, vec![Term::var("v"), Term::constant(3i64)]);
            let mut e = MapEnv::new();
            e.bind("v", Value::from(x));
            prop_assert_eq!(t.eval(&e).unwrap(), t.eval(&e).unwrap());
        }
    }
}
