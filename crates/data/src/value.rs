//! The value universe of TROLL data terms.

use crate::{Date, Money, PList, PMap, PSet, Sort, TupleField};
use std::fmt;

/// An object identity value.
///
/// The paper (Section 3) requires of identities only that "we should know
/// which of them are equal and which are not, and we should have enough of
/// them around". In TROLL, identities are declared per class under the
/// `identification` keyword as a tuple of data values "analogously to
/// database keys" (e.g. `PERSON` is identified by `name: string` and
/// `birthdate: date`). An [`ObjectId`] is therefore a class name plus a
/// key tuple.
///
/// # Example
///
/// ```
/// use troll_data::{ObjectId, Value, Date};
/// let p = ObjectId::new("PERSON", vec![
///     Value::from("E. Codd"),
///     Value::Date(Date::new(1923, 8, 19)?),
/// ]);
/// assert_eq!(p.class(), "PERSON");
/// assert_eq!(p.to_string(), "PERSON(\"E. Codd\", 1923-08-19)");
/// # Ok::<(), troll_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    class: String,
    key: Vec<Value>,
}

impl ObjectId {
    /// Creates an identity in class `class` with the given key values.
    pub fn new(class: impl Into<String>, key: Vec<Value>) -> Self {
        ObjectId {
            class: class.into(),
            key,
        }
    }

    /// Creates an identity with a single key value.
    pub fn singleton(class: impl Into<String>, key: Value) -> Self {
        ObjectId::new(class, vec![key])
    }

    /// The class this identity belongs to.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The key values identifying the object within its class.
    pub fn key(&self) -> &[Value] {
        &self.key
    }

    /// Re-tags this identity with a different class name, keeping the key.
    ///
    /// Used when an object appears under another *aspect*: `SUN·computer`
    /// and `SUN·el_device` share the identity key but are addressed
    /// through different templates (paper Example 3.1). Inheritance
    /// morphisms preserve the identity, so retagging is only sound along
    /// such morphisms — the kernel crate enforces that.
    pub fn retag(&self, class: impl Into<String>) -> ObjectId {
        ObjectId {
            class: class.into(),
            key: self.key.clone(),
        }
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.class)?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A TROLL data value.
///
/// Values are totally ordered (structurally) so that any value may be a
/// set member or map key, as the paper's data signatures require
/// (`set(PERSON)`, `set(tuple(...))`). Note the deliberate absence of
/// floating point: `money` covers the paper's fractional arithmetic
/// exactly.
///
/// `Undefined` is the value of an attribute that has not yet been
/// assigned by any valuation rule (observable only between birth and the
/// first valuation that touches the attribute).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The undefined observation.
    #[default]
    Undefined,
    /// Truth value.
    Bool(bool),
    /// Integer (also used for `nat`; sort checking enforces sign).
    Int(i64),
    /// Character string.
    Str(String),
    /// Calendar date.
    Date(Date),
    /// Monetary amount.
    Money(Money),
    /// Object identity.
    Id(ObjectId),
    /// Finite set (persistent, structurally shared — see [`PSet`]).
    Set(PSet),
    /// Finite list (persistent, structurally shared — see [`PList`]).
    List(PList),
    /// Finite map (persistent, structurally shared — see [`PMap`]).
    Map(PMap),
    /// Tuple with named fields, kept sorted by field name so equality is
    /// independent of field order in the source text.
    Tuple(Vec<(String, Value)>),
}

impl Value {
    /// Builds a set value from an iterator of elements (duplicates are
    /// collapsed, as for mathematical sets).
    pub fn set_of(elems: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(elems.into_iter().collect())
    }

    /// Builds a list value.
    pub fn list_of(elems: impl IntoIterator<Item = Value>) -> Value {
        Value::List(elems.into_iter().collect())
    }

    /// Builds a map value from key/value pairs (later duplicates of a key
    /// override earlier ones).
    pub fn map_of(pairs: impl IntoIterator<Item = (Value, Value)>) -> Value {
        Value::Map(pairs.into_iter().collect())
    }

    /// Builds a tuple value; fields are sorted by name.
    pub fn tuple_of(fields: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        let mut fields: Vec<(String, Value)> =
            fields.into_iter().map(|(n, v)| (n.into(), v)).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|a, b| a.0 == b.0);
        Value::Tuple(fields)
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(PSet::new())
    }

    /// The empty list.
    pub fn empty_list() -> Value {
        Value::List(PList::new())
    }

    /// Whether this is the undefined observation.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the identity payload, if this is an `Id`.
    pub fn as_id(&self) -> Option<&ObjectId> {
        match self {
            Value::Id(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the set payload, if this is a `Set`.
    pub fn as_set(&self) -> Option<&PSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&PList> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map payload, if this is a `Map`.
    pub fn as_map(&self) -> Option<&PMap> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a tuple field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Tuple(fields) => fields
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
                .ok()
                .map(|i| &fields[i].1),
            _ => None,
        }
    }

    /// Checks whether this value conforms to (is a member of) `sort`.
    ///
    /// `Undefined` conforms only to `optional(_)` sorts, capturing the
    /// paper's convention that attributes are observations that may be
    /// temporarily undefined.
    pub fn conforms_to(&self, sort: &Sort) -> bool {
        match (self, sort) {
            (Value::Undefined, Sort::Optional(_)) => true,
            (v, Sort::Optional(inner)) => v.conforms_to(inner),
            (Value::Bool(_), Sort::Bool) => true,
            (Value::Int(_), Sort::Int) => true,
            (Value::Int(i), Sort::Nat) => *i >= 0,
            (Value::Str(_), Sort::String) => true,
            (Value::Date(_), Sort::Date) => true,
            (Value::Money(_), Sort::Money) => true,
            (Value::Id(id), Sort::Id(class)) => id.class() == class,
            (Value::Set(elems), Sort::Set(elem_sort)) => {
                elems.iter().all(|e| e.conforms_to(elem_sort))
            }
            (Value::List(elems), Sort::List(elem_sort)) => {
                elems.iter().all(|e| e.conforms_to(elem_sort))
            }
            (Value::Map(pairs), Sort::Map(k_sort, v_sort)) => pairs
                .iter()
                .all(|(k, v)| k.conforms_to(k_sort) && v.conforms_to(v_sort)),
            (Value::Tuple(fields), Sort::Tuple(field_sorts)) => {
                fields.len() == field_sorts.len() && {
                    // Tuple values are sorted by name; sort declarations may
                    // list fields in any order.
                    let mut sorted: Vec<&TupleField> = field_sorts.iter().collect();
                    sorted.sort_by(|a, b| a.name.cmp(&b.name));
                    fields
                        .iter()
                        .zip(sorted)
                        .all(|((n, v), f)| *n == f.name && v.conforms_to(&f.sort))
                }
            }
            _ => false,
        }
    }

    /// Infers the most specific sort of this value, when one exists.
    ///
    /// Heterogeneous collections and empty collections have no unique
    /// most-specific element sort; for empty collections we default the
    /// element sort to `int` (any use site that cares should check
    /// conformance against the declared sort instead).
    pub fn infer_sort(&self) -> Option<Sort> {
        match self {
            Value::Undefined => None,
            Value::Bool(_) => Some(Sort::Bool),
            Value::Int(i) => Some(if *i >= 0 { Sort::Nat } else { Sort::Int }),
            Value::Str(_) => Some(Sort::String),
            Value::Date(_) => Some(Sort::Date),
            Value::Money(_) => Some(Sort::Money),
            Value::Id(id) => Some(Sort::Id(id.class().to_string())),
            Value::Set(elems) => {
                let elem = Self::common_sort(elems.iter())?;
                Some(Sort::set(elem))
            }
            Value::List(elems) => {
                let elem = Self::common_sort(elems.iter())?;
                Some(Sort::list(elem))
            }
            Value::Map(pairs) => {
                let k = Self::common_sort(pairs.keys())?;
                let v = Self::common_sort(pairs.values())?;
                Some(Sort::map(k, v))
            }
            Value::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (n, v) in fields {
                    out.push(TupleField::new(n.clone(), v.infer_sort()?));
                }
                Some(Sort::Tuple(out))
            }
        }
    }

    fn common_sort<'a>(mut values: impl Iterator<Item = &'a Value>) -> Option<Sort> {
        let first = match values.next() {
            None => return Some(Sort::Int),
            Some(v) => v.infer_sort()?,
        };
        values.try_fold(first, |acc, v| {
            let s = v.infer_sort()?;
            if s.is_subsort_of(&acc) {
                Some(acc)
            } else if acc.is_subsort_of(&s) {
                Some(s)
            } else {
                None
            }
        })
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}

impl From<Money> for Value {
    fn from(m: Money) -> Self {
        Value::Money(m)
    }
}

impl From<ObjectId> for Value {
    fn from(id: ObjectId) -> Self {
        Value::Id(id)
    }
}

impl FromIterator<Value> for Value {
    /// Collecting an iterator of values yields a list value.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::list_of(iter)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "undefined"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Money(m) => write!(f, "{m}"),
            Value::Id(id) => write!(f, "{id}"),
            Value::Set(elems) => {
                write!(f, "{{")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            Value::List(elems) => {
                write!(f, "[")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Value::Map(pairs) => {
                write!(f, "map(")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, ")")
            }
            Value::Tuple(fields) => {
                write!(f, "tuple(")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}:{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn person(name: &str) -> ObjectId {
        ObjectId::singleton("PERSON", Value::from(name))
    }

    #[test]
    fn tuple_fields_are_order_insensitive() {
        let a = Value::tuple_of(vec![("x", Value::from(1)), ("y", Value::from(2))]);
        let b = Value::tuple_of(vec![("y", Value::from(2)), ("x", Value::from(1))]);
        assert_eq!(a, b);
        assert_eq!(a.field("x"), Some(&Value::from(1)));
        assert_eq!(a.field("z"), None);
    }

    #[test]
    fn set_collapses_duplicates() {
        let s = Value::set_of(vec![Value::from(1), Value::from(1), Value::from(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn conformance_base_sorts() {
        assert!(Value::from(true).conforms_to(&Sort::Bool));
        assert!(Value::from(-1).conforms_to(&Sort::Int));
        assert!(!Value::from(-1).conforms_to(&Sort::Nat));
        assert!(Value::from(0).conforms_to(&Sort::Nat));
        assert!(Value::from("x").conforms_to(&Sort::String));
        assert!(!Value::from("x").conforms_to(&Sort::Int));
        assert!(Value::Undefined.conforms_to(&Sort::optional(Sort::Int)));
        assert!(!Value::Undefined.conforms_to(&Sort::Int));
        assert!(Value::from(3).conforms_to(&Sort::optional(Sort::Int)));
    }

    #[test]
    fn conformance_identities() {
        let id = Value::Id(person("alice"));
        assert!(id.conforms_to(&Sort::id("PERSON")));
        assert!(!id.conforms_to(&Sort::id("DEPT")));
    }

    #[test]
    fn conformance_collections() {
        let emps = Value::set_of(vec![Value::Id(person("a")), Value::Id(person("b"))]);
        assert!(emps.conforms_to(&Sort::set(Sort::id("PERSON"))));
        assert!(!emps.conforms_to(&Sort::set(Sort::id("DEPT"))));
        assert!(Value::empty_set().conforms_to(&Sort::set(Sort::id("DEPT"))));

        let t = Value::tuple_of(vec![
            ("ename", Value::from("a")),
            ("esalary", Value::from(100)),
        ]);
        let sort = Sort::tuple(vec![
            TupleField::new("esalary", Sort::Int),
            TupleField::new("ename", Sort::String),
        ]);
        assert!(t.conforms_to(&sort), "field order in sort must not matter");
    }

    #[test]
    fn sort_inference() {
        assert_eq!(Value::from(5).infer_sort(), Some(Sort::Nat));
        assert_eq!(Value::from(-5).infer_sort(), Some(Sort::Int));
        let mixed = Value::set_of(vec![Value::from(-1), Value::from(1)]);
        assert_eq!(mixed.infer_sort(), Some(Sort::set(Sort::Int)));
        let hetero = Value::set_of(vec![Value::from(1), Value::from("x")]);
        assert_eq!(hetero.infer_sort(), None);
        assert_eq!(Value::Undefined.infer_sort(), None);
    }

    #[test]
    fn retag_preserves_key() {
        let sun = ObjectId::singleton("computer", Value::from("SUN"));
        let dev = sun.retag("el_device");
        assert_eq!(dev.class(), "el_device");
        assert_eq!(dev.key(), sun.key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::empty_set().to_string(), "{}");
        assert_eq!(
            Value::list_of(vec![Value::from(1), Value::from(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Undefined.to_string(), "undefined");
        assert_eq!(Value::Id(person("alice")).to_string(), "PERSON(\"alice\")");
    }

    fn arb_scalar() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<bool>().prop_map(Value::from),
            any::<i64>().prop_map(Value::from),
            "[a-z]{0,8}".prop_map(Value::from),
        ]
    }

    proptest! {
        #[test]
        fn ordering_is_total_and_consistent(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
            use std::cmp::Ordering;
            // antisymmetry
            if a.cmp(&b) == Ordering::Equal {
                prop_assert_eq!(&a, &b);
            }
            // transitivity spot check
            if a <= b && b <= c {
                prop_assert!(a <= c);
            }
        }

        #[test]
        fn sets_ignore_insertion_order(mut elems in proptest::collection::vec(arb_scalar(), 0..8)) {
            let s1 = Value::set_of(elems.clone());
            elems.reverse();
            let s2 = Value::set_of(elems);
            prop_assert_eq!(s1, s2);
        }

        #[test]
        fn inferred_sort_admits_value(v in arb_scalar()) {
            let s = v.infer_sort().unwrap();
            prop_assert!(v.conforms_to(&s));
        }
    }
}
