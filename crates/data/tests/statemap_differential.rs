//! Differential oracle: [`StateMap`] against `BTreeMap<String, Value>`
//! over random scripts of inserts, removes, gets, and full iterations.
//!
//! The persistent map must be observationally identical to the standard
//! ordered map it replaced — same lookup results, same removal results,
//! same key-ordered iteration — regardless of operation interleaving.
//! The scripts also interleave snapshot points to check that persistence
//! holds: a snapshot taken mid-script must keep observing the state at
//! snapshot time no matter what the live map does afterwards.

use proptest::prelude::*;
use std::collections::BTreeMap;
use troll_data::{StateMap, Value};

/// One scripted operation over both maps.
#[derive(Debug, Clone)]
enum Op {
    Insert(String, i64),
    Remove(String),
    Get(String),
    /// Compare full key-ordered iteration.
    IterCheck,
    /// Clone the StateMap and remember the oracle state; verified at the
    /// end of the script (persistence).
    Snapshot,
}

/// Keys are drawn from a small pool so scripts actually hit existing
/// entries with removes/overwrites instead of always missing.
fn arb_key() -> impl Strategy<Value = String> {
    (0u64..24).prop_map(|i| format!("k{i:02}"))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Remove),
        arb_key().prop_map(Op::Get),
        Just(Op::IterCheck),
        Just(Op::Snapshot),
    ]
}

fn run_script(script: &[Op]) -> Result<(), TestCaseError> {
    let mut subject = StateMap::new();
    let mut oracle: BTreeMap<String, Value> = BTreeMap::new();
    let mut snapshots: Vec<(StateMap, BTreeMap<String, Value>)> = Vec::new();
    for op in script {
        match op {
            Op::Insert(k, v) => {
                subject.insert(k.clone(), Value::from(*v));
                oracle.insert(k.clone(), Value::from(*v));
            }
            Op::Remove(k) => {
                prop_assert_eq!(subject.remove(k), oracle.remove(k));
            }
            Op::Get(k) => {
                prop_assert_eq!(subject.get(k), oracle.get(k.as_str()));
            }
            Op::IterCheck => {
                let got: Vec<(String, Value)> = subject
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect();
                let want: Vec<(String, Value)> =
                    oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                prop_assert_eq!(got, want);
            }
            Op::Snapshot => {
                snapshots.push((subject.clone(), oracle.clone()));
            }
        }
        prop_assert_eq!(subject.len(), oracle.len());
        prop_assert_eq!(subject.is_empty(), oracle.is_empty());
    }
    // final full comparison…
    prop_assert_eq!(subject.to_btree(), oracle);
    // …and every mid-script snapshot still observes its own past state
    for (snap, at_time) in snapshots {
        prop_assert_eq!(snap.to_btree(), at_time);
    }
    Ok(())
}

proptest! {
    #[test]
    fn statemap_matches_btreemap_oracle(script in proptest::collection::vec(arb_op(), 0..120)) {
        run_script(&script)?;
    }

    #[test]
    fn union_matches_oracle_extend(
        base in proptest::collection::vec((arb_key(), any::<i64>()), 0..30),
        over in proptest::collection::vec((arb_key(), any::<i64>()), 0..30),
    ) {
        let base_map: StateMap = base
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect();
        let over_map: StateMap = over
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect();
        let mut oracle: BTreeMap<String, Value> = base
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect();
        for (k, v) in &over {
            oracle.insert(k.clone(), Value::from(*v));
        }
        let merged = base_map.union(&over_map);
        prop_assert_eq!(merged.to_btree(), oracle);
        // union is non-destructive
        prop_assert_eq!(
            base_map.to_btree(),
            base.iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect::<BTreeMap<_, _>>()
        );
    }

    #[test]
    fn equality_agrees_with_oracle(
        a in proptest::collection::vec((arb_key(), 0i64..4), 0..12),
        b in proptest::collection::vec((arb_key(), 0i64..4), 0..12),
    ) {
        let am: StateMap = a.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect();
        let bm: StateMap = b.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect();
        prop_assert_eq!(am == bm, am.to_btree() == bm.to_btree());
    }
}
