//! Aspects and aspect morphisms.

use crate::TemplateMorphism;
use std::fmt;
use troll_data::ObjectId;

/// An object aspect `b·t` — "a pair b·t where b is an identity and t is
/// a template", read "b as t" (§3). A given person may have the aspects
/// `p·person`, `p·employee`, `p·patient`, … all with the same identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Aspect {
    identity: ObjectId,
    template: String,
}

impl Aspect {
    /// Creates the aspect `identity · template`.
    pub fn new(identity: ObjectId, template: impl Into<String>) -> Self {
        Aspect {
            identity,
            template: template.into(),
        }
    }

    /// The identity `b`.
    pub fn identity(&self) -> &ObjectId {
        &self.identity
    }

    /// The template name `t`.
    pub fn template(&self) -> &str {
        &self.template
    }

    /// Whether this aspect belongs to the same object as `other` (same
    /// identity, possibly different template).
    pub fn same_object(&self, other: &Aspect) -> bool {
        self.identity == other.identity
    }
}

impl fmt::Display for Aspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·{}", self.identity, self.template)
    }
}

/// An aspect morphism `h : b·t → c·u` — "template morphisms with
/// identities attached" (§3).
///
/// The identities make the fundamental distinction:
///
/// * `b = c` — an **inheritance morphism**: both aspects are the *same
///   object* (Example 3.1: `h : SUN·computer → SUN·el_device`);
/// * `b ≠ c` — an **interaction morphism**: distinct objects related
///   structurally (Example 3.1: `f' : SUN·el_device → PXX·powsply`,
///   the HAS-THE relationship).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AspectMorphism {
    morphism: TemplateMorphism,
    source: Aspect,
    target: Aspect,
}

impl AspectMorphism {
    /// Creates an aspect morphism from a template morphism and two
    /// aspects. The template morphism's endpoints must match the
    /// aspects' templates; returns `None` otherwise.
    pub fn new(morphism: TemplateMorphism, source: Aspect, target: Aspect) -> Option<Self> {
        if morphism.source() != source.template() || morphism.target() != target.template() {
            return None;
        }
        Some(AspectMorphism {
            morphism,
            source,
            target,
        })
    }

    /// The underlying template morphism.
    pub fn template_morphism(&self) -> &TemplateMorphism {
        &self.morphism
    }

    /// Source aspect.
    pub fn source(&self) -> &Aspect {
        &self.source
    }

    /// Target aspect.
    pub fn target(&self) -> &Aspect {
        &self.target
    }

    /// Whether this is an inheritance morphism (`b = c`).
    pub fn is_inheritance(&self) -> bool {
        self.source.identity() == self.target.identity()
    }

    /// Whether this is an interaction morphism (`b ≠ c`).
    pub fn is_interaction(&self) -> bool {
        !self.is_inheritance()
    }
}

impl fmt::Display for AspectMorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_inheritance() {
            "inheritance"
        } else {
            "interaction"
        };
        write!(
            f,
            "{}: {} → {} [{kind}]",
            self.morphism.name(),
            self.source,
            self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troll_data::Value;

    fn sun() -> ObjectId {
        ObjectId::singleton("computer", Value::from("SUN"))
    }

    fn pxx() -> ObjectId {
        ObjectId::singleton("powsply", Value::from("PXX"))
    }

    #[test]
    fn aspect_identity_and_display() {
        let a = Aspect::new(sun(), "computer");
        let b = Aspect::new(sun(), "el_device");
        let c = Aspect::new(pxx(), "powsply");
        assert!(a.same_object(&b));
        assert!(!a.same_object(&c));
        assert_eq!(a.to_string(), "computer(\"SUN\")·computer");
    }

    #[test]
    fn inheritance_vs_interaction() {
        let h = TemplateMorphism::identity_on("h", "computer", "el_device");
        let inh = AspectMorphism::new(
            h,
            Aspect::new(sun(), "computer"),
            Aspect::new(sun(), "el_device"),
        )
        .unwrap();
        assert!(inh.is_inheritance());
        assert!(!inh.is_interaction());
        assert!(inh.to_string().contains("[inheritance]"));

        let f = TemplateMorphism::identity_on("f", "el_device", "powsply");
        let int = AspectMorphism::new(
            f,
            Aspect::new(sun(), "el_device"),
            Aspect::new(pxx(), "powsply"),
        )
        .unwrap();
        assert!(int.is_interaction());
        assert!(int.to_string().contains("[interaction]"));
    }

    #[test]
    fn endpoint_templates_must_match() {
        let h = TemplateMorphism::identity_on("h", "computer", "el_device");
        assert!(AspectMorphism::new(
            h.clone(),
            Aspect::new(sun(), "el_device"), // wrong: morphism source is computer
            Aspect::new(sun(), "el_device"),
        )
        .is_none());
        assert!(AspectMorphism::new(
            h,
            Aspect::new(sun(), "computer"),
            Aspect::new(sun(), "computer"), // wrong target
        )
        .is_none());
    }
}
