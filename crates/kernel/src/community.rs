//! Object communities — collections of interacting aspects.

use crate::{Aspect, AspectMorphism, InheritanceSchema, KernelError, Result, TemplateMorphism};
use std::collections::{BTreeMap, BTreeSet};
use troll_data::ObjectId;

/// An interaction morphism edge in a community: a template morphism with
/// two (distinct-identity) aspects attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionEdge {
    /// The underlying template morphism.
    pub morphism: TemplateMorphism,
    /// Source aspect.
    pub source: Aspect,
    /// Target aspect.
    pub target: Aspect,
}

impl InteractionEdge {
    /// View as an [`AspectMorphism`].
    pub fn as_aspect_morphism(&self) -> AspectMorphism {
        AspectMorphism::new(
            self.morphism.clone(),
            self.source.clone(),
            self.target.clone(),
        )
        .expect("edge endpoints validated on insertion")
    }
}

/// An object community: "a collection of interacting objects" (§3),
/// closed under the inheritance schema Δ — "if an aspect is given, all
/// its derived aspects with respect to a given inheritance schema should
/// also be in the community".
///
/// Grown by the paper's construction steps:
///
/// * [`Community::add_object`] — create an object (an aspect plus its
///   derived aspects);
/// * [`Community::incorporate`] — "taking a part and enlarging it by
///   adding new items"; the multiple version is
///   [`Community::aggregate`] (Example 3.9: assembling `SUN·computer`
///   from `PXX·powsply` and `CYY·cpu`);
/// * [`Community::interface_object`] — the reverse step, creating an
///   object with a *new identity* over existing ones (Example 3.8: a
///   database view); the multiple version is
///   [`Community::synchronize`] — synchronization by sharing
///   (Example 3.7: the cable shared by cpu and power supply).
#[derive(Debug, Clone)]
pub struct Community {
    schema: InheritanceSchema,
    aspects: BTreeSet<Aspect>,
    /// The creation template of each identity (the most specific aspect).
    base_template: BTreeMap<ObjectId, String>,
    interactions: Vec<InteractionEdge>,
}

impl Community {
    /// Creates an empty community over the given inheritance schema.
    pub fn new(schema: InheritanceSchema) -> Self {
        Community {
            schema,
            aspects: BTreeSet::new(),
            base_template: BTreeMap::new(),
            interactions: Vec::new(),
        }
    }

    /// The underlying inheritance schema.
    pub fn schema(&self) -> &InheritanceSchema {
        &self.schema
    }

    /// Creates an object: "we create an object by providing an identity
    /// b and a template t. Then this object b·t has all aspects obtained
    /// by relating the same identity b to all 'derived' aspects" (§3).
    ///
    /// # Errors
    ///
    /// * [`KernelError::UnknownTemplate`] if the template is not in Δ.
    /// * [`KernelError::IdentityInUse`] if the identity already names an
    ///   object ("no other aspect should have this identity").
    pub fn add_object(&mut self, identity: ObjectId, template: &str) -> Result<Aspect> {
        if !self.schema.contains(template) {
            return Err(KernelError::UnknownTemplate(template.to_string()));
        }
        if let Some(existing) = self.base_template.get(&identity) {
            return Err(KernelError::IdentityInUse {
                identity: identity.to_string(),
                existing_template: existing.clone(),
            });
        }
        let base = Aspect::new(identity.clone(), template);
        self.aspects.insert(base.clone());
        self.base_template
            .insert(identity.clone(), template.to_string());
        // Δ-closure: add every derived aspect.
        for derived in self.schema.ancestors(template) {
            self.aspects.insert(Aspect::new(identity.clone(), derived));
        }
        Ok(base)
    }

    /// Whether the aspect is in the community.
    pub fn contains(&self, aspect: &Aspect) -> bool {
        self.aspects.contains(aspect)
    }

    /// Whether any aspect with this identity exists.
    pub fn contains_identity(&self, identity: &ObjectId) -> bool {
        self.base_template.contains_key(identity)
    }

    /// All aspects, in order.
    pub fn aspects(&self) -> impl Iterator<Item = &Aspect> {
        self.aspects.iter()
    }

    /// The objects (base aspects: identity with its creation template).
    pub fn objects(&self) -> impl Iterator<Item = Aspect> + '_ {
        self.base_template
            .iter()
            .map(|(id, t)| Aspect::new(id.clone(), t.clone()))
    }

    /// All aspects of one identity (the object's aspects).
    pub fn aspects_of(&self, identity: &ObjectId) -> Vec<&Aspect> {
        self.aspects
            .iter()
            .filter(|a| a.identity() == identity)
            .collect()
    }

    /// The inheritance morphisms of the object named by `identity`:
    /// for every schema morphism between templates the object has
    /// aspects of, the corresponding aspect morphism (same identity on
    /// both sides).
    pub fn inheritance_morphisms(&self, identity: &ObjectId) -> Vec<AspectMorphism> {
        let mut out = Vec::new();
        let templates: BTreeSet<&str> = self
            .aspects_of(identity)
            .into_iter()
            .map(Aspect::template)
            .collect();
        for m in self.schema.morphisms() {
            if templates.contains(m.source()) && templates.contains(m.target()) {
                let am = AspectMorphism::new(
                    m.clone(),
                    Aspect::new(identity.clone(), m.source()),
                    Aspect::new(identity.clone(), m.target()),
                )
                .expect("schema morphism endpoints match aspect templates");
                out.push(am);
            }
        }
        out
    }

    /// Adds an interaction morphism between two existing aspects.
    ///
    /// # Errors
    ///
    /// * [`KernelError::UnknownAspect`] if either endpoint is missing.
    /// * [`KernelError::InteractionNeedsDistinctIdentities`] if both
    ///   aspects have the same identity.
    /// * [`KernelError::InvalidMorphism`] if the template morphism fails
    ///   its checks between the endpoint templates.
    pub fn add_interaction(
        &mut self,
        morphism: TemplateMorphism,
        source: Aspect,
        target: Aspect,
    ) -> Result<()> {
        if !self.contains(&source) {
            return Err(KernelError::UnknownAspect(source.to_string()));
        }
        if !self.contains(&target) {
            return Err(KernelError::UnknownAspect(target.to_string()));
        }
        if source.identity() == target.identity() {
            return Err(KernelError::InteractionNeedsDistinctIdentities {
                identity: source.identity().to_string(),
            });
        }
        let src_t = self
            .schema
            .template(source.template())
            .ok_or_else(|| KernelError::UnknownTemplate(source.template().to_string()))?;
        let dst_t = self
            .schema
            .template(target.template())
            .ok_or_else(|| KernelError::UnknownTemplate(target.template().to_string()))?;
        let violations = morphism.check(src_t, dst_t);
        if !violations.is_empty() {
            return Err(KernelError::InvalidMorphism {
                name: morphism.name().to_string(),
                violations,
            });
        }
        self.interactions.push(InteractionEdge {
            morphism,
            source,
            target,
        });
        Ok(())
    }

    /// Incorporation: the part `b·u` is already in the community; create
    /// the enlarged object `a·t` and connect it via `h : a·t → b·u`.
    ///
    /// # Errors
    ///
    /// As for [`Community::add_object`] and
    /// [`Community::add_interaction`].
    pub fn incorporate(
        &mut self,
        identity: ObjectId,
        template: &str,
        morphism: TemplateMorphism,
        part: &Aspect,
    ) -> Result<Aspect> {
        self.aggregate(identity, template, vec![(morphism, part.clone())])
    }

    /// Aggregation — the multiple version of incorporation: create
    /// `a·t` with morphisms to several parts (Example 3.9).
    ///
    /// # Errors
    ///
    /// As for [`Community::add_object`] and
    /// [`Community::add_interaction`]; on failure the new object is
    /// rolled back.
    pub fn aggregate(
        &mut self,
        identity: ObjectId,
        template: &str,
        parts: Vec<(TemplateMorphism, Aspect)>,
    ) -> Result<Aspect> {
        for (_, part) in &parts {
            if !self.contains(part) {
                return Err(KernelError::UnknownAspect(part.to_string()));
            }
        }
        let whole = self.add_object(identity.clone(), template)?;
        for (morphism, part) in parts {
            if let Err(e) = self.add_interaction(morphism, whole.clone(), part.clone()) {
                self.remove_object(&identity);
                return Err(e);
            }
        }
        Ok(whole)
    }

    /// Interfacing: create an object with a **new identity** on top of an
    /// existing one, connected by `h : b·u → a·t` (source is the existing
    /// object). "Consider the construction of a database view on top of
    /// a database: this is interfacing" (Example 3.8).
    ///
    /// # Errors
    ///
    /// As for [`Community::add_object`] and
    /// [`Community::add_interaction`].
    pub fn interface_object(
        &mut self,
        identity: ObjectId,
        template: &str,
        morphism: TemplateMorphism,
        over: &Aspect,
    ) -> Result<Aspect> {
        self.synchronize(identity, template, vec![(morphism, over.clone())])
    }

    /// Synchronization by sharing — the multiple version of interfacing:
    /// several existing objects are connected **to** the new shared
    /// object (Example 3.7: `CYY·cpu → CBZ·cable ← PXX·powsply`).
    ///
    /// # Errors
    ///
    /// As for [`Community::add_object`] and
    /// [`Community::add_interaction`]; on failure the new object is
    /// rolled back.
    pub fn synchronize(
        &mut self,
        identity: ObjectId,
        template: &str,
        sharers: Vec<(TemplateMorphism, Aspect)>,
    ) -> Result<Aspect> {
        for (_, sharer) in &sharers {
            if !self.contains(sharer) {
                return Err(KernelError::UnknownAspect(sharer.to_string()));
            }
        }
        let shared = self.add_object(identity.clone(), template)?;
        for (morphism, sharer) in sharers {
            if let Err(e) = self.add_interaction(morphism, sharer.clone(), shared.clone()) {
                self.remove_object(&identity);
                return Err(e);
            }
        }
        Ok(shared)
    }

    /// The parts of an aspect: targets of interaction edges leaving it.
    pub fn parts_of(&self, whole: &Aspect) -> Vec<&Aspect> {
        self.interactions
            .iter()
            .filter(|e| &e.source == whole)
            .map(|e| &e.target)
            .collect()
    }

    /// The sharing diagram around `shared`: all pairs of distinct
    /// sources with interaction morphisms into it (`p → shared ← q`).
    pub fn sharers_of(&self, shared: &Aspect) -> Vec<&Aspect> {
        self.interactions
            .iter()
            .filter(|e| &e.target == shared)
            .map(|e| &e.source)
            .collect()
    }

    /// All interaction edges.
    pub fn interactions(&self) -> &[InteractionEdge] {
        &self.interactions
    }

    /// Number of aspects.
    pub fn len(&self) -> usize {
        self.aspects.len()
    }

    /// Whether the community has no aspects.
    pub fn is_empty(&self) -> bool {
        self.aspects.is_empty()
    }

    fn remove_object(&mut self, identity: &ObjectId) {
        self.aspects.retain(|a| a.identity() != identity);
        self.base_template.remove(identity);
        self.interactions
            .retain(|e| e.source.identity() != identity && e.target.identity() != identity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Template;
    use troll_data::Value;

    fn schema() -> InheritanceSchema {
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("thing")).unwrap();
        s.add_specialization(
            Template::named("el_device"),
            TemplateMorphism::identity_on("d2t", "el_device", "thing"),
        )
        .unwrap();
        s.add_specialization(
            Template::named("computer"),
            TemplateMorphism::identity_on("h", "computer", "el_device"),
        )
        .unwrap();
        for t in ["powsply", "cpu", "cable"] {
            s.add_template(Template::named(t)).unwrap();
        }
        s
    }

    fn id(class: &str, name: &str) -> ObjectId {
        ObjectId::singleton(class, Value::from(name))
    }

    #[test]
    fn add_object_closes_under_schema() {
        let mut c = Community::new(schema());
        let sun = id("computer", "SUN");
        let base = c.add_object(sun.clone(), "computer").unwrap();
        assert_eq!(base.template(), "computer");
        // derived aspects SUN·el_device and SUN·thing exist
        assert!(c.contains(&Aspect::new(sun.clone(), "el_device")));
        assert!(c.contains(&Aspect::new(sun.clone(), "thing")));
        assert_eq!(c.aspects_of(&sun).len(), 3);
        assert_eq!(c.len(), 3);
        // the object list shows only the base aspect
        let objs: Vec<Aspect> = c.objects().collect();
        assert_eq!(objs, vec![Aspect::new(sun.clone(), "computer")]);
        // inheritance morphisms: computer→el_device and el_device→thing
        let inh = c.inheritance_morphisms(&sun);
        assert_eq!(inh.len(), 2);
        assert!(inh.iter().all(AspectMorphism::is_inheritance));
    }

    #[test]
    fn identity_uniqueness_enforced() {
        let mut c = Community::new(schema());
        let sun = id("computer", "SUN");
        c.add_object(sun.clone(), "computer").unwrap();
        let err = c.add_object(sun, "computer").unwrap_err();
        assert!(matches!(err, KernelError::IdentityInUse { .. }));
    }

    #[test]
    fn unknown_template_rejected() {
        let mut c = Community::new(schema());
        let err = c.add_object(id("x", "X"), "ghost").unwrap_err();
        assert_eq!(err, KernelError::UnknownTemplate("ghost".into()));
    }

    #[test]
    fn example_3_9_aggregation() {
        let mut c = Community::new(schema());
        let pxx = c.add_object(id("powsply", "PXX"), "powsply").unwrap();
        let cyy = c.add_object(id("cpu", "CYY"), "cpu").unwrap();
        let sun = c
            .aggregate(
                id("computer", "SUN"),
                "computer",
                vec![
                    (
                        TemplateMorphism::identity_on("f", "computer", "powsply"),
                        pxx.clone(),
                    ),
                    (
                        TemplateMorphism::identity_on("g", "computer", "cpu"),
                        cyy.clone(),
                    ),
                ],
            )
            .unwrap();
        let parts = c.parts_of(&sun);
        assert_eq!(parts.len(), 2);
        assert!(parts.contains(&&pxx));
        assert!(parts.contains(&&cyy));
        // all interaction edges are interaction morphisms
        for e in c.interactions() {
            assert!(e.as_aspect_morphism().is_interaction());
        }
    }

    #[test]
    fn example_3_7_sharing() {
        let mut c = Community::new(schema());
        let pxx = c.add_object(id("powsply", "PXX"), "powsply").unwrap();
        let cyy = c.add_object(id("cpu", "CYY"), "cpu").unwrap();
        let cable = c
            .synchronize(
                id("cable", "CBZ"),
                "cable",
                vec![
                    (
                        TemplateMorphism::identity_on("s1", "cpu", "cable"),
                        cyy.clone(),
                    ),
                    (
                        TemplateMorphism::identity_on("s2", "powsply", "cable"),
                        pxx.clone(),
                    ),
                ],
            )
            .unwrap();
        let sharers = c.sharers_of(&cable);
        assert_eq!(sharers.len(), 2);
        assert!(sharers.contains(&&cyy));
        assert!(sharers.contains(&&pxx));
    }

    #[test]
    fn interaction_requires_distinct_identities() {
        let mut c = Community::new(schema());
        let sun = id("computer", "SUN");
        c.add_object(sun.clone(), "computer").unwrap();
        let err = c
            .add_interaction(
                TemplateMorphism::identity_on("h", "computer", "el_device"),
                Aspect::new(sun.clone(), "computer"),
                Aspect::new(sun, "el_device"),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            KernelError::InteractionNeedsDistinctIdentities { .. }
        ));
    }

    #[test]
    fn interaction_requires_existing_aspects() {
        let mut c = Community::new(schema());
        let pxx = c.add_object(id("powsply", "PXX"), "powsply").unwrap();
        let ghost = Aspect::new(id("cpu", "GHOST"), "cpu");
        let err = c
            .add_interaction(
                TemplateMorphism::identity_on("m", "powsply", "cpu"),
                pxx.clone(),
                ghost.clone(),
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::UnknownAspect(_)));
        let err = c
            .add_interaction(
                TemplateMorphism::identity_on("m", "cpu", "powsply"),
                ghost,
                pxx,
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::UnknownAspect(_)));
    }

    #[test]
    fn failed_aggregate_rolls_back() {
        let mut c = Community::new(schema());
        let pxx = c.add_object(id("powsply", "PXX"), "powsply").unwrap();
        // second part does not exist
        let err = c.aggregate(
            id("computer", "SUN"),
            "computer",
            vec![
                (
                    TemplateMorphism::identity_on("f", "computer", "powsply"),
                    pxx,
                ),
                (
                    TemplateMorphism::identity_on("g", "computer", "cpu"),
                    Aspect::new(id("cpu", "GHOST"), "cpu"),
                ),
            ],
        );
        assert!(err.is_err());
        assert!(!c.contains_identity(&id("computer", "SUN")));
        // interfacing failure also rolls back: morphism endpoints wrong
        let pxx = Aspect::new(id("powsply", "PXX"), "powsply");
        let err = c.interface_object(
            id("cable", "CBZ"),
            "cable",
            TemplateMorphism::identity_on("bad", "cable", "powsply"), // wrong direction
            &pxx,
        );
        assert!(err.is_err());
        assert!(!c.contains_identity(&id("cable", "CBZ")));
    }

    #[test]
    fn empty_community() {
        let c = Community::new(schema());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.interactions().len(), 0);
    }
}
