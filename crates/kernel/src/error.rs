//! Error type for object-model construction.

use std::fmt;

/// Error raised while building or checking templates, morphisms, schemas
/// and communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A referenced template is not in the schema.
    UnknownTemplate(String),
    /// A template with this name already exists in the schema.
    DuplicateTemplate(String),
    /// A referenced aspect is not in the community.
    UnknownAspect(String),
    /// The aspect already exists in the community.
    DuplicateAspect(String),
    /// A morphism failed its structure/behaviour-preservation checks.
    InvalidMorphism {
        /// Morphism name.
        name: String,
        /// The individual violations found.
        violations: Vec<String>,
    },
    /// Adding the morphism would create an inheritance cycle.
    InheritanceCycle(String),
    /// An interaction morphism was given two aspects with the same
    /// identity (that would make it an inheritance morphism, which only
    /// the schema may introduce).
    InteractionNeedsDistinctIdentities {
        /// The offending identity.
        identity: String,
    },
    /// An identity is already in use by an unrelated object — the paper:
    /// "no other aspect should have this identity".
    IdentityInUse {
        /// The identity.
        identity: String,
        /// The template it is already associated with.
        existing_template: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownTemplate(t) => write!(f, "unknown template `{t}`"),
            KernelError::DuplicateTemplate(t) => write!(f, "template `{t}` already defined"),
            KernelError::UnknownAspect(a) => write!(f, "unknown aspect {a}"),
            KernelError::DuplicateAspect(a) => write!(f, "aspect {a} already in community"),
            KernelError::InvalidMorphism { name, violations } => {
                write!(f, "morphism `{name}` invalid: {}", violations.join("; "))
            }
            KernelError::InheritanceCycle(t) => {
                write!(f, "adding template `{t}` would create an inheritance cycle")
            }
            KernelError::InteractionNeedsDistinctIdentities { identity } => write!(
                f,
                "interaction morphism requires distinct identities, both are {identity}"
            ),
            KernelError::IdentityInUse {
                identity,
                existing_template,
            } => write!(
                f,
                "identity {identity} already names an object of template `{existing_template}`"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            KernelError::UnknownTemplate("x".into()).to_string(),
            "unknown template `x`"
        );
        let e = KernelError::InvalidMorphism {
            name: "h".into(),
            violations: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "morphism `h` invalid: a; b");
    }

    #[test]
    fn error_traits() {
        fn assert_err<T: std::error::Error + Send + Sync>() {}
        assert_err::<KernelError>();
    }
}
