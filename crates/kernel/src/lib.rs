//! # troll-kernel — the object model: templates, aspects, morphisms
//!
//! This crate is the executable form of Section 3 of Saake, Jungclaus,
//! Ehrich, *Object-Oriented Specification and Stepwise Refinement*
//! (1991): the semantic framework in which "concepts related to the
//! object-oriented paradigm like interaction, inheritance and object
//! aggregation can be uniformly modelled by object morphisms".
//!
//! The framework, in the paper's own vocabulary:
//!
//! * a [`Template`] is "an object's structure and behavior pattern
//!   without individual identity" — a [`Signature`] of attributes and
//!   events plus a behaviour process ([`troll_process::Lts`]);
//! * an **identity** is a [`troll_data::ObjectId`];
//! * an [`Aspect`] is a pair `b·t` ("b as t") of an identity and a
//!   template;
//! * a [`TemplateMorphism`] is a structure- and behaviour-preserving map
//!   between templates; attaching identities gives an
//!   [`AspectMorphism`], which is an **inheritance morphism** iff both
//!   aspects carry the same identity and an **interaction morphism**
//!   otherwise;
//! * an [`InheritanceSchema`] is a diagram of templates and inheritance
//!   schema morphisms (Example 3.2's `thing / el_device / calculator /
//!   computer / …` lattice), grown by *specialization* and *abstraction*
//!   (with *multiple inheritance* and *generalization* as their multiple
//!   versions);
//! * a [`Community`] is a collection of aspects closed under the schema's
//!   derived aspects and connected by interaction morphisms, grown by
//!   *incorporation* and *interfacing* (with *aggregation* and
//!   *synchronization by sharing* as their multiple versions).
//!
//! # Example — Example 3.1 of the paper
//!
//! ```
//! use troll_kernel::{Template, TemplateMorphism, InheritanceSchema, Community, Aspect};
//! use troll_data::{ObjectId, Value};
//!
//! // templates (empty signatures suffice for the identity bookkeeping)
//! let el_device = Template::named("el_device");
//! let computer = Template::named("computer");
//!
//! let mut schema = InheritanceSchema::new();
//! schema.add_template(el_device)?;
//! // computer IS-A el_device
//! schema.add_specialization(computer, TemplateMorphism::identity_on(
//!     "h", "computer", "el_device"))?;
//!
//! let mut community = Community::new(schema);
//! let sun = ObjectId::singleton("computer", Value::from("SUN"));
//! community.add_object(sun.clone(), "computer")?;
//!
//! // closing under the schema created the derived aspect SUN·el_device,
//! // related by an inheritance morphism:
//! assert!(community.contains(&Aspect::new(sun.clone(), "el_device")));
//! let inh = community.inheritance_morphisms(&sun);
//! assert_eq!(inh.len(), 1);
//! assert!(inh[0].is_inheritance());
//! # Ok::<(), troll_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aspect;
mod community;
mod error;
mod morphism;
mod schema;
mod signature;
mod template;

pub use aspect::{Aspect, AspectMorphism};
pub use community::{Community, InteractionEdge};
pub use error::KernelError;
pub use morphism::TemplateMorphism;
pub use schema::InheritanceSchema;
pub use signature::{AttributeSymbol, Signature};
pub use template::Template;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, KernelError>;
