//! Template morphisms — structure- and behaviour-preserving maps.

use crate::Template;
use std::collections::BTreeMap;
use std::fmt;

/// A template morphism `h : source → target`.
///
/// "A general notion of template morphism, i.e. a structure and behavior
/// preserving map among templates … captures inheritance as well as
/// interaction relationships" (§3). We implement the paper's working
/// case, *template projections*: the morphism maps a portion of the
/// source's items onto the target's items — e.g. Example 3.4 maps the
/// computer's `switch_on_c` to the device's `switch_on`.
///
/// Item maps may be given explicitly; items of the target not explicitly
/// covered are implicitly mapped from the same-named source item (the
/// overwhelmingly common case, and what [`TemplateMorphism::identity_on`]
/// relies on). [`TemplateMorphism::check`] verifies, against concrete
/// templates:
///
/// 1. **well-formedness** — mapped items exist on both sides, event
///    arities agree, attribute sorts agree (up to subsorting);
/// 2. **surjectivity** — every target item is in the image ("the
///    inheritance morphisms of interest seem to be surjective", §3);
/// 3. **behaviour preservation** — the source behaviour, projected onto
///    the mapped events and relabelled, is simulated by the target
///    behaviour ("a computer is bound to the protocol of switching on
///    before being able to switch off", Example 3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateMorphism {
    name: String,
    source: String,
    target: String,
    event_map: BTreeMap<String, String>,
    attr_map: BTreeMap<String, String>,
}

impl TemplateMorphism {
    /// Creates a morphism with explicit item maps.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
        event_map: BTreeMap<String, String>,
        attr_map: BTreeMap<String, String>,
    ) -> Self {
        TemplateMorphism {
            name: name.into(),
            source: source.into(),
            target: target.into(),
            event_map,
            attr_map,
        }
    }

    /// Creates the morphism that maps every same-named item of `source`
    /// onto `target` (resolved against the concrete templates during
    /// [`TemplateMorphism::check`]).
    pub fn identity_on(
        name: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        TemplateMorphism::new(name, source, target, BTreeMap::new(), BTreeMap::new())
    }

    /// Morphism name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source template name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Target template name.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The explicit event map (before implicit same-name completion).
    pub fn event_map(&self) -> &BTreeMap<String, String> {
        &self.event_map
    }

    /// Maps a source event name to its target event name, using the
    /// explicit map first and falling back to the identity.
    pub fn map_event<'a>(&'a self, event: &'a str) -> &'a str {
        self.event_map
            .get(event)
            .map(String::as_str)
            .unwrap_or(event)
    }

    /// Maps a source attribute name to its target attribute name.
    pub fn map_attribute<'a>(&'a self, attr: &'a str) -> &'a str {
        self.attr_map.get(attr).map(String::as_str).unwrap_or(attr)
    }

    /// Resolves the full event map against concrete templates: explicit
    /// entries plus same-name completion for target events.
    pub fn resolved_event_map(&self, src: &Template, dst: &Template) -> BTreeMap<String, String> {
        let mut map = self.event_map.clone();
        for ev in dst.signature().events().iter() {
            let covered = map.values().any(|t| t == &ev.name);
            if !covered && src.signature().has_event(&ev.name) {
                map.insert(ev.name.clone(), ev.name.clone());
            }
        }
        map
    }

    /// Resolves the full attribute map against concrete templates.
    pub fn resolved_attr_map(&self, src: &Template, dst: &Template) -> BTreeMap<String, String> {
        let mut map = self.attr_map.clone();
        for at in dst.signature().attributes() {
            let covered = map.values().any(|t| t == &at.name);
            if !covered && src.signature().has_attribute(&at.name) {
                map.insert(at.name.clone(), at.name.clone());
            }
        }
        map
    }

    /// Checks the morphism against concrete source and target templates;
    /// returns the list of violations (empty = valid).
    pub fn check(&self, src: &Template, dst: &Template) -> Vec<String> {
        let mut violations = Vec::new();
        if src.name() != self.source {
            violations.push(format!(
                "source template is `{}`, expected `{}`",
                src.name(),
                self.source
            ));
        }
        if dst.name() != self.target {
            violations.push(format!(
                "target template is `{}`, expected `{}`",
                dst.name(),
                self.target
            ));
        }

        let event_map = self.resolved_event_map(src, dst);
        let attr_map = self.resolved_attr_map(src, dst);

        // 1. well-formedness
        for (s, t) in &event_map {
            match (src.signature().event(s), dst.signature().event(t)) {
                (None, _) => violations.push(format!("source has no event `{s}`")),
                (_, None) => violations.push(format!("target has no event `{t}`")),
                (Some(se), Some(te)) => {
                    if se.arity != te.arity {
                        violations.push(format!(
                            "event map `{s}` ↦ `{t}` changes arity {} → {}",
                            se.arity, te.arity
                        ));
                    }
                }
            }
        }
        for (s, t) in &attr_map {
            match (src.signature().attribute(s), dst.signature().attribute(t)) {
                (None, _) => violations.push(format!("source has no attribute `{s}`")),
                (_, None) => violations.push(format!("target has no attribute `{t}`")),
                (Some(sa), Some(ta)) => {
                    if !sa.sort.is_subsort_of(&ta.sort) {
                        violations.push(format!(
                            "attribute map `{s}` ↦ `{t}` violates sorts: {} is not a subsort of {}",
                            sa.sort, ta.sort
                        ));
                    }
                }
            }
        }

        // 2. surjectivity onto the target's items
        for ev in dst.signature().events().iter() {
            if !event_map.values().any(|t| t == &ev.name) {
                violations.push(format!("target event `{}` not in the image", ev.name));
            }
        }
        for at in dst.signature().attributes() {
            if !attr_map.values().any(|t| t == &at.name) {
                violations.push(format!("target attribute `{}` not in the image", at.name));
            }
        }

        // 3. behaviour preservation: project source behaviour onto the
        // mapped events, relabel along the morphism, and require the
        // target behaviour to simulate the projection.
        if violations.is_empty() {
            let mapped_sources: Vec<&str> = event_map.keys().map(String::as_str).collect();
            let projected = src.behavior().restrict_to(&mapped_sources);
            let relabelled = projected.relabel(&event_map);
            if !troll_process::simulate::simulates(dst.behavior(), &relabelled) {
                violations.push(format!(
                    "behaviour not preserved: target `{}` does not simulate the projected source behaviour",
                    dst.name()
                ));
            }
        }

        violations
    }

    /// Composes with another morphism: `self : t → u`, `other : u → v`
    /// gives `other ∘ self : t → v`. Returns `None` if the middle
    /// templates disagree.
    pub fn compose(&self, other: &TemplateMorphism) -> Option<TemplateMorphism> {
        if self.target != other.source {
            return None;
        }
        // Compose explicit maps; identity fallbacks compose implicitly.
        let mut event_map = BTreeMap::new();
        for (s, mid) in &self.event_map {
            event_map.insert(s.clone(), other.map_event(mid).to_string());
        }
        for (mid, t) in &other.event_map {
            // source events implicitly mapped through self's identity
            if !self.event_map.values().any(|v| v == mid) {
                event_map.insert(mid.clone(), t.clone());
            }
        }
        let mut attr_map = BTreeMap::new();
        for (s, mid) in &self.attr_map {
            attr_map.insert(s.clone(), other.map_attribute(mid).to_string());
        }
        for (mid, t) in &other.attr_map {
            if !self.attr_map.values().any(|v| v == mid) {
                attr_map.insert(mid.clone(), t.clone());
            }
        }
        Some(TemplateMorphism::new(
            format!("{}∘{}", other.name, self.name),
            self.source.clone(),
            other.target.clone(),
            event_map,
            attr_map,
        ))
    }
}

impl fmt::Display for TemplateMorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} → {}", self.name, self.source, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttributeSymbol, Signature};
    use troll_data::Sort;
    use troll_process::EventSymbol;

    fn el_device() -> Template {
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("is_on", Sort::Bool));
        sig.add_event(EventSymbol::birth("create", 0));
        sig.add_event(EventSymbol::update("switch_on", 0));
        sig.add_event(EventSymbol::update("switch_off", 0));
        sig.add_event(EventSymbol::death("scrap", 0));
        // strict protocol: on/off alternate
        let mut lts = troll_process::Lts::new(4, 0);
        lts.add_transition(0, "create", 1); // off
        lts.add_transition(1, "switch_on", 2); // on
        lts.add_transition(2, "switch_off", 1);
        lts.add_transition(1, "scrap", 3);
        Template::with_behavior("el_device", sig, lts)
    }

    /// Computer with renamed events `switch_on_c` etc. (Example 3.4)
    fn computer() -> Template {
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("is_on", Sort::Bool));
        sig.add_attribute(AttributeSymbol::new("cpu_count", Sort::Nat));
        sig.add_event(EventSymbol::birth("create", 0));
        sig.add_event(EventSymbol::update("switch_on_c", 0));
        sig.add_event(EventSymbol::update("switch_off_c", 0));
        sig.add_event(EventSymbol::update("compute", 1));
        sig.add_event(EventSymbol::death("scrap", 0));
        let mut lts = troll_process::Lts::new(4, 0);
        lts.add_transition(0, "create", 1);
        lts.add_transition(1, "switch_on_c", 2);
        lts.add_transition(2, "compute", 2);
        lts.add_transition(2, "switch_off_c", 1);
        lts.add_transition(1, "scrap", 3);
        Template::with_behavior("computer", sig, lts)
    }

    fn h() -> TemplateMorphism {
        TemplateMorphism::new(
            "h",
            "computer",
            "el_device",
            [
                ("switch_on_c".to_string(), "switch_on".to_string()),
                ("switch_off_c".to_string(), "switch_off".to_string()),
            ]
            .into(),
            BTreeMap::new(),
        )
    }

    #[test]
    fn example_3_4_is_a_valid_morphism() {
        let violations = h().check(&computer(), &el_device());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn implicit_same_name_completion() {
        // `create`, `scrap`, `is_on` are mapped implicitly
        let m = h();
        let resolved = m.resolved_event_map(&computer(), &el_device());
        assert_eq!(resolved.get("create").map(String::as_str), Some("create"));
        assert_eq!(
            resolved.get("switch_on_c").map(String::as_str),
            Some("switch_on")
        );
        let attrs = m.resolved_attr_map(&computer(), &el_device());
        assert_eq!(attrs.get("is_on").map(String::as_str), Some("is_on"));
        assert_eq!(m.map_event("switch_on_c"), "switch_on");
        assert_eq!(m.map_event("create"), "create");
    }

    #[test]
    fn surjectivity_violation_detected() {
        // target with an extra event nothing maps to
        let mut dst = el_device();
        dst = {
            let mut sig = dst.signature().clone();
            sig.add_event(EventSymbol::update("explode", 0));
            Template::new("el_device", sig)
        };
        let violations = h().check(&computer(), &dst);
        assert!(violations.iter().any(|v| v.contains("explode")));
    }

    #[test]
    fn arity_violation_detected() {
        let mut sig = Signature::new();
        sig.add_event(EventSymbol::update("e", 2));
        let src = Template::new("S", sig);
        let mut sig = Signature::new();
        sig.add_event(EventSymbol::update("e", 1));
        let dst = Template::new("T", sig);
        let m = TemplateMorphism::identity_on("m", "S", "T");
        let violations = m.check(&src, &dst);
        assert!(violations.iter().any(|v| v.contains("arity")));
    }

    #[test]
    fn sort_violation_detected() {
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("a", Sort::String));
        let src = Template::new("S", sig);
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("a", Sort::Int));
        let dst = Template::new("T", sig);
        let m = TemplateMorphism::identity_on("m", "S", "T");
        let violations = m.check(&src, &dst);
        assert!(violations.iter().any(|v| v.contains("subsort")));
        // Nat → Int is fine
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("a", Sort::Nat));
        let src_nat = Template::new("S", sig);
        assert!(m.check(&src_nat, &dst).is_empty());
    }

    #[test]
    fn behavior_violation_detected() {
        // source allows switch_off before switch_on — device protocol broken
        let mut sig = computer().signature().clone();
        sig.add_event(EventSymbol::update("switch_on_c", 0));
        let mut lts = troll_process::Lts::new(3, 0);
        lts.add_transition(0, "create", 1);
        lts.add_transition(1, "switch_off_c", 1); // off before on!
        lts.add_transition(1, "switch_on_c", 1);
        let rogue = Template::with_behavior("computer", sig, lts);
        let violations = h().check(&rogue, &el_device());
        assert!(
            violations.iter().any(|v| v.contains("behaviour")),
            "{violations:?}"
        );
    }

    #[test]
    fn missing_items_detected() {
        let m = TemplateMorphism::new(
            "bad",
            "computer",
            "el_device",
            [("no_such".to_string(), "switch_on".to_string())].into(),
            [("ghost".to_string(), "is_on".to_string())].into(),
        );
        let violations = m.check(&computer(), &el_device());
        assert!(violations.iter().any(|v| v.contains("no event `no_such`")));
        assert!(violations
            .iter()
            .any(|v| v.contains("no attribute `ghost`")));
    }

    #[test]
    fn wrong_endpoint_names_detected() {
        let violations = h().check(&el_device(), &computer());
        assert!(!violations.is_empty());
    }

    #[test]
    fn composition() {
        // workstation → computer → el_device
        let w2c = TemplateMorphism::new(
            "g",
            "workstation",
            "computer",
            [("power_w".to_string(), "switch_on_c".to_string())].into(),
            BTreeMap::new(),
        );
        let composed = w2c.compose(&h()).unwrap();
        assert_eq!(composed.source(), "workstation");
        assert_eq!(composed.target(), "el_device");
        // explicit chain: power_w ↦ switch_on_c ↦ switch_on
        assert_eq!(composed.map_event("power_w"), "switch_on");
        // other's explicit entries carried through identity
        assert_eq!(composed.map_event("switch_off_c"), "switch_off");
        // mismatched middles compose to None
        assert_eq!(h().compose(&w2c), None);
    }

    #[test]
    fn display() {
        assert_eq!(h().to_string(), "h: computer → el_device");
    }
}
