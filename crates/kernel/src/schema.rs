//! Inheritance schemas — diagrams of templates related by inheritance
//! schema morphisms.

use crate::{KernelError, Result, Template, TemplateMorphism};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An inheritance schema Δ: "a diagram consisting of a collection of
/// templates related by inheritance schema morphisms" (§3). Morphisms go
/// *upward*: `h : computer → el_device` expresses that each computer IS
/// An electronic device.
///
/// The schema is grown by the paper's construction steps:
///
/// * [`InheritanceSchema::add_specialization`] — target already in Δ,
///   create the source (top-down; "by inheritance, many people mean just
///   specialization");
/// * [`InheritanceSchema::add_abstraction`] — source already in Δ,
///   create the target (grow upward, "hiding details (but not forgetting
///   them)");
/// * [`InheritanceSchema::add_multiple_specialization`] — *multiple
///   inheritance* (Example 3.5: `computer` from `el_device` and
///   `calculator`);
/// * [`InheritanceSchema::add_generalization`] — *generalization*
///   (Example 3.6: `contract_partner` generalizing `person` and
///   `company`).
///
/// Every morphism added is checked for structure/behaviour preservation
/// against the concrete templates, and acyclicity of the diagram is
/// maintained.
#[derive(Debug, Clone, Default)]
pub struct InheritanceSchema {
    templates: BTreeMap<String, Template>,
    morphisms: Vec<TemplateMorphism>,
}

impl InheritanceSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        InheritanceSchema::default()
    }

    /// Adds a template with no inheritance relationships (a root such as
    /// `thing`).
    ///
    /// # Errors
    ///
    /// [`KernelError::DuplicateTemplate`] if the name is taken.
    pub fn add_template(&mut self, template: Template) -> Result<()> {
        if self.templates.contains_key(template.name()) {
            return Err(KernelError::DuplicateTemplate(template.name().to_string()));
        }
        self.templates.insert(template.name().to_string(), template);
        Ok(())
    }

    /// Specialization: the morphism's **target** must already be in the
    /// schema; the new `template` becomes the morphism's source.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/unknown templates, invalid morphisms, or
    /// cycles.
    pub fn add_specialization(
        &mut self,
        template: Template,
        morphism: TemplateMorphism,
    ) -> Result<()> {
        self.add_multiple_specialization(template, vec![morphism])
    }

    /// Multiple specialization (multiple inheritance): connect the new
    /// template upward to several existing ones simultaneously.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/unknown templates, invalid morphisms, or
    /// cycles.
    pub fn add_multiple_specialization(
        &mut self,
        template: Template,
        morphisms: Vec<TemplateMorphism>,
    ) -> Result<()> {
        let name = template.name().to_string();
        for m in &morphisms {
            if m.source() != name {
                return Err(KernelError::InvalidMorphism {
                    name: m.name().to_string(),
                    violations: vec![format!(
                        "specialization morphism must have source `{name}`, has `{}`",
                        m.source()
                    )],
                });
            }
            if !self.templates.contains_key(m.target()) {
                return Err(KernelError::UnknownTemplate(m.target().to_string()));
            }
        }
        self.add_template(template)?;
        for m in morphisms {
            if let Err(e) = self.add_morphism(m) {
                self.templates.remove(&name);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Abstraction: the morphism's **source** must already be in the
    /// schema; the new `template` becomes the morphism's target.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/unknown templates, invalid morphisms, or
    /// cycles.
    pub fn add_abstraction(
        &mut self,
        template: Template,
        morphism: TemplateMorphism,
    ) -> Result<()> {
        self.add_generalization(template, vec![morphism])
    }

    /// Generalization: connect several existing templates upward to the
    /// new one simultaneously.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/unknown templates, invalid morphisms, or
    /// cycles.
    pub fn add_generalization(
        &mut self,
        template: Template,
        morphisms: Vec<TemplateMorphism>,
    ) -> Result<()> {
        let name = template.name().to_string();
        for m in &morphisms {
            if m.target() != name {
                return Err(KernelError::InvalidMorphism {
                    name: m.name().to_string(),
                    violations: vec![format!(
                        "generalization morphism must have target `{name}`, has `{}`",
                        m.target()
                    )],
                });
            }
            if !self.templates.contains_key(m.source()) {
                return Err(KernelError::UnknownTemplate(m.source().to_string()));
            }
        }
        self.add_template(template)?;
        for m in morphisms {
            if let Err(e) = self.add_morphism(m) {
                self.templates.remove(&name);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Adds an inheritance schema morphism between two templates already
    /// in the schema, checking validity and acyclicity.
    ///
    /// # Errors
    ///
    /// * [`KernelError::UnknownTemplate`] for missing endpoints.
    /// * [`KernelError::InvalidMorphism`] if the morphism violates
    ///   structure or behaviour preservation.
    /// * [`KernelError::InheritanceCycle`] if it would close a cycle.
    pub fn add_morphism(&mut self, morphism: TemplateMorphism) -> Result<()> {
        let src = self
            .templates
            .get(morphism.source())
            .ok_or_else(|| KernelError::UnknownTemplate(morphism.source().to_string()))?;
        let dst = self
            .templates
            .get(morphism.target())
            .ok_or_else(|| KernelError::UnknownTemplate(morphism.target().to_string()))?;
        let violations = morphism.check(src, dst);
        if !violations.is_empty() {
            return Err(KernelError::InvalidMorphism {
                name: morphism.name().to_string(),
                violations,
            });
        }
        // cycle check: target must not already reach source
        if morphism.source() == morphism.target()
            || self
                .ancestors(morphism.target())
                .contains(morphism.source())
        {
            return Err(KernelError::InheritanceCycle(morphism.source().to_string()));
        }
        self.morphisms.push(morphism);
        Ok(())
    }

    /// Looks up a template by name.
    pub fn template(&self, name: &str) -> Option<&Template> {
        self.templates.get(name)
    }

    /// Whether a template with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.templates.contains_key(name)
    }

    /// Iterates over all templates in name order.
    pub fn templates(&self) -> impl Iterator<Item = &Template> {
        self.templates.values()
    }

    /// All schema morphisms.
    pub fn morphisms(&self) -> &[TemplateMorphism] {
        &self.morphisms
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the schema has no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The *derived* templates of `name`: everything reachable upward
    /// (transitively) through schema morphisms, excluding `name` itself.
    /// An object created with template `t` has exactly the aspects
    /// `{t} ∪ ancestors(t)` (§3: "this object b·t has all aspects
    /// obtained by relating the same identity b to all 'derived' aspects
    /// t′").
    pub fn ancestors(&self, name: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([name.to_string()]);
        while let Some(current) = queue.pop_front() {
            for m in &self.morphisms {
                if m.source() == current && seen.insert(m.target().to_string()) {
                    queue.push_back(m.target().to_string());
                }
            }
        }
        seen
    }

    /// The templates that specialize `name`, transitively.
    pub fn descendants(&self, name: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([name.to_string()]);
        while let Some(current) = queue.pop_front() {
            for m in &self.morphisms {
                if m.target() == current && seen.insert(m.source().to_string()) {
                    queue.push_back(m.source().to_string());
                }
            }
        }
        seen
    }

    /// Whether `sub` IS-A `sup` (reflexive-transitive).
    pub fn is_a(&self, sub: &str, sup: &str) -> bool {
        sub == sup || self.ancestors(sub).contains(sup)
    }

    /// Composes schema morphisms along some upward path from `sub` to
    /// `sup`; `None` if no path exists. (For the diamond case several
    /// paths may exist; the paper's projections make them agree on
    /// shared items, and we return the first found by DFS.)
    pub fn path_morphism(&self, sub: &str, sup: &str) -> Option<TemplateMorphism> {
        if sub == sup {
            return Some(TemplateMorphism::identity_on(format!("id_{sub}"), sub, sup));
        }
        for m in &self.morphisms {
            if m.source() == sub {
                if m.target() == sup {
                    return Some(m.clone());
                }
                if let Some(rest) = self.path_morphism(m.target(), sup) {
                    return m.compose(&rest);
                }
            }
        }
        None
    }

    /// Direct (one-step) upward morphisms from `name`.
    pub fn direct_morphisms_from(&self, name: &str) -> Vec<&TemplateMorphism> {
        self.morphisms
            .iter()
            .filter(|m| m.source() == name)
            .collect()
    }

    /// All composed morphisms along **every** upward path from `sub` to
    /// `sup` (the diamond case yields several).
    pub fn all_path_morphisms(&self, sub: &str, sup: &str) -> Vec<TemplateMorphism> {
        if sub == sup {
            return vec![TemplateMorphism::identity_on(format!("id_{sub}"), sub, sup)];
        }
        let mut out = Vec::new();
        for m in &self.morphisms {
            if m.source() == sub {
                if m.target() == sup {
                    out.push(m.clone());
                } else {
                    for rest in self.all_path_morphisms(m.target(), sup) {
                        if let Some(composed) = m.compose(&rest) {
                            out.push(composed);
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks **diamond consistency**: for every pair of templates
    /// related by multiple upward paths (multiple inheritance diamonds,
    /// Example 3.2's `computer → {el_device, calculator} → thing`), all
    /// composed morphisms must map shared items identically — otherwise
    /// an inherited item would be ambiguous.
    ///
    /// Returns the violations found (empty = consistent).
    pub fn diamond_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let names: Vec<&str> = self.templates.keys().map(String::as_str).collect();
        for sub in &names {
            for sup in &names {
                if sub == sup {
                    continue;
                }
                let paths = self.all_path_morphisms(sub, sup);
                if paths.len() < 2 {
                    continue;
                }
                let (Some(sub_t), Some(sup_t)) = (self.template(sub), self.template(sup)) else {
                    continue;
                };
                let reference_events = paths[0].resolved_event_map(sub_t, sup_t);
                let reference_attrs = paths[0].resolved_attr_map(sub_t, sup_t);
                for other in &paths[1..] {
                    if other.resolved_event_map(sub_t, sup_t) != reference_events {
                        out.push(format!(
                            "diamond `{sub}` ⇒ `{sup}`: paths disagree on event mapping"
                        ));
                        break;
                    }
                    if other.resolved_attr_map(sub_t, sup_t) != reference_attrs {
                        out.push(format!(
                            "diamond `{sub}` ⇒ `{sup}`: paths disagree on attribute mapping"
                        ));
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the inheritance schema of Example 3.2:
    ///
    /// ```text
    ///            thing
    ///           /     \
    ///     el_device  calculator
    ///           \     /
    ///           computer
    ///          /   |    \
    /// personal_c workstation mainframe
    /// ```
    pub(crate) fn example_3_2() -> InheritanceSchema {
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("thing")).unwrap();
        s.add_specialization(
            Template::named("el_device"),
            TemplateMorphism::identity_on("d2t", "el_device", "thing"),
        )
        .unwrap();
        s.add_specialization(
            Template::named("calculator"),
            TemplateMorphism::identity_on("c2t", "calculator", "thing"),
        )
        .unwrap();
        // Example 3.5: computer by multiple specialization
        s.add_multiple_specialization(
            Template::named("computer"),
            vec![
                TemplateMorphism::identity_on("h", "computer", "el_device"),
                TemplateMorphism::identity_on("h2", "computer", "calculator"),
            ],
        )
        .unwrap();
        for leaf in ["personal_c", "workstation", "mainframe"] {
            s.add_specialization(
                Template::named(leaf),
                TemplateMorphism::identity_on(format!("{leaf}2c"), leaf, "computer"),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn example_3_2_structure() {
        let s = example_3_2();
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert_eq!(
            s.ancestors("workstation"),
            ["computer", "el_device", "calculator", "thing"]
                .iter()
                .map(|x| x.to_string())
                .collect()
        );
        assert_eq!(
            s.descendants("thing").len(),
            6,
            "everything but thing itself"
        );
        assert!(s.is_a("workstation", "thing"));
        assert!(s.is_a("computer", "computer"));
        assert!(!s.is_a("thing", "computer"));
        assert!(!s.is_a("el_device", "calculator"));
        assert_eq!(s.direct_morphisms_from("computer").len(), 2);
    }

    #[test]
    fn path_morphism_composes() {
        let s = example_3_2();
        let m = s.path_morphism("workstation", "thing").unwrap();
        assert_eq!(m.source(), "workstation");
        assert_eq!(m.target(), "thing");
        assert!(s.path_morphism("thing", "workstation").is_none());
        let id = s.path_morphism("computer", "computer").unwrap();
        assert_eq!(id.source(), "computer");
    }

    #[test]
    fn abstraction_grows_upward() {
        // "if we find out later on that computers … require special safety
        // measures, we might consider introducing a template sensitive as
        // an abstraction of computer" (§3).
        let mut s = example_3_2();
        s.add_abstraction(
            Template::named("sensitive"),
            TemplateMorphism::identity_on("sens", "computer", "sensitive"),
        )
        .unwrap();
        assert!(s.is_a("computer", "sensitive"));
        assert!(s.is_a("workstation", "sensitive"));
        assert!(!s.is_a("el_device", "sensitive"));
    }

    #[test]
    fn generalization_of_person_and_company() {
        // Example 3.6's contract_partner
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("person")).unwrap();
        s.add_template(Template::named("company")).unwrap();
        s.add_generalization(
            Template::named("contract_partner"),
            vec![
                TemplateMorphism::identity_on("p2cp", "person", "contract_partner"),
                TemplateMorphism::identity_on("c2cp", "company", "contract_partner"),
            ],
        )
        .unwrap();
        assert!(s.is_a("person", "contract_partner"));
        assert!(s.is_a("company", "contract_partner"));
    }

    #[test]
    fn duplicate_template_rejected() {
        let mut s = example_3_2();
        assert_eq!(
            s.add_template(Template::named("thing")).unwrap_err(),
            KernelError::DuplicateTemplate("thing".into())
        );
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("a")).unwrap();
        let err = s
            .add_morphism(TemplateMorphism::identity_on("m", "a", "ghost"))
            .unwrap_err();
        assert_eq!(err, KernelError::UnknownTemplate("ghost".into()));
        let err = s
            .add_specialization(
                Template::named("b"),
                TemplateMorphism::identity_on("m", "b", "ghost"),
            )
            .unwrap_err();
        assert_eq!(err, KernelError::UnknownTemplate("ghost".into()));
        // schema unchanged on failure
        assert!(!s.contains("b"));
    }

    #[test]
    fn wrong_direction_morphism_rejected() {
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("base")).unwrap();
        let err = s
            .add_specialization(
                Template::named("spec"),
                TemplateMorphism::identity_on("m", "base", "spec"), // backwards
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::InvalidMorphism { .. }));
        let err = s
            .add_generalization(
                Template::named("gen"),
                vec![TemplateMorphism::identity_on("m", "gen", "base")], // backwards
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::InvalidMorphism { .. }));
    }

    #[test]
    fn cycles_rejected() {
        let mut s = InheritanceSchema::new();
        s.add_template(Template::named("a")).unwrap();
        s.add_specialization(
            Template::named("b"),
            TemplateMorphism::identity_on("b2a", "b", "a"),
        )
        .unwrap();
        // a → b would close a cycle
        let err = s
            .add_morphism(TemplateMorphism::identity_on("a2b", "a", "b"))
            .unwrap_err();
        assert!(matches!(err, KernelError::InheritanceCycle(_)));
        // self loop
        let err = s
            .add_morphism(TemplateMorphism::identity_on("aa", "a", "a"))
            .unwrap_err();
        assert!(matches!(err, KernelError::InheritanceCycle(_)));
    }

    #[test]
    fn diamond_consistency() {
        // Example 3.2's diamond is consistent (identity morphisms agree)
        let s = example_3_2();
        assert_eq!(s.all_path_morphisms("computer", "thing").len(), 2);
        assert!(s.diamond_violations().is_empty());
        assert_eq!(s.all_path_morphisms("thing", "computer").len(), 0);
        assert_eq!(s.all_path_morphisms("thing", "thing").len(), 1);

        // an inconsistent diamond: the two paths rename an event
        // differently
        use crate::{Signature, Template};
        use troll_process::EventSymbol;
        let mut sig_top = Signature::new();
        sig_top.add_event(EventSymbol::update("go", 0));
        let mut sig_mid = Signature::new();
        sig_mid.add_event(EventSymbol::update("go", 0));
        let mut sig_bot = Signature::new();
        sig_bot.add_event(EventSymbol::update("go_fast", 0));
        sig_bot.add_event(EventSymbol::update("go_slow", 0));

        let mut bad = InheritanceSchema::new();
        bad.add_template(Template::new("top", sig_top)).unwrap();
        bad.add_specialization(
            Template::new("left", sig_mid.clone()),
            TemplateMorphism::identity_on("l", "left", "top"),
        )
        .unwrap();
        bad.add_specialization(
            Template::new("right", sig_mid),
            TemplateMorphism::identity_on("r", "right", "top"),
        )
        .unwrap();
        bad.add_multiple_specialization(
            Template::new("bottom", sig_bot),
            vec![
                TemplateMorphism::new(
                    "bl",
                    "bottom",
                    "left",
                    [("go_fast".to_string(), "go".to_string())].into(),
                    std::collections::BTreeMap::new(),
                ),
                TemplateMorphism::new(
                    "br",
                    "bottom",
                    "right",
                    [("go_slow".to_string(), "go".to_string())].into(),
                    std::collections::BTreeMap::new(),
                ),
            ],
        )
        .unwrap();
        let v = bad.diamond_violations();
        assert!(
            v.iter().any(|m| m.contains("disagree on event mapping")),
            "{v:?}"
        );
    }

    #[test]
    fn invalid_item_morphism_rejected_and_rolled_back() {
        use crate::{AttributeSymbol, Signature};
        use troll_data::Sort;
        let mut s = InheritanceSchema::new();
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("serial", Sort::Int));
        s.add_template(Template::new("base", sig)).unwrap();
        // specialized template lacks `serial`, so the (implicitly
        // resolved) morphism cannot be surjective onto base
        let err = s
            .add_specialization(
                Template::named("spec"),
                TemplateMorphism::identity_on("m", "spec", "base"),
            )
            .unwrap_err();
        assert!(matches!(err, KernelError::InvalidMorphism { .. }));
        assert!(!s.contains("spec"), "failed specialization must roll back");
    }
}
