//! Object signatures: attributes and events.

use std::collections::BTreeMap;
use std::fmt;
use troll_data::Sort;
use troll_process::{Alphabet, EventSymbol};

/// An attribute symbol: name and observation sort.
///
/// "Attributes and events define the access interface forming the object
/// signature" (§4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeSymbol {
    /// Attribute name.
    pub name: String,
    /// Sort of the observed values.
    pub sort: Sort,
    /// Whether the attribute is derived (computed by a derivation rule
    /// rather than stored — interface classes, §5.1).
    pub derived: bool,
}

impl AttributeSymbol {
    /// Creates a stored attribute.
    pub fn new(name: impl Into<String>, sort: Sort) -> Self {
        AttributeSymbol {
            name: name.into(),
            sort,
            derived: false,
        }
    }

    /// Creates a derived attribute.
    pub fn derived(name: impl Into<String>, sort: Sort) -> Self {
        AttributeSymbol {
            name: name.into(),
            sort,
            derived: true,
        }
    }
}

impl fmt::Display for AttributeSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.derived {
            write!(f, "derived {}: {}", self.name, self.sort)
        } else {
            write!(f, "{}: {}", self.name, self.sort)
        }
    }
}

/// An object signature: named attributes plus an event alphabet.
///
/// # Example
///
/// ```
/// use troll_kernel::{Signature, AttributeSymbol};
/// use troll_data::Sort;
/// use troll_process::EventSymbol;
///
/// let mut sig = Signature::new();
/// sig.add_attribute(AttributeSymbol::new("est_date", Sort::Date));
/// sig.add_event(EventSymbol::birth("establishment", 1));
/// assert!(sig.has_attribute("est_date"));
/// assert!(sig.has_event("establishment"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Signature {
    attributes: BTreeMap<String, AttributeSymbol>,
    events: Alphabet,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Adds an attribute; returns the previous symbol of the same name.
    pub fn add_attribute(&mut self, attr: AttributeSymbol) -> Option<AttributeSymbol> {
        self.attributes.insert(attr.name.clone(), attr)
    }

    /// Adds an event; returns the previous symbol of the same name.
    pub fn add_event(&mut self, event: EventSymbol) -> Option<EventSymbol> {
        self.events.insert(event)
    }

    /// Looks up an attribute.
    pub fn attribute(&self, name: &str) -> Option<&AttributeSymbol> {
        self.attributes.get(name)
    }

    /// Looks up an event.
    pub fn event(&self, name: &str) -> Option<&EventSymbol> {
        self.events.get(name)
    }

    /// Whether the named attribute exists.
    pub fn has_attribute(&self, name: &str) -> bool {
        self.attributes.contains_key(name)
    }

    /// Whether the named event exists.
    pub fn has_event(&self, name: &str) -> bool {
        self.events.contains(name)
    }

    /// Iterates attributes in name order.
    pub fn attributes(&self) -> impl Iterator<Item = &AttributeSymbol> {
        self.attributes.values()
    }

    /// The event alphabet.
    pub fn events(&self) -> &Alphabet {
        &self.events
    }

    /// Number of attributes plus events ("items" in the paper's sense).
    pub fn num_items(&self) -> usize {
        self.attributes.len() + self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troll_data::Sort;

    /// The DEPT signature from §4 of the paper.
    pub(crate) fn dept_signature() -> Signature {
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("est_date", Sort::Date));
        sig.add_attribute(AttributeSymbol::new("manager", Sort::id("PERSON")));
        sig.add_attribute(AttributeSymbol::new(
            "employees",
            Sort::set(Sort::id("PERSON")),
        ));
        sig.add_event(EventSymbol::birth("establishment", 1));
        sig.add_event(EventSymbol::death("closure", 0));
        sig.add_event(EventSymbol::update("new_manager", 1));
        sig.add_event(EventSymbol::update("hire", 1));
        sig.add_event(EventSymbol::update("fire", 1));
        sig
    }

    #[test]
    fn dept_signature_items() {
        let sig = dept_signature();
        assert_eq!(sig.num_items(), 8);
        assert_eq!(sig.attribute("manager").unwrap().sort, Sort::id("PERSON"));
        assert!(!sig.attribute("manager").unwrap().derived);
        assert!(sig.event("hire").is_some());
        assert!(sig.event("promote").is_none());
        assert!(!sig.has_attribute("missing"));
        assert_eq!(sig.attributes().count(), 3);
        assert_eq!(sig.events().len(), 5);
    }

    #[test]
    fn replacing_symbols() {
        let mut sig = dept_signature();
        let old = sig.add_attribute(AttributeSymbol::derived("manager", Sort::String));
        assert!(old.is_some());
        assert!(sig.attribute("manager").unwrap().derived);
        assert_eq!(sig.attributes().count(), 3);
    }

    #[test]
    fn attribute_display() {
        assert_eq!(AttributeSymbol::new("x", Sort::Int).to_string(), "x: int");
        assert_eq!(
            AttributeSymbol::derived("y", Sort::Money).to_string(),
            "derived y: money"
        );
    }
}
