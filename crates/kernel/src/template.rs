//! Templates: structure and behaviour patterns without identity.

use crate::Signature;
use std::fmt;
use troll_data::Sort;
use troll_process::{EventSymbol, Lts};

/// A template — "an object's structure and behavior pattern without
/// individual identity. Formally, a template can be modeled as a
/// process" (§3).
///
/// A template couples a [`Signature`] (attributes + events) with a
/// behaviour [`Lts`] over the event names. When no explicit behaviour is
/// given, the template gets the *free* behaviour: any birth event first,
/// then any update events, terminated by any death event — the maximal
/// prefix-closed life-cycle language over the alphabet. Permissions (in
/// the runtime) restrict it further.
///
/// # Example
///
/// ```
/// use troll_kernel::{Template, Signature, AttributeSymbol};
/// use troll_data::Sort;
/// use troll_process::EventSymbol;
///
/// let mut sig = Signature::new();
/// sig.add_attribute(AttributeSymbol::new("is_on", Sort::Bool));
/// sig.add_event(EventSymbol::birth("create", 0));
/// sig.add_event(EventSymbol::update("switch_on", 0));
/// sig.add_event(EventSymbol::death("scrap", 0));
/// let t = Template::new("el_device", sig);
/// assert!(t.behavior().accepts(["create", "switch_on", "scrap"]));
/// assert!(!t.behavior().accepts(["switch_on"])); // must be born first
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    name: String,
    signature: Signature,
    behavior: Lts,
}

impl Template {
    /// Creates a template with the free life-cycle behaviour derived
    /// from the signature's birth/update/death classification.
    pub fn new(name: impl Into<String>, signature: Signature) -> Self {
        let behavior = free_life_cycle(&signature);
        Template {
            name: name.into(),
            signature,
            behavior,
        }
    }

    /// Creates a template with an explicit behaviour LTS.
    pub fn with_behavior(name: impl Into<String>, signature: Signature, behavior: Lts) -> Self {
        Template {
            name: name.into(),
            signature,
            behavior,
        }
    }

    /// Creates a template with an empty signature — sufficient for
    /// identity/inheritance bookkeeping in examples and tests.
    pub fn named(name: impl Into<String>) -> Self {
        Template::new(name, Signature::new())
    }

    /// The template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The behaviour process.
    pub fn behavior(&self) -> &Lts {
        &self.behavior
    }

    /// Builds the **class template** for this member template: "a class
    /// is again an object, with a time varying set of objects as
    /// members. … The class items are actions like inserting and
    /// deleting members, and observations are attribute/value pairs with
    /// attributes like the current number of members and the current set
    /// of (identities of) members. In most object-oriented systems,
    /// standard class items … are provided implicitly" (§3).
    ///
    /// The resulting template has events `create_class`, `insert`,
    /// `delete`, `drop_class` and attributes `members` and `card`. Since
    /// the class template is itself a template, classes of classes
    /// (metaclasses) need no extra machinery.
    pub fn class_template(&self) -> Template {
        let mut sig = Signature::new();
        sig.add_attribute(crate::AttributeSymbol::new(
            "members",
            Sort::set(Sort::id(&self.name)),
        ));
        sig.add_attribute(crate::AttributeSymbol::new("card", Sort::Nat));
        sig.add_event(EventSymbol::birth("create_class", 0));
        sig.add_event(EventSymbol::update("insert", 1));
        sig.add_event(EventSymbol::update("delete", 1));
        sig.add_event(EventSymbol::death("drop_class", 0));
        Template::new(format!("class({})", self.name), sig)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "template {} ({} attributes, {} events)",
            self.name,
            self.signature.attributes().count(),
            self.signature.events().len()
        )
    }
}

/// The free life-cycle LTS: state 0 (unborn) takes any birth event to
/// state 1 (alive); state 1 loops on updates/actives and takes any death
/// event to state 2 (dead, terminal). Templates whose alphabet has no
/// birth events are considered always-alive substrate objects (e.g. the
/// paper's `emp_rel` before wrapping): they start alive.
fn free_life_cycle(signature: &Signature) -> Lts {
    use troll_process::EventKind;
    let has_birth = signature.events().birth_events().next().is_some();
    let initial = if has_birth { 0 } else { 1 };
    let mut lts = Lts::new(3, initial);
    for ev in signature.events().iter() {
        match ev.kind {
            EventKind::Birth => lts.add_transition(0, ev.name.clone(), 1),
            EventKind::Update | EventKind::Active => lts.add_transition(1, ev.name.clone(), 1),
            EventKind::Death => lts.add_transition(1, ev.name.clone(), 2),
        }
    }
    lts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeSymbol;

    fn dept_template() -> Template {
        let mut sig = Signature::new();
        sig.add_attribute(AttributeSymbol::new("est_date", Sort::Date));
        sig.add_attribute(AttributeSymbol::new(
            "employees",
            Sort::set(Sort::id("PERSON")),
        ));
        sig.add_event(EventSymbol::birth("establishment", 1));
        sig.add_event(EventSymbol::update("hire", 1));
        sig.add_event(EventSymbol::update("fire", 1));
        sig.add_event(EventSymbol::death("closure", 0));
        Template::new("DEPT", sig)
    }

    #[test]
    fn free_behavior_respects_life_cycle() {
        let t = dept_template();
        let b = t.behavior();
        assert!(b.accepts(["establishment", "hire", "hire", "fire", "closure"]));
        assert!(!b.accepts(["hire"]));
        assert!(!b.accepts(["establishment", "closure", "hire"]));
        assert!(!b.accepts(["establishment", "establishment"]));
        assert!(b.life_cycle_violations(t.signature().events()).is_empty());
    }

    #[test]
    fn birthless_template_starts_alive() {
        let mut sig = Signature::new();
        sig.add_event(EventSymbol::update("tick", 0));
        let t = Template::new("clock", sig);
        assert!(t.behavior().accepts(["tick", "tick"]));
    }

    #[test]
    fn class_template_standard_items() {
        let t = dept_template();
        let c = t.class_template();
        assert_eq!(c.name(), "class(DEPT)");
        assert!(c.signature().has_event("insert"));
        assert!(c.signature().has_event("delete"));
        assert!(c.signature().has_attribute("members"));
        assert_eq!(
            c.signature().attribute("members").unwrap().sort,
            Sort::set(Sort::id("DEPT"))
        );
        assert!(c
            .behavior()
            .accepts(["create_class", "insert", "insert", "delete"]));
        // metaclass: class of classes
        let meta = c.class_template();
        assert_eq!(meta.name(), "class(class(DEPT))");
        assert_eq!(
            meta.signature().attribute("members").unwrap().sort,
            Sort::set(Sort::id("class(DEPT)"))
        );
    }

    #[test]
    fn display() {
        let t = dept_template();
        assert_eq!(t.to_string(), "template DEPT (2 attributes, 4 events)");
    }

    #[test]
    fn explicit_behavior_kept() {
        let mut strict = Lts::new(2, 0);
        strict.add_transition(0, "establishment", 1);
        let t = Template::with_behavior("DEPT", Signature::new(), strict.clone());
        assert_eq!(t.behavior(), &strict);
    }
}
