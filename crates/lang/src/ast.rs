//! Declaration-level abstract syntax for TROLL specifications.
//!
//! Expressions are represented directly as [`troll_data::Term`]s and
//! temporal formulas as [`troll_temporal::Formula`]s — the parser lowers
//! them on the fly; this module keeps the *declaration* structure
//! (classes, sections, rules) faithful to the source.

use troll_data::{Sort, Term};
use troll_temporal::Formula;

/// A complete specification: a sequence of top-level items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Spec {
    /// Finds an object class declaration by name.
    pub fn object_class(&self, name: &str) -> Option<&ObjectClassDecl> {
        self.items.iter().find_map(|i| match i {
            Item::ObjectClass(c) if c.name == name => Some(c),
            _ => None,
        })
    }

    /// Finds an interface class declaration by name.
    pub fn interface_class(&self, name: &str) -> Option<&InterfaceClassDecl> {
        self.items.iter().find_map(|i| match i {
            Item::InterfaceClass(c) if c.name == name => Some(c),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `object class C … end object class C;`
    ObjectClass(ObjectClassDecl),
    /// `interface class I … end interface class I;`
    InterfaceClass(InterfaceClassDecl),
    /// `global interactions … end global interactions;`
    GlobalInteractions(GlobalInteractionsDecl),
    /// `module M … end module M;`
    Module(ModuleDecl),
}

/// An `object class` (or single `object`) declaration.
///
/// A single `object` (like the paper's `TheCompany` and `emp_rel`) is an
/// object class with `singleton == true`: its one instance is born
/// implicitly addressable by the class name.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectClassDecl {
    /// Class name.
    pub name: String,
    /// Whether this was declared `object X` rather than `object class X`.
    pub singleton: bool,
    /// `identification` parameters (database-key style).
    pub identification: Vec<Param>,
    /// Declared `data types` (documentation of the data signature).
    pub data_types: Vec<Sort>,
    /// `view of BASE;` — specialization/phase (§4: MANAGER view of
    /// PERSON).
    pub view_of: Option<String>,
    /// `inheriting OBJ as alias;` — incorporation of base instances for
    /// formal implementation (§5.2: EMPL_IMPL inheriting emp_rel).
    pub inheriting: Vec<InheritDecl>,
    /// The template body.
    pub body: TemplateBody,
}

/// `inheriting emp_rel as employees;`
#[derive(Debug, Clone, PartialEq)]
pub struct InheritDecl {
    /// The incorporated object (class) name.
    pub object: String,
    /// Local alias used to address it.
    pub alias: String,
}

/// A typed parameter/variable declaration `name: sort`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Declared sort.
    pub sort: Sort,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, sort: Sort) -> Self {
        Param {
            name: name.into(),
            sort,
        }
    }
}

/// The sections of a template.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplateBody {
    /// Attribute declarations.
    pub attributes: Vec<AttrDecl>,
    /// Component declarations (complex objects).
    pub components: Vec<ComponentDecl>,
    /// Event declarations.
    pub events: Vec<EventDecl>,
    /// Valuation rules.
    pub valuation: Vec<ValuationRule>,
    /// Derivation rules for derived attributes.
    pub derivation_rules: Vec<DerivationRule>,
    /// Permissions.
    pub permissions: Vec<PermissionRule>,
    /// Constraints.
    pub constraints: Vec<ConstraintDecl>,
    /// Local interactions / calling rules.
    pub interactions: Vec<CallingRule>,
    /// Liveness obligations — future-directed formulas the object must
    /// discharge over its completed life ("liveness requirements (i.e.
    /// goals to be achieved by the object in an active way)", §4).
    pub obligations: Vec<Formula>,
}

/// An attribute declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Parameter sorts — the paper's *parameterized attributes*
    /// (`IncomeInYear(integer): money`); non-empty implies `derived`.
    pub params: Vec<Sort>,
    /// Observation sort.
    pub sort: Sort,
    /// Whether declared `derived`.
    pub derived: bool,
}

/// Component multiplicity in a complex object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A single component object.
    Single,
    /// `LIST(C)` — an ordered list of components.
    List,
    /// `SET(C)` — a set of components.
    Set,
}

/// A component declaration `depts: LIST(DEPT);`.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDecl {
    /// Component name.
    pub name: String,
    /// Multiplicity.
    pub kind: ComponentKind,
    /// Class of the component objects.
    pub class: String,
}

/// Life-cycle marker on an event declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventMarker {
    /// `birth e;`
    Birth,
    /// plain update event
    #[default]
    Update,
    /// `death e;`
    Death,
    /// `active e;`
    Active,
}

/// An event declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecl {
    /// Event name.
    pub name: String,
    /// Parameter sorts.
    pub params: Vec<Sort>,
    /// Life-cycle marker.
    pub marker: EventMarker,
    /// Whether declared `derived` (interface classes, §5.1).
    pub derived: bool,
    /// `birth PERSON.become_manager;` — the event is an alias for a base
    /// object's event (phases, §4).
    pub alias_of: Option<(String, String)>,
}

/// A valuation rule
/// `{ guard } => [ event(params) ] attr = term ;`
/// (guard optional).
#[derive(Debug, Clone, PartialEq)]
pub struct ValuationRule {
    /// Optional guard predicate, evaluated in the pre-state.
    pub guard: Option<Term>,
    /// Event name the rule is indexed by.
    pub event: String,
    /// Variable names bound to the event's actual parameters.
    pub params: Vec<String>,
    /// Attribute assigned.
    pub attribute: String,
    /// New value, a term over the pre-state and the parameters.
    pub value: Term,
}

/// A derivation rule `attr = term ;` or `attr(x, …) = term ;`
/// (derived and parameterized attributes).
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationRule {
    /// Derived attribute name.
    pub attribute: String,
    /// Parameter binder names (parameterized attributes).
    pub params: Vec<String>,
    /// Defining term.
    pub value: Term,
}

/// A permission `{ formula } event(args) ;`.
#[derive(Debug, Clone, PartialEq)]
pub struct PermissionRule {
    /// Precondition formula.
    pub formula: Formula,
    /// Event name.
    pub event: String,
    /// Variable names bound to the event's actual parameters (a `_`
    /// in the source produces a fresh ignored binder).
    pub params: Vec<String>,
}

/// Kind of constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKindAst {
    /// `static φ;` — must hold in every state.
    Static,
    /// `dynamic φ;` — temporal formula holding at every position.
    Dynamic,
    /// `initially φ;` — must hold right after birth.
    Initially,
}

/// A constraint declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDecl {
    /// Kind.
    pub kind: ConstraintKindAst,
    /// The formula.
    pub formula: Formula,
}

/// One side of an event-calling rule: a (possibly qualified) event with
/// argument terms.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRef {
    /// Where the event lives.
    pub target: TargetRef,
    /// Event name.
    pub event: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// Qualification of an event reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetRef {
    /// Unqualified: the enclosing object itself.
    Local,
    /// `alias.event` — a component or incorporated (inherited) object.
    Component(String),
    /// `CLASS(id_expr).event` — a specific instance of a class (global
    /// interactions).
    Instance {
        /// Class name.
        class: String,
        /// Term denoting the instance identity.
        id: Term,
    },
}

/// An event-calling rule
/// `trigger >> callee ;` or `trigger >> (c1; c2; …) ;`
/// — event calling and transaction calling (§4, §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CallingRule {
    /// The calling event (pattern position: its args are binder
    /// variables when simple).
    pub trigger: EventRef,
    /// The called events, executed as one synchronous unit.
    pub calls: Vec<EventRef>,
}

/// A `global interactions` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GlobalInteractionsDecl {
    /// Declared variables.
    pub variables: Vec<Param>,
    /// The calling rules.
    pub rules: Vec<CallingRule>,
}

/// An `interface class` declaration (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceClassDecl {
    /// Interface name.
    pub name: String,
    /// Encapsulated base classes with optional instance variables
    /// (`encapsulating PERSON P, DEPT D`).
    pub encapsulating: Vec<EncapsulatedBase>,
    /// Optional `selection where` predicate.
    pub selection: Option<Term>,
    /// Exposed attributes (possibly `derived`).
    pub attributes: Vec<AttrDecl>,
    /// Exposed events (possibly `derived`).
    pub events: Vec<EventDecl>,
    /// Derivation rules for derived attributes.
    pub derivation_rules: Vec<DerivationRule>,
    /// Calling rules for derived events.
    pub calling: Vec<CallingRule>,
}

/// One encapsulated base of an interface.
#[derive(Debug, Clone, PartialEq)]
pub struct EncapsulatedBase {
    /// Base class name.
    pub class: String,
    /// Instance variable (defaults to the class name when omitted).
    pub var: String,
}

/// A `module` declaration — the three-level schema architecture (§6).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModuleDecl {
    /// Module name.
    pub name: String,
    /// Classes of the conceptual schema.
    pub conceptual: Vec<String>,
    /// Classes/objects of the internal schema.
    pub internal: Vec<String>,
    /// Named external schemata (export interfaces): name → interface
    /// classes.
    pub external: Vec<(String, Vec<String>)>,
    /// Imports of other modules' external schemata:
    /// `(module, schema)` pairs.
    pub imports: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lookup_helpers() {
        let spec = Spec {
            items: vec![
                Item::ObjectClass(ObjectClassDecl {
                    name: "DEPT".into(),
                    singleton: false,
                    identification: vec![Param::new("id", Sort::String)],
                    data_types: vec![],
                    view_of: None,
                    inheriting: vec![],
                    body: TemplateBody::default(),
                }),
                Item::InterfaceClass(InterfaceClassDecl {
                    name: "SAL".into(),
                    encapsulating: vec![EncapsulatedBase {
                        class: "PERSON".into(),
                        var: "PERSON".into(),
                    }],
                    selection: None,
                    attributes: vec![],
                    events: vec![],
                    derivation_rules: vec![],
                    calling: vec![],
                }),
            ],
        };
        assert!(spec.object_class("DEPT").is_some());
        assert!(spec.object_class("SAL").is_none());
        assert!(spec.interface_class("SAL").is_some());
        assert!(spec.interface_class("DEPT").is_none());
    }

    #[test]
    fn defaults() {
        assert_eq!(EventMarker::default(), EventMarker::Update);
        let body = TemplateBody::default();
        assert!(body.attributes.is_empty() && body.permissions.is_empty());
    }
}
