//! Graphical notation: renders an analyzed [`SystemModel`] as a
//! Graphviz DOT graph — the paper's "graphical notations for TROLL"
//! future-work item (§7).
//!
//! Nodes are object classes (record shape, singletons with a dashed
//! border, phases/specializations annotated), interface classes
//! (ellipses) and modules (clusters). Edges:
//!
//! * `view of` — solid edge labelled *phase* / *specialization*;
//! * `inheriting … as` — edge labelled *incorporates*;
//! * components — edge labelled with the component name/multiplicity;
//! * interfaces — dashed edges to their encapsulated bases;
//! * global interactions — bold edges between the trigger and callee
//!   classes labelled with the events.

use crate::{SystemModel, ViewKind};
use std::fmt::Write;

/// Renders the model as DOT (pipe through `dot -Tsvg` to draw).
pub fn to_dot(model: &SystemModel) -> String {
    let mut out =
        String::from("digraph troll {\n  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n");

    // object classes
    for (name, class) in &model.classes {
        let attrs = class.template.signature().attributes().count();
        let events = class.template.signature().events().len();
        let style = if class.singleton {
            "shape=record, style=dashed"
        } else {
            "shape=record"
        };
        let _ = writeln!(
            out,
            "  {:?} [{style}, label=\"{{{name}|{attrs} attrs, {events} events}}\"];",
            node(name)
        );
    }

    // interfaces
    for (name, iface) in &model.interfaces {
        let _ = writeln!(out, "  {:?} [shape=ellipse, label=\"{name}\"];", node(name));
        for (base, _) in &iface.bases {
            let _ = writeln!(
                out,
                "  {:?} -> {:?} [style=dashed, label=\"view of\"];",
                node(name),
                node(base)
            );
        }
    }

    // structural edges
    for (name, class) in &model.classes {
        if let Some((base, kind)) = &class.view {
            let label = match kind {
                ViewKind::Phase => "phase",
                ViewKind::Specialization => "specialization",
            };
            let _ = writeln!(
                out,
                "  {:?} -> {:?} [label=\"{label}\"];",
                node(name),
                node(base)
            );
        }
        for (object, alias) in &class.inheriting {
            let _ = writeln!(
                out,
                "  {:?} -> {:?} [label=\"incorporates {alias}\"];",
                node(name),
                node(object)
            );
        }
        for comp in &class.components {
            let mult = match comp.kind {
                crate::ast::ComponentKind::Single => "",
                crate::ast::ComponentKind::List => " [list]",
                crate::ast::ComponentKind::Set => " [set]",
            };
            let _ = writeln!(
                out,
                "  {:?} -> {:?} [label=\"{}{mult}\", arrowhead=diamond];",
                node(name),
                node(&comp.class),
                comp.name
            );
        }
    }

    // global interactions
    for rule in &model.global_interactions {
        if let crate::EventTarget::Instance { class: from, .. } = &rule.trigger_target {
            for call in &rule.calls {
                if let crate::EventTarget::Instance { class: to, .. } = &call.target {
                    let _ = writeln!(
                        out,
                        "  {:?} -> {:?} [style=bold, color=blue, label=\"{} >> {}\"];",
                        node(from),
                        node(to),
                        rule.trigger_event,
                        call.event
                    );
                }
            }
        }
    }

    // modules as clusters
    for (mname, module) in &model.modules {
        let _ = writeln!(out, "  subgraph \"cluster_{mname}\" {{");
        let _ = writeln!(out, "    label=\"module {mname}\"; style=rounded;");
        for c in module
            .conceptual
            .iter()
            .chain(&module.internal)
            .chain(module.external.iter().flat_map(|(_, m)| m))
        {
            let _ = writeln!(out, "    {:?};", node(c));
        }
        let _ = writeln!(out, "  }}");
    }

    out.push_str("}\n");
    out
}

/// DOT node id for a class/interface name.
fn node(name: &str) -> String {
    format!("n_{name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, parse};

    fn model(src: &str) -> SystemModel {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn dot_renders_classes_and_edges() {
        let src = r#"
object class PERSON
  identification name: string;
  template
    attributes Salary: money;
    events birth create; become_manager;
end object class PERSON;

object class MANAGER
  view of PERSON;
  template
    events birth PERSON.become_manager;
end object class MANAGER;

object TheCompany
  template
    components depts: LIST(DEPT);
end object TheCompany;

object class DEPT
  identification id: string;
  template
    events birth establishment; new_manager(|PERSON|);
end object class DEPT;

interface class SAL
  encapsulating PERSON
  attributes Salary: money;
end interface class SAL;

global interactions
  variables P: |PERSON|; D: |DEPT|;
  DEPT(D).new_manager(P) >> PERSON(P).become_manager;
end global interactions;

module M
  conceptual schema PERSON, DEPT;
  external schema S = SAL;
end module M;
"#;
        let dot = to_dot(&model(src));
        assert!(dot.starts_with("digraph troll {"));
        assert!(dot.ends_with("}\n"));
        // nodes
        assert!(dot.contains("\"n_PERSON\""));
        assert!(dot.contains("\"n_MANAGER\""));
        assert!(dot.contains("shape=ellipse, label=\"SAL\""));
        // singleton is dashed
        assert!(dot.contains("style=dashed, label=\"{TheCompany"));
        // edges
        assert!(dot.contains("\"n_MANAGER\" -> \"n_PERSON\" [label=\"phase\"]"));
        assert!(dot.contains("arrowhead=diamond"));
        assert!(dot.contains("new_manager >> become_manager"));
        // module cluster
        assert!(dot.contains("subgraph \"cluster_M\""));
    }

    #[test]
    fn dot_renders_incorporation() {
        let src = r#"
object base_rel
  template
    attributes T: set(tuple(k: string));
    events birth mk;
    valuation
      [mk] T = {};
end object base_rel;

object class IMPL
  identification k: string;
  template
    inheriting base_rel as store;
    events birth go;
end object class IMPL;
"#;
        let dot = to_dot(&model(src));
        assert!(dot.contains("incorporates store"));
    }
}
