//! The TROLL lexer.

use crate::{LangError, Result, Token, TokenKind};

/// Tokenizes TROLL source text.
///
/// * Comments run from `--` to end of line.
/// * String literals use `"…"` or `'…'` (the paper writes
///   `'Research'`).
/// * `123.45` is a money literal; `123` is an integer.
/// * `_` alone is the wildcard token.
///
/// # Errors
///
/// Reports unterminated strings, malformed numbers and unexpected
/// characters with line/column positions.
///
/// # Example
///
/// ```
/// use troll_lang::{lex, TokenKind};
/// let toks = lex("hire(P) >> fire(P); -- comment")?;
/// assert_eq!(toks[0].kind, TokenKind::Ident("hire".into()));
/// assert_eq!(toks[4].kind, TokenKind::Calls);
/// assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), troll_lang::LangError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token::new($kind, line, col));
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '-' if next == Some('-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            ',' => push!(TokenKind::Comma, 1),
            ';' => push!(TokenKind::Semi, 1),
            ':' => push!(TokenKind::Colon, 1),
            '.' => push!(TokenKind::Dot, 1),
            '|' => push!(TokenKind::Pipe, 1),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '*' => push!(TokenKind::Star, 1),
            '/' => push!(TokenKind::Slash, 1),
            '=' if next == Some('>') => push!(TokenKind::Implies, 2),
            '⇒' => push!(TokenKind::Implies, 1),
            '≥' => push!(TokenKind::Ge, 1),
            '≤' => push!(TokenKind::Le, 1),
            '=' => push!(TokenKind::Eq, 1),
            '<' if next == Some('>') => push!(TokenKind::Neq, 2),
            '<' if next == Some('=') => push!(TokenKind::Le, 2),
            '<' => push!(TokenKind::Lt, 1),
            '>' if next == Some('>') => push!(TokenKind::Calls, 2),
            '>' if next == Some('=') => push!(TokenKind::Ge, 2),
            '>' => push!(TokenKind::Gt, 1),
            '"' | '\'' => {
                let quote = c;
                let start_col = col;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        None | Some('\n') => {
                            return Err(LangError::new(
                                line,
                                start_col,
                                "unterminated string literal",
                            ))
                        }
                        Some(&ch) if ch == quote => break,
                        Some(&ch) => {
                            s.push(ch);
                            j += 1;
                        }
                    }
                }
                let len = j + 1 - i;
                tokens.push(Token::new(TokenKind::Str(s), line, start_col));
                i = j + 1;
                col += len;
            }
            '_' if !next.is_some_and(|n| n.is_alphanumeric() || n == '_') => {
                push!(TokenKind::Underscore, 1)
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                // money literal: digits '.' 1-2 digits (not followed by ident)
                if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(char::is_ascii_digit)
                {
                    let mut k = j + 1;
                    while k < chars.len() && chars[k].is_ascii_digit() {
                        k += 1;
                    }
                    let text: String = chars[i..k].iter().collect();
                    let m: troll_data::Money = text.parse().map_err(|_| {
                        LangError::new(line, col, format!("bad money literal `{text}`"))
                    })?;
                    let len = k - i;
                    tokens.push(Token::new(TokenKind::Money(m.cents()), line, col));
                    i = k;
                    col += len;
                } else {
                    let text: String = chars[i..j].iter().collect();
                    let n: i64 = text.parse().map_err(|_| {
                        LangError::new(line, col, format!("integer `{text}` out of range"))
                    })?;
                    let len = j - i;
                    tokens.push(Token::new(TokenKind::Int(n), line, col));
                    i = j;
                    col += len;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let len = j - i;
                tokens.push(Token::new(TokenKind::Ident(text), line, col));
                i = j;
                col += len;
            }
            other => {
                return Err(LangError::new(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    tokens.push(Token::new(TokenKind::Eof, line, col));
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) [ ] { } , ; : . | = <> < <= > >= + - * / >> => _"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Dot,
                TokenKind::Pipe,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Calls,
                TokenKind::Implies,
                TokenKind::Underscore,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unicode_math_symbols_accepted() {
        // the paper typesets ⇒ and ≥
        assert_eq!(
            kinds("a ⇒ b ≥ 5 ≤ 6"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Implies,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Int(5),
                TokenKind::Le,
                TokenKind::Int(6),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 5000 3.5 10.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(5000),
                TokenKind::Money(350),
                TokenKind::Money(1025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_after_int_is_field_access_when_not_money() {
        // `1.x` lexes as Int Dot Ident (money needs a digit after '.')
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds(r#""Research" 'Research'"#),
            vec![
                TokenKind::Str("Research".into()),
                TokenKind::Str("Research".into()),
                TokenKind::Eof
            ]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'unterminated\nnext'").is_err());
    }

    #[test]
    fn identifiers_and_underscores() {
        assert_eq!(
            kinds("est_date new_manager _private DEPT"),
            vec![
                TokenKind::Ident("est_date".into()),
                TokenKind::Ident("new_manager".into()),
                TokenKind::Ident("_private".into()),
                TokenKind::Ident("DEPT".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- whole rest ignored ; >> ()\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn error_position() {
        let e = lex("ok\n  §").unwrap_err();
        assert_eq!((e.line, e.column), (2, 3));
        assert!(e.to_string().contains("unexpected character"));
    }

    #[test]
    fn paper_fragment_lexes() {
        let src = r#"
object class DEPT
  identification id: string;
  template
    attributes employees: set(PERSON);
    events birth establishment(date); death closure;
    valuation
      variables P: PERSON;
      [hire(P)] employees = insert(P, employees);
    permissions
      { sometime(after(hire(P))) } fire(P);
end object class DEPT;
"#;
        let toks = lex(src).unwrap();
        assert!(toks.len() > 40);
        assert!(toks.iter().any(|t| t.is_kw("valuation")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::LBracket));
    }
}
