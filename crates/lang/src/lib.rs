//! # troll-lang — the TROLL specification language front-end
//!
//! A lexer, parser and static analyzer for (a normalized form of) the
//! TROLL language of Saake, Jungclaus, Ehrich 1991 and \[JHSS91\],
//! covering **every construct exercised by the paper**:
//!
//! * `object class` / `object` declarations with `identification`,
//!   `data types`, `attributes`, `events` (`birth` / `death` / `active`,
//!   `derived`), `components`, `valuation`, `permissions`,
//!   `constraints`, `derivation rules`, local `interactions`
//!   (event calling `>>`, including transaction calling
//!   `e >> (e1; e2)`), `view of` (specializations and phases) and
//!   `inheriting … as …`;
//! * `interface class` declarations with `encapsulating`,
//!   `selection where`, derived attributes/events, `derivation rules`
//!   and `calling` (projection, derived, selection and join views of
//!   §5.1);
//! * `global interactions` blocks
//!   (`DEPT(D).new_manager(P) >> PERSON(P).become_manager`);
//! * `module` declarations realizing the three-level schema architecture
//!   of §6.
//!
//! Expressions parse directly into [`troll_data::Term`], temporal
//! formulas into [`troll_temporal::Formula`]; the analyzer
//! ([`analyze`]) resolves names and sorts and produces a
//! [`SystemModel`] of lowered, executable class models (with
//! [`troll_kernel::Template`]s) that `troll-runtime` animates.
//!
//! ## Syntax normalizations relative to the paper
//!
//! The paper typesets TROLL with mathematical symbols and a few
//! inconsistencies between examples; we normalize (documented in
//! DESIGN.md): `⇒` is written `=>`, `≥` is `>=`, valuation rules always
//! bracket the event (`[hire(P)] employees = insert(P, employees);`),
//! tuple construction uses named fields, and block terminators are
//! uniform (`end object class DEPT;`).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! object class COUNTER
//!   identification cid: string;
//!   template
//!     attributes value: int;
//!     events
//!       birth create;
//!       step(int);
//!       death discard;
//!     valuation
//!       variables n: int;
//!       [create] value = 0;
//!       [step(n)] value = value + n;
//! end object class COUNTER;
//! "#;
//! let spec = troll_lang::parse(src)?;
//! let model = troll_lang::analyze(&spec)?;
//! assert!(model.class("COUNTER").is_some());
//! # Ok::<(), troll_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod graph;
mod lexer;
mod lower;
mod model;
mod parser;
pub mod pretty;
mod token;

pub use lexer::lex;
pub use lower::analyze;
pub use model::{
    CallRule, ClassModel, ComponentModel, ConstraintKind, ConstraintModel, DerivationModel,
    EventModel, EventTarget, InterfaceModel, LoweredCall, ModuleModel, ParamAttrModel,
    PermissionModel, SystemModel, ValuationModel, ViewKind,
};
pub use parser::{parse, parse_formula, parse_term};
pub use token::{Token, TokenKind};

use std::fmt;

/// Error raised by lexing, parsing or analysis, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    /// Creates an error at a position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        LangError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LangError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LangError>;
