//! Static analysis: name/sort resolution and lowering to [`SystemModel`].

use crate::ast::*;
use crate::model::*;
use crate::{LangError, Result};
use std::collections::BTreeSet;
use troll_data::Term;
use troll_kernel::{AttributeSymbol, Signature, Template};
use troll_process::{EventKind, EventSymbol};
use troll_temporal::Formula;

/// Analyzes a parsed specification and lowers it to a [`SystemModel`].
///
/// Checks performed:
///
/// * unique class/interface names; unique attribute and event names per
///   class;
/// * valuation rules index existing events with the right arity and
///   assign existing, non-derived attributes; derivation rules define
///   existing derived attributes;
/// * permissions guard existing events with the right arity;
/// * calling rules resolve their targets (component aliases, incorporated
///   objects, class instances) and called events with matching arity;
/// * `view of` bases exist, and the view kind
///   (specialization vs phase) is derived from the birth alias;
/// * interface classes encapsulate existing bases; non-derived items
///   exist on a base; derived items have derivation/calling rules;
/// * term scope: free variables of every rule resolve to attributes,
///   rule parameters, identification attributes, component/incorporation
///   aliases, `self`, or quantifier binders;
/// * modules reference existing classes and interfaces.
///
/// # Errors
///
/// Returns the first violation as a [`LangError`] (positions are
/// approximate at the declaration level: analysis errors report line 0).
pub fn analyze(spec: &Spec) -> Result<SystemModel> {
    let mut model = SystemModel::default();

    // pass 0: attribute names per class, so `view of` classes can
    // reference base attributes (MANAGER's constraint on PERSON's
    // Salary) regardless of declaration order
    let mut attr_names: std::collections::BTreeMap<String, BTreeSet<String>> =
        std::collections::BTreeMap::new();
    let mut view_bases: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    for item in &spec.items {
        if let Item::ObjectClass(decl) = item {
            let mut names: BTreeSet<String> =
                decl.identification.iter().map(|p| p.name.clone()).collect();
            names.extend(decl.body.attributes.iter().map(|a| a.name.clone()));
            names.extend(decl.body.components.iter().map(|c| c.name.clone()));
            names.extend(decl.inheriting.iter().map(|i| i.alias.clone()));
            attr_names.insert(decl.name.clone(), names);
            if let Some(base) = &decl.view_of {
                view_bases.insert(decl.name.clone(), base.clone());
            }
        }
    }

    // pass 1: collect names and build class skeletons
    for item in &spec.items {
        match item {
            Item::ObjectClass(decl) => {
                if model.classes.contains_key(&decl.name) {
                    return err(format!("duplicate class `{}`", decl.name));
                }
                // inherited scope: attributes of the (transitive) view bases
                let mut inherited = BTreeSet::new();
                let mut cursor = decl.view_of.clone();
                let mut hops = 0;
                while let Some(base) = cursor {
                    if hops > 32 {
                        return err(format!("class `{}`: cyclic `view of` chain", decl.name));
                    }
                    hops += 1;
                    if let Some(names) = attr_names.get(&base) {
                        inherited.extend(names.iter().cloned());
                    }
                    cursor = view_bases.get(&base).cloned();
                }
                let class = lower_class(decl, &inherited)?;
                model.classes.insert(decl.name.clone(), class);
            }
            Item::InterfaceClass(decl) if model.interfaces.contains_key(&decl.name) => {
                return err(format!("duplicate interface `{}`", decl.name));
            }
            // lowered in pass 2 (needs the class table)
            _ => {}
        }
    }

    // pass 2: cross-reference checks
    let class_names: BTreeSet<String> = model.classes.keys().cloned().collect();
    for item in &spec.items {
        match item {
            Item::ObjectClass(decl) => {
                check_cross_references(decl, &model)?;
                // resolve the view kind now that the base is known
                if let Some(base) = &decl.view_of {
                    let kind = view_kind(decl, base, &model)?;
                    let class = model
                        .classes
                        .get_mut(&decl.name)
                        .expect("inserted in pass 1");
                    class.view = Some((base.clone(), kind));
                }
            }
            Item::InterfaceClass(decl) => {
                let iface = lower_interface(decl, &model)?;
                model.interfaces.insert(decl.name.clone(), iface);
            }
            Item::GlobalInteractions(decl) => {
                for rule in &decl.rules {
                    let lowered = lower_global_rule(rule, &model)?;
                    model.global_interactions.push(lowered);
                }
            }
            Item::Module(decl) => {
                let module = lower_module(decl, &class_names, spec)?;
                model.modules.insert(decl.name.clone(), module);
            }
        }
    }

    Ok(model)
}

fn err<T>(message: String) -> Result<T> {
    Err(LangError::new(0, 0, message))
}

// ----- class lowering ------------------------------------------------

fn lower_class(decl: &ObjectClassDecl, inherited_scope: &BTreeSet<String>) -> Result<ClassModel> {
    let name = &decl.name;
    let mut sig = Signature::new();
    let mut scope: BTreeSet<String> = inherited_scope.clone();
    scope.insert("self".to_string());

    // identification attributes
    for p in &decl.identification {
        if sig.has_attribute(&p.name) {
            return err(format!(
                "class `{name}`: duplicate identification attribute `{}`",
                p.name
            ));
        }
        sig.add_attribute(AttributeSymbol::new(&p.name, p.sort.clone()));
        scope.insert(p.name.clone());
    }

    // declared attributes (parameterized families are not part of the
    // plain signature: they are derived observation families, read via
    // the runtime's attribute_with_args)
    for a in &decl.body.attributes {
        if a.params.is_empty() {
            if sig.has_attribute(&a.name) {
                return err(format!("class `{name}`: duplicate attribute `{}`", a.name));
            }
            let sym = if a.derived {
                AttributeSymbol::derived(&a.name, a.sort.clone())
            } else {
                AttributeSymbol::new(&a.name, a.sort.clone())
            };
            sig.add_attribute(sym);
            scope.insert(a.name.clone());
        }
    }

    // components become attributes holding identities
    for c in &decl.body.components {
        if sig.has_attribute(&c.name) {
            return err(format!(
                "class `{name}`: component `{}` clashes with an attribute",
                c.name
            ));
        }
        let sort = match c.kind {
            ComponentKind::Single => troll_data::Sort::id(&c.class),
            ComponentKind::List => troll_data::Sort::list(troll_data::Sort::id(&c.class)),
            ComponentKind::Set => troll_data::Sort::set(troll_data::Sort::id(&c.class)),
        };
        sig.add_attribute(AttributeSymbol::new(&c.name, sort));
        scope.insert(c.name.clone());
    }

    // incorporated objects: alias attribute of identity sort
    for inh in &decl.inheriting {
        if sig.has_attribute(&inh.alias) {
            return err(format!(
                "class `{name}`: incorporation alias `{}` clashes with an attribute",
                inh.alias
            ));
        }
        sig.add_attribute(AttributeSymbol::new(
            &inh.alias,
            troll_data::Sort::id(&inh.object),
        ));
        scope.insert(inh.alias.clone());
    }

    // events
    let mut event_aliases = Vec::new();
    for e in &decl.body.events {
        if sig.has_event(&e.name) {
            return err(format!("class `{name}`: duplicate event `{}`", e.name));
        }
        let kind = match e.marker {
            EventMarker::Birth => EventKind::Birth,
            EventMarker::Update => EventKind::Update,
            EventMarker::Death => EventKind::Death,
            EventMarker::Active => EventKind::Active,
        };
        sig.add_event(EventSymbol::new(&e.name, e.params.len(), kind));
        if let Some((base, base_event)) = &e.alias_of {
            event_aliases.push((e.name.clone(), base.clone(), base_event.clone()));
        }
    }

    // valuation rules
    let mut valuation = Vec::new();
    for rule in &decl.body.valuation {
        let event = sig.event(&rule.event).ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!(
                    "class `{name}`: valuation rule for unknown event `{}`",
                    rule.event
                ),
            )
        })?;
        if event.arity != rule.params.len() {
            return err(format!(
                "class `{name}`: valuation rule for `{}` binds {} parameter(s), event has {}",
                rule.event,
                rule.params.len(),
                event.arity
            ));
        }
        let attr = sig.attribute(&rule.attribute).ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!(
                    "class `{name}`: valuation rule assigns unknown attribute `{}`",
                    rule.attribute
                ),
            )
        })?;
        if attr.derived {
            return err(format!(
                "class `{name}`: valuation rule assigns derived attribute `{}` (use a derivation rule)",
                rule.attribute
            ));
        }
        let mut rule_scope = scope.clone();
        rule_scope.extend(rule.params.iter().cloned());
        check_term_scope(&rule.value, &rule_scope, name, "valuation rule")?;
        if let Some(g) = &rule.guard {
            check_term_scope(g, &rule_scope, name, "valuation guard")?;
        }
        valuation.push(ValuationModel {
            guard: rule.guard.clone(),
            event: rule.event.clone(),
            params: rule.params.clone(),
            attribute: rule.attribute.clone(),
            value: rule.value.clone(),
        });
    }

    // parameterized attribute families
    let mut param_attributes = Vec::new();
    for a in &decl.body.attributes {
        if a.params.is_empty() {
            continue;
        }
        let rule = decl
            .body
            .derivation_rules
            .iter()
            .find(|d| d.attribute == a.name)
            .ok_or_else(|| {
                LangError::new(
                    0,
                    0,
                    format!(
                        "class `{name}`: parameterized attribute `{}` has no derivation rule",
                        a.name
                    ),
                )
            })?;
        if rule.params.len() != a.params.len() {
            return err(format!(
                "class `{name}`: derivation rule for `{}` binds {} parameter(s), attribute has {}",
                a.name,
                rule.params.len(),
                a.params.len()
            ));
        }
        let mut rule_scope = scope.clone();
        rule_scope.extend(rule.params.iter().cloned());
        check_term_scope(&rule.value, &rule_scope, name, "parameterized derivation")?;
        param_attributes.push(ParamAttrModel {
            name: a.name.clone(),
            params: a.params.clone(),
            sort: a.sort.clone(),
            binders: rule.params.clone(),
            value: rule.value.clone(),
        });
    }

    // derivation rules (plain derived attributes)
    let mut derivation = Vec::new();
    for rule in &decl.body.derivation_rules {
        if param_attributes.iter().any(|p| p.name == rule.attribute) {
            continue; // handled above
        }
        if !rule.params.is_empty() {
            return err(format!(
                "class `{name}`: derivation rule for `{}` binds parameters, but the attribute is not parameterized",
                rule.attribute
            ));
        }
        let attr = sig.attribute(&rule.attribute).ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!(
                    "class `{name}`: derivation rule for unknown attribute `{}`",
                    rule.attribute
                ),
            )
        })?;
        if !attr.derived {
            return err(format!(
                "class `{name}`: derivation rule for non-derived attribute `{}`",
                rule.attribute
            ));
        }
        check_term_scope(&rule.value, &scope, name, "derivation rule")?;
        derivation.push(DerivationModel {
            attribute: rule.attribute.clone(),
            value: rule.value.clone(),
        });
    }
    for a in &decl.body.attributes {
        if a.derived && a.params.is_empty() && !derivation.iter().any(|d| d.attribute == a.name) {
            return err(format!(
                "class `{name}`: derived attribute `{}` has no derivation rule",
                a.name
            ));
        }
    }

    // permissions
    let mut permissions = Vec::new();
    for p in &decl.body.permissions {
        let event = sig.event(&p.event).ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!("class `{name}`: permission for unknown event `{}`", p.event),
            )
        })?;
        if !p.params.is_empty() && event.arity != p.params.len() {
            return err(format!(
                "class `{name}`: permission for `{}` binds {} parameter(s), event has {}",
                p.event,
                p.params.len(),
                event.arity
            ));
        }
        let mut f_scope = scope.clone();
        f_scope.extend(p.params.iter().cloned());
        check_formula_scope(&p.formula, &f_scope, name, "permission")?;
        permissions.push(PermissionModel {
            event: p.event.clone(),
            params: p.params.clone(),
            formula: p.formula.clone(),
        });
    }

    // obligations: future-directed formulas, checked over completed traces
    let mut obligations = Vec::new();
    for o in &decl.body.obligations {
        check_formula_scope(o, &scope, name, "obligation")?;
        obligations.push(o.clone());
    }

    // constraints
    let mut constraints = Vec::new();
    for c in &decl.body.constraints {
        check_formula_scope(&c.formula, &scope, name, "constraint")?;
        constraints.push(ConstraintModel {
            kind: match c.kind {
                ConstraintKindAst::Static => ConstraintKind::Static,
                ConstraintKindAst::Dynamic => ConstraintKind::Dynamic,
                ConstraintKindAst::Initially => ConstraintKind::Initially,
            },
            formula: c.formula.clone(),
        });
    }

    // local calling rules (cross-class parts validated in pass 2)
    let mut interactions = Vec::new();
    for rule in &decl.body.interactions {
        let trigger_event = match &rule.trigger.target {
            TargetRef::Local => rule.trigger.event.clone(),
            other => {
                return err(format!(
                    "class `{name}`: interaction trigger must be a local event, found {other:?}"
                ))
            }
        };
        let event = sig.event(&trigger_event).ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!("class `{name}`: interaction trigger `{trigger_event}` is not an event"),
            )
        })?;
        let mut trigger_params = Vec::new();
        for arg in &rule.trigger.args {
            match arg {
                Term::Var(v) => trigger_params.push(v.clone()),
                other => {
                    return err(format!(
                        "class `{name}`: interaction trigger arguments must be variables, found `{other}`"
                    ))
                }
            }
        }
        if !trigger_params.is_empty() && trigger_params.len() != event.arity {
            return err(format!(
                "class `{name}`: interaction trigger `{trigger_event}` binds {} parameter(s), event has {}",
                trigger_params.len(),
                event.arity
            ));
        }
        let mut rule_scope = scope.clone();
        rule_scope.extend(trigger_params.iter().cloned());
        let mut calls = Vec::new();
        for call in &rule.calls {
            for arg in &call.args {
                check_term_scope(arg, &rule_scope, name, "interaction argument")?;
            }
            let target = match &call.target {
                TargetRef::Local => EventTarget::Local,
                TargetRef::Component(alias) => EventTarget::Component(alias.clone()),
                TargetRef::Instance { class, id } => {
                    check_term_scope(id, &rule_scope, name, "interaction instance id")?;
                    EventTarget::Instance {
                        class: class.clone(),
                        id: id.clone(),
                    }
                }
            };
            calls.push(LoweredCall {
                target,
                event: call.event.clone(),
                args: call.args.clone(),
            });
        }
        interactions.push(CallRule {
            trigger_target: EventTarget::Local,
            trigger_event,
            trigger_params,
            calls,
        });
    }

    let template = Template::new(name.clone(), sig);
    Ok(ClassModel {
        name: name.clone(),
        singleton: decl.singleton,
        identification: decl
            .identification
            .iter()
            .map(|p| (p.name.clone(), p.sort.clone()))
            .collect(),
        template,
        view: None, // filled in pass 2
        inheriting: decl
            .inheriting
            .iter()
            .map(|i| (i.object.clone(), i.alias.clone()))
            .collect(),
        components: decl
            .body
            .components
            .iter()
            .map(|c| ComponentModel {
                name: c.name.clone(),
                kind: c.kind,
                class: c.class.clone(),
            })
            .collect(),
        valuation,
        derivation,
        permissions,
        constraints,
        interactions,
        event_aliases,
        obligations,
        param_attributes,
    })
}

fn view_kind(decl: &ObjectClassDecl, base: &str, model: &SystemModel) -> Result<ViewKind> {
    let base_class = model.classes.get(base).ok_or_else(|| {
        LangError::new(
            0,
            0,
            format!("class `{}`: view of unknown class `{base}`", decl.name),
        )
    })?;
    // A phase is entered by a base *update* event aliased as the view's
    // birth (MANAGER: birth PERSON.become_manager). A specialization has
    // no such alias, or aliases a base birth event.
    for e in &decl.body.events {
        if e.marker == EventMarker::Birth {
            if let Some((alias_base, base_event)) = &e.alias_of {
                if alias_base != base {
                    return err(format!(
                        "class `{}`: birth alias refers to `{alias_base}`, but the view base is `{base}`",
                        decl.name
                    ));
                }
                let kind = base_class
                    .template
                    .signature()
                    .events()
                    .kind_of(base_event)
                    .ok_or_else(|| {
                        LangError::new(
                            0,
                            0,
                            format!(
                                "class `{}`: birth alias `{base_event}` is not an event of `{base}`",
                                decl.name
                            ),
                        )
                    })?;
                return Ok(if kind == EventKind::Birth {
                    ViewKind::Specialization
                } else {
                    ViewKind::Phase
                });
            }
        }
    }
    Ok(ViewKind::Specialization)
}

fn check_cross_references(decl: &ObjectClassDecl, model: &SystemModel) -> Result<()> {
    let name = &decl.name;
    // event aliases must match the base event's arity: the aliased
    // occurrence receives the base event's actual arguments
    for e in &decl.body.events {
        if let Some((base, base_event)) = &e.alias_of {
            let base_class = model.classes.get(base).ok_or_else(|| {
                LangError::new(
                    0,
                    0,
                    format!("class `{name}`: event alias refers to unknown class `{base}`"),
                )
            })?;
            let bev = base_class
                .template
                .signature()
                .event(base_event)
                .ok_or_else(|| {
                    LangError::new(
                        0,
                        0,
                        format!("class `{name}`: event alias `{base}.{base_event}` does not exist"),
                    )
                })?;
            if bev.arity != e.params.len() {
                return err(format!(
                    "class `{name}`: aliased event `{}` declares {} parameter(s), base event `{base}.{base_event}` has {}",
                    e.name,
                    e.params.len(),
                    bev.arity
                ));
            }
        }
    }
    for c in &decl.body.components {
        if !model.classes.contains_key(&c.class) {
            return err(format!(
                "class `{name}`: component `{}` has unknown class `{}`",
                c.name, c.class
            ));
        }
    }
    for inh in &decl.inheriting {
        if !model.classes.contains_key(&inh.object) {
            return err(format!(
                "class `{name}`: inheriting unknown object `{}`",
                inh.object
            ));
        }
    }
    // called events must exist on their targets
    let class = model.classes.get(name).expect("class inserted in pass 1");
    for rule in &class.interactions {
        for call in &rule.calls {
            let (target_class, label) = match &call.target {
                EventTarget::Local => (name.clone(), "local".to_string()),
                EventTarget::Component(alias) => {
                    let target = class
                        .inheriting
                        .iter()
                        .find(|(_, a)| a == alias)
                        .map(|(obj, _)| obj.clone())
                        .or_else(|| {
                            class
                                .components
                                .iter()
                                .find(|c| &c.name == alias)
                                .map(|c| c.class.clone())
                        });
                    match target {
                        Some(t) => (t, format!("component `{alias}`")),
                        None => {
                            return err(format!(
                                "class `{name}`: calling rule targets unknown component `{alias}`"
                            ))
                        }
                    }
                }
                EventTarget::Instance { class: c, .. } => (c.clone(), format!("class `{c}`")),
            };
            let target_model = model.classes.get(&target_class).ok_or_else(|| {
                LangError::new(
                    0,
                    0,
                    format!("class `{name}`: calling rule targets unknown class `{target_class}`"),
                )
            })?;
            let ev = target_model
                .template
                .signature()
                .event(&call.event)
                .ok_or_else(|| {
                    LangError::new(
                        0,
                        0,
                        format!(
                            "class `{name}`: calling rule invokes unknown event `{}` on {label}",
                            call.event
                        ),
                    )
                })?;
            if ev.arity != call.args.len() {
                return err(format!(
                    "class `{name}`: call to `{}` passes {} argument(s), event has {}",
                    call.event,
                    call.args.len(),
                    ev.arity
                ));
            }
        }
    }
    Ok(())
}

// ----- interfaces ------------------------------------------------------

fn lower_interface(decl: &InterfaceClassDecl, model: &SystemModel) -> Result<InterfaceModel> {
    let name = &decl.name;
    let mut bases = Vec::new();
    for b in &decl.encapsulating {
        if !model.classes.contains_key(&b.class) {
            return err(format!(
                "interface `{name}`: encapsulating unknown class `{}`",
                b.class
            ));
        }
        bases.push((b.class.clone(), b.var.clone()));
    }
    if bases.is_empty() {
        return err(format!("interface `{name}`: no encapsulated base"));
    }

    let mut scope: BTreeSet<String> = bases.iter().map(|(_, v)| v.clone()).collect();
    scope.insert("self".to_string());
    // selection predicates and derivation rules may reference base
    // attributes unqualified (the paper's RESEARCH_EMPLOYEE selects on
    // `Dept`, SAL_EMPLOYEE2 derives from `Salary`)
    for (class, _) in &bases {
        for attr in model.classes[class.as_str()]
            .template
            .signature()
            .attributes()
        {
            scope.insert(attr.name.clone());
        }
    }

    // attributes
    let mut attributes = Vec::new();
    for a in &decl.attributes {
        if !a.derived {
            // must exist on exactly one base
            let owners: Vec<&String> = bases
                .iter()
                .map(|(c, _)| c)
                .filter(|c| {
                    model.classes[c.as_str()]
                        .template
                        .signature()
                        .has_attribute(&a.name)
                })
                .collect();
            match owners.len() {
                0 => {
                    return err(format!(
                        "interface `{name}`: attribute `{}` not found on any base",
                        a.name
                    ))
                }
                1 => {}
                _ => {
                    return err(format!(
                        "interface `{name}`: attribute `{}` is ambiguous between bases",
                        a.name
                    ))
                }
            }
        } else if !decl.derivation_rules.iter().any(|d| d.attribute == a.name) {
            return err(format!(
                "interface `{name}`: derived attribute `{}` has no derivation rule",
                a.name
            ));
        }
        attributes.push((a.name.clone(), a.sort.clone(), a.derived));
        scope.insert(a.name.clone());
    }

    // events
    let mut events = Vec::new();
    for e in &decl.events {
        if !e.derived {
            let owners: Vec<&String> = bases
                .iter()
                .map(|(c, _)| c)
                .filter(|c| {
                    model.classes[c.as_str()]
                        .template
                        .signature()
                        .has_event(&e.name)
                })
                .collect();
            if owners.is_empty() {
                return err(format!(
                    "interface `{name}`: event `{}` not found on any base",
                    e.name
                ));
            }
        } else if !decl.calling.iter().any(|c| c.trigger.event == e.name) {
            return err(format!(
                "interface `{name}`: derived event `{}` has no calling rule",
                e.name
            ));
        }
        events.push(EventModel {
            name: e.name.clone(),
            params: e.params.clone(),
            kind: EventKind::Update,
            derived: e.derived,
        });
    }

    if let Some(sel) = &decl.selection {
        check_term_scope(sel, &scope, name, "selection predicate")?;
    }
    let mut derivation = Vec::new();
    for d in &decl.derivation_rules {
        if !d.params.is_empty() {
            return err(format!(
                "interface `{name}`: parameterized derivation rules are not supported on interfaces"
            ));
        }
        check_term_scope(&d.value, &scope, name, "derivation rule")?;
        derivation.push(DerivationModel {
            attribute: d.attribute.clone(),
            value: d.value.clone(),
        });
    }

    let mut calling = Vec::new();
    for rule in &decl.calling {
        let mut calls = Vec::new();
        for call in &rule.calls {
            let target = match &call.target {
                TargetRef::Local => EventTarget::Local,
                TargetRef::Component(alias) => EventTarget::Component(alias.clone()),
                TargetRef::Instance { class, id } => EventTarget::Instance {
                    class: class.clone(),
                    id: id.clone(),
                },
            };
            // a Local call from an interface goes to the encapsulated base
            if target == EventTarget::Local {
                let found = bases.iter().any(|(c, _)| {
                    model.classes[c.as_str()]
                        .template
                        .signature()
                        .has_event(&call.event)
                });
                if !found {
                    return err(format!(
                        "interface `{name}`: calling rule invokes unknown base event `{}`",
                        call.event
                    ));
                }
            }
            calls.push(LoweredCall {
                target,
                event: call.event.clone(),
                args: call.args.clone(),
            });
        }
        calling.push(CallRule {
            trigger_target: EventTarget::Local,
            trigger_event: rule.trigger.event.clone(),
            trigger_params: rule
                .trigger
                .args
                .iter()
                .filter_map(|a| match a {
                    Term::Var(v) => Some(v.clone()),
                    _ => None,
                })
                .collect(),
            calls,
        });
    }

    Ok(InterfaceModel {
        name: name.clone(),
        bases,
        selection: decl.selection.clone(),
        attributes,
        events,
        derivation,
        calling,
    })
}

// ----- global interactions ---------------------------------------------

fn lower_global_rule(rule: &CallingRule, model: &SystemModel) -> Result<CallRule> {
    let (class, id) = match &rule.trigger.target {
        TargetRef::Instance { class, id } => (class.clone(), id.clone()),
        other => {
            return err(format!(
                "global interaction trigger must be CLASS(id).event, found {other:?}"
            ))
        }
    };
    let trigger_class = model.classes.get(&class).ok_or_else(|| {
        LangError::new(
            0,
            0,
            format!("global interaction on unknown class `{class}`"),
        )
    })?;
    let ev = trigger_class
        .template
        .signature()
        .event(&rule.trigger.event)
        .ok_or_else(|| {
            LangError::new(
                0,
                0,
                format!(
                    "global interaction trigger `{}` is not an event of `{class}`",
                    rule.trigger.event
                ),
            )
        })?;
    let mut trigger_params = Vec::new();
    for arg in &rule.trigger.args {
        match arg {
            Term::Var(v) => trigger_params.push(v.clone()),
            other => {
                return err(format!(
                    "global interaction trigger arguments must be variables, found `{other}`"
                ))
            }
        }
    }
    if trigger_params.len() != ev.arity {
        return err(format!(
            "global interaction trigger `{}` binds {} parameter(s), event has {}",
            rule.trigger.event,
            trigger_params.len(),
            ev.arity
        ));
    }
    let mut calls = Vec::new();
    for call in &rule.calls {
        let target = match &call.target {
            TargetRef::Instance { class, id } => {
                let callee = model.classes.get(class).ok_or_else(|| {
                    LangError::new(
                        0,
                        0,
                        format!("global interaction calls unknown class `{class}`"),
                    )
                })?;
                let cev = callee
                    .template
                    .signature()
                    .event(&call.event)
                    .ok_or_else(|| {
                        LangError::new(
                            0,
                            0,
                            format!(
                                "global interaction calls unknown event `{}` on `{class}`",
                                call.event
                            ),
                        )
                    })?;
                if cev.arity != call.args.len() {
                    return err(format!(
                        "global interaction call to `{}` passes {} argument(s), event has {}",
                        call.event,
                        call.args.len(),
                        cev.arity
                    ));
                }
                EventTarget::Instance {
                    class: class.clone(),
                    id: id.clone(),
                }
            }
            other => {
                return err(format!(
                    "global interaction calls must be CLASS(id).event, found {other:?}"
                ))
            }
        };
        calls.push(LoweredCall {
            target,
            event: call.event.clone(),
            args: call.args.clone(),
        });
    }
    Ok(CallRule {
        trigger_target: EventTarget::Instance { class, id },
        trigger_event: rule.trigger.event.clone(),
        trigger_params,
        calls,
    })
}

// ----- modules -----------------------------------------------------------

fn lower_module(
    decl: &ModuleDecl,
    class_names: &BTreeSet<String>,
    spec: &Spec,
) -> Result<ModuleModel> {
    for c in decl.conceptual.iter().chain(&decl.internal) {
        if !class_names.contains(c) {
            return err(format!(
                "module `{}`: unknown class `{c}` in schema",
                decl.name
            ));
        }
    }
    for (schema, members) in &decl.external {
        for m in members {
            if spec.interface_class(m).is_none() {
                return err(format!(
                    "module `{}`: external schema `{schema}` lists unknown interface `{m}`",
                    decl.name
                ));
            }
        }
    }
    Ok(ModuleModel {
        name: decl.name.clone(),
        conceptual: decl.conceptual.clone(),
        internal: decl.internal.clone(),
        external: decl.external.clone(),
        imports: decl.imports.clone(),
    })
}

// ----- scope checking ----------------------------------------------------

/// Checks that the free variables of a term resolve in `scope`.
/// Selection predicates (`select|p|(rel)`) are skipped: their variables
/// include the relation's tuple fields, which are not statically known.
fn check_term_scope(
    term: &Term,
    scope: &BTreeSet<String>,
    class: &str,
    context: &str,
) -> Result<()> {
    let mut bound: Vec<String> = Vec::new();
    check_term_scope_inner(term, scope, &mut bound, class, context)
}

fn check_term_scope_inner(
    term: &Term,
    scope: &BTreeSet<String>,
    bound: &mut Vec<String>,
    class: &str,
    context: &str,
) -> Result<()> {
    match term {
        Term::Const(_) => Ok(()),
        Term::Var(v) => {
            if scope.contains(v) || bound.iter().any(|b| b == v) || v.starts_with("population(") {
                Ok(())
            } else {
                err(format!(
                    "class `{class}`: unknown variable `{v}` in {context}"
                ))
            }
        }
        Term::Apply(_, args) => {
            for a in args {
                check_term_scope_inner(a, scope, bound, class, context)?;
            }
            Ok(())
        }
        Term::Field(base, _) => check_term_scope_inner(base, scope, bound, class, context),
        Term::MkTuple(fields) => {
            for (_, t) in fields {
                check_term_scope_inner(t, scope, bound, class, context)?;
            }
            Ok(())
        }
        Term::MkSet(elems) | Term::MkList(elems) => {
            for t in elems {
                check_term_scope_inner(t, scope, bound, class, context)?;
            }
            Ok(())
        }
        Term::IfThenElse(c, a, b) => {
            check_term_scope_inner(c, scope, bound, class, context)?;
            check_term_scope_inner(a, scope, bound, class, context)?;
            check_term_scope_inner(b, scope, bound, class, context)
        }
        Term::Quant {
            var, domain, body, ..
        } => {
            check_term_scope_inner(domain, scope, bound, class, context)?;
            bound.push(var.clone());
            let r = check_term_scope_inner(body, scope, bound, class, context);
            bound.pop();
            r
        }
        Term::Let { var, value, body } => {
            check_term_scope_inner(value, scope, bound, class, context)?;
            bound.push(var.clone());
            let r = check_term_scope_inner(body, scope, bound, class, context);
            bound.pop();
            r
        }
        Term::Select { rel, .. } => {
            // predicate skipped: tuple fields not statically known
            check_term_scope_inner(rel, scope, bound, class, context)
        }
        Term::Project { rel, .. } | Term::The(rel) => {
            check_term_scope_inner(rel, scope, bound, class, context)
        }
    }
}

fn check_formula_scope(
    formula: &Formula,
    scope: &BTreeSet<String>,
    class: &str,
    context: &str,
) -> Result<()> {
    match formula {
        Formula::Pred(t) => check_term_scope(t, scope, class, context),
        Formula::Occurs(p) | Formula::After(p) => {
            for arg in p.args.iter().flatten() {
                check_term_scope(arg, scope, class, context)?;
            }
            Ok(())
        }
        Formula::Not(f)
        | Formula::Sometime(f)
        | Formula::AlwaysPast(f)
        | Formula::Previous(f)
        | Formula::Eventually(f)
        | Formula::Henceforth(f) => check_formula_scope(f, scope, class, context),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Since(a, b) => {
            check_formula_scope(a, scope, class, context)?;
            check_formula_scope(b, scope, class, context)
        }
        Formula::Quant {
            var, domain, body, ..
        } => {
            check_term_scope(domain, scope, class, context)?;
            let mut inner = scope.clone();
            inner.insert(var.clone());
            check_formula_scope(body, &inner, class, context)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn analyze_src(src: &str) -> crate::Result<SystemModel> {
        analyze(&parse(src)?)
    }

    const DEPT: &str = r#"
object class DEPT
  identification id: string;
  template
    attributes
      est_date: date;
      manager: |PERSON|;
      employees: set(|PERSON|);
    events
      birth establishment(date);
      death closure;
      new_manager(|PERSON|);
      hire(|PERSON|);
      fire(|PERSON|);
    valuation
      variables P: |PERSON|; d: date;
      [establishment(d)] est_date = d;
      [new_manager(P)] manager = P;
      [hire(P)] employees = insert(P, employees);
      [fire(P)] employees = remove(P, employees);
    permissions
      variables P: |PERSON|;
      { sometime(after(hire(P))) } fire(P);
      { for all(P: PERSON : sometime(P in employees) => sometime(after(fire(P)))) } closure;
end object class DEPT;
"#;

    #[test]
    fn dept_analyzes() {
        let model = analyze_src(DEPT).unwrap();
        let dept = model.class("DEPT").unwrap();
        assert_eq!(dept.valuation.len(), 4);
        assert_eq!(dept.permissions.len(), 2);
        assert!(dept.template.signature().has_attribute("id"));
        assert!(dept.template.signature().has_event("hire"));
        assert_eq!(
            dept.template.signature().events().kind_of("closure"),
            Some(EventKind::Death)
        );
        assert_eq!(dept.valuation_for("hire").count(), 1);
        assert_eq!(dept.permissions_for("fire").count(), 1);
        assert_eq!(dept.permissions_for("hire").count(), 0);
    }

    #[test]
    fn duplicate_class_rejected() {
        let src = format!("{DEPT}{DEPT}");
        let e = analyze_src(&src).unwrap_err();
        assert!(e.to_string().contains("duplicate class"));
    }

    #[test]
    fn unknown_variable_in_valuation_rejected() {
        let src = r#"
object class C
  template
    attributes x: int;
    events birth b; bump(int);
    valuation
      variables n: int;
      [bump(n)] x = x + stranger;
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("unknown variable `stranger`"), "{e}");
    }

    #[test]
    fn arity_mismatches_rejected() {
        let src = r#"
object class C
  template
    attributes x: int;
    events birth b; bump(int);
    valuation
      [bump] x = 0;
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("binds 0 parameter"), "{e}");
        let src = r#"
object class C
  template
    events birth b; e(int);
    permissions
      variables n: int; m: int;
      { true } e(n, m);
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("permission"), "{e}");
    }

    #[test]
    fn derived_attribute_rules_enforced() {
        // derived without rule
        let src = r#"
object class C
  template
    attributes derived d: int;
    events birth b;
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("no derivation rule"), "{e}");
        // valuation assigning derived
        let src = r#"
object class C
  template
    attributes derived d: int;
    events birth b;
    valuation
      [b] d = 1;
    derivation rules
      d = 2;
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("derived attribute"), "{e}");
        // derivation for non-derived
        let src = r#"
object class C
  template
    attributes s: int;
    events birth b;
    derivation rules
      s = 2;
end object class C;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("non-derived"), "{e}");
    }

    #[test]
    fn view_kinds_resolved() {
        let src = r#"
object class PERSON
  identification name: string;
  template
    events birth create; become_manager; death die;
end object class PERSON;

object class MANAGER
  view of PERSON;
  template
    events birth PERSON.become_manager;
end object class MANAGER;

object class WOMAN
  view of PERSON;
  template
    events birth PERSON.create;
end object class WOMAN;
"#;
        let model = analyze_src(src).unwrap();
        assert_eq!(
            model.class("MANAGER").unwrap().view,
            Some(("PERSON".to_string(), ViewKind::Phase))
        );
        assert_eq!(
            model.class("WOMAN").unwrap().view,
            Some(("PERSON".to_string(), ViewKind::Specialization))
        );
    }

    #[test]
    fn view_of_unknown_base_rejected() {
        let src = r#"
object class MANAGER
  view of GHOST;
  template
    events birth b;
end object class MANAGER;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("unknown class `GHOST`"), "{e}");
    }

    #[test]
    fn component_and_inheriting_validation() {
        let src = r#"
object TheCompany
  template
    components depts: LIST(GHOST);
end object TheCompany;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("unknown class `GHOST`"), "{e}");

        let src = r#"
object class IMPL
  template
    inheriting ghost_rel as base;
    events birth b;
end object class IMPL;
"#;
        let e = analyze_src(src).unwrap_err();
        assert!(e.to_string().contains("inheriting unknown object"), "{e}");
    }

    #[test]
    fn calling_rules_resolved() {
        let src = r#"
object base_obj
  template
    attributes n: int;
    events birth init; poke(int);
    valuation
      variables k: int;
      [init] n = 0;
      [poke(k)] n = n + k;
end object base_obj;

object class FRONT
  template
    inheriting base_obj as base;
    events birth start; push(int);
    interaction
      variables m: int;
      push(m) >> base.poke(m);
end object class FRONT;
"#;
        let model = analyze_src(src).unwrap();
        let front = model.class("FRONT").unwrap();
        assert_eq!(front.interactions.len(), 1);
        assert_eq!(
            front.interactions[0].calls[0].target,
            EventTarget::Component("base".to_string())
        );
        // unknown callee event rejected
        let bad = src.replace("base.poke(m)", "base.zap(m)");
        let e = analyze_src(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown event `zap`"), "{e}");
        // wrong arity rejected
        let bad = src.replace("base.poke(m)", "base.poke(m, m)");
        let e = analyze_src(&bad).unwrap_err();
        assert!(e.to_string().contains("passes 2 argument"), "{e}");
    }

    #[test]
    fn global_interactions_resolved() {
        let src = r#"
object class PERSON
  identification name: string;
  template
    events birth create; become_manager;
end object class PERSON;

object class DEPT
  identification id: string;
  template
    attributes manager: |PERSON|;
    events birth establishment; new_manager(|PERSON|);
    valuation
      variables P: |PERSON|;
      [new_manager(P)] manager = P;
end object class DEPT;

global interactions
  variables P: |PERSON|; D: |DEPT|;
  DEPT(D).new_manager(P) >> PERSON(P).become_manager;
end global interactions;
"#;
        let model = analyze_src(src).unwrap();
        assert_eq!(model.global_interactions.len(), 1);
        let rule = &model.global_interactions[0];
        assert_eq!(rule.trigger_event, "new_manager");
        assert_eq!(rule.trigger_params, vec!["P".to_string()]);
        // unknown event rejected
        let bad = src.replace("PERSON(P).become_manager", "PERSON(P).vanish");
        assert!(analyze_src(&bad).is_err());
    }

    #[test]
    fn interface_checks() {
        let base = r#"
object class PERSON
  identification name: string;
  template
    attributes Salary: money; Dept: string;
    events birth create; ChangeSalary(money);
end object class PERSON;
"#;
        let good = format!(
            "{base}
interface class SAL
  encapsulating PERSON
  attributes
    name: string;
    derived Income: money;
    Salary: money;
  events
    ChangeSalary(money);
    derived IncreaseSalary;
  derivation rules
    Income = Salary * 13.5;
  calling
    IncreaseSalary >> ChangeSalary(Salary * 1.1);
end interface class SAL;
"
        );
        let model = analyze_src(&good).unwrap();
        let sal = model.interface("SAL").unwrap();
        assert!(!sal.is_join());
        assert_eq!(sal.attributes.len(), 3);
        assert_eq!(sal.calling.len(), 1);

        let bad = format!(
            "{base}
interface class SAL
  encapsulating PERSON
  attributes ghost: int;
end interface class SAL;
"
        );
        let e = analyze_src(&bad).unwrap_err();
        assert!(e.to_string().contains("not found on any base"), "{e}");

        let bad = format!(
            "{base}
interface class SAL
  encapsulating GHOST
  attributes Salary: money;
end interface class SAL;
"
        );
        let e = analyze_src(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown class `GHOST`"), "{e}");
    }

    #[test]
    fn module_checks() {
        let src = r#"
object class PERSON
  identification name: string;
  template
    attributes Salary: money;
    events birth create;
end object class PERSON;

interface class SAL
  encapsulating PERSON
  attributes Salary: money;
end interface class SAL;

module M
  conceptual schema PERSON;
  external schema S = SAL;
end module M;
"#;
        let model = analyze_src(src).unwrap();
        assert_eq!(model.modules["M"].conceptual, vec!["PERSON"]);
        let bad = src.replace("conceptual schema PERSON;", "conceptual schema GHOST;");
        assert!(analyze_src(&bad).is_err());
        let bad = src.replace("external schema S = SAL;", "external schema S = GHOST;");
        assert!(analyze_src(&bad).is_err());
    }
}

#[cfg(test)]
mod alias_validation_tests {
    use crate::{analyze, parse};

    #[test]
    fn alias_arity_and_targets_validated() {
        let base = r#"
object class PERSON
  identification name: string;
  template
    events birth create(int); promote;
end object class PERSON;
"#;
        // wrong arity on aliased birth
        let bad = format!(
            "{base}
object class V
  view of PERSON;
  template
    events birth PERSON.create;
end object class V;"
        );
        let e = analyze(&parse(&bad).unwrap()).unwrap_err();
        assert!(e.to_string().contains("declares 0 parameter"), "{e}");

        // alias to unknown base event
        let bad = format!(
            "{base}
object class V
  view of PERSON;
  template
    events birth PERSON.vanish;
end object class V;"
        );
        let e = analyze(&parse(&bad).unwrap()).unwrap_err();
        assert!(e.to_string().contains("does not exist"), "{e}");

        // alias to unknown class
        let bad = format!(
            "{base}
object class V
  view of PERSON;
  template
    events birth GHOST.create(int);
end object class V;"
        );
        let e = analyze(&parse(&bad).unwrap()).unwrap_err();
        assert!(e.to_string().contains("unknown class"), "{e}");
    }
}
