//! Lowered, analysis-checked system models.
//!
//! [`crate::analyze`] turns a parsed [`crate::ast::Spec`] into a
//! [`SystemModel`]: name-resolved, sort-checked class models with
//! [`troll_kernel::Template`]s, ready for the runtime to animate.

use crate::ast::ComponentKind;
use std::collections::BTreeMap;
use troll_data::{Sort, Term};
use troll_kernel::Template;
use troll_process::EventKind;
use troll_temporal::Formula;

/// A fully analyzed specification.
#[derive(Debug, Clone, Default)]
pub struct SystemModel {
    /// Object classes (and singleton objects) by name.
    pub classes: BTreeMap<String, ClassModel>,
    /// Interface classes by name.
    pub interfaces: BTreeMap<String, InterfaceModel>,
    /// Global interaction rules.
    pub global_interactions: Vec<CallRule>,
    /// Modules by name.
    pub modules: BTreeMap<String, ModuleModel>,
}

impl SystemModel {
    /// Looks up a class model.
    pub fn class(&self, name: &str) -> Option<&ClassModel> {
        self.classes.get(name)
    }

    /// Looks up an interface model.
    pub fn interface(&self, name: &str) -> Option<&InterfaceModel> {
        self.interfaces.get(name)
    }
}

/// How a `view of` class relates to its base (§4): a **specialization**
/// is born with the base object and holds for its entire life (woman as
/// specialization of person); a **phase** is entered by a base event
/// during the object's life (manager as a phase of person, entered by
/// `become_manager`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Static specialization.
    Specialization,
    /// Dynamic role/phase.
    Phase,
}

/// A lowered object class.
#[derive(Debug, Clone)]
pub struct ClassModel {
    /// Class name.
    pub name: String,
    /// Whether declared as a single `object`.
    pub singleton: bool,
    /// Identification (key) attributes.
    pub identification: Vec<(String, Sort)>,
    /// The kernel template (signature + free behaviour).
    pub template: Template,
    /// `view of` base with the derived kind, if any.
    pub view: Option<(String, ViewKind)>,
    /// Incorporated base objects `(object class, alias)` (§5.2).
    pub inheriting: Vec<(String, String)>,
    /// Components of a complex object.
    pub components: Vec<ComponentModel>,
    /// Valuation rules.
    pub valuation: Vec<ValuationModel>,
    /// Derivation rules for derived attributes.
    pub derivation: Vec<DerivationModel>,
    /// Permissions.
    pub permissions: Vec<PermissionModel>,
    /// Constraints.
    pub constraints: Vec<ConstraintModel>,
    /// Local event-calling rules.
    pub interactions: Vec<CallRule>,
    /// Event aliases: `(local event, base class, base event)`.
    pub event_aliases: Vec<(String, String, String)>,
    /// Liveness obligations, checked over completed traces.
    pub obligations: Vec<Formula>,
    /// Parameterized derived attributes.
    pub param_attributes: Vec<ParamAttrModel>,
}

impl ClassModel {
    /// The valuation rules indexed by the given event.
    pub fn valuation_for<'a>(
        &'a self,
        event: &'a str,
    ) -> impl Iterator<Item = &'a ValuationModel> + 'a {
        self.valuation.iter().filter(move |v| v.event == event)
    }

    /// The permissions guarding the given event.
    pub fn permissions_for<'a>(
        &'a self,
        event: &'a str,
    ) -> impl Iterator<Item = &'a PermissionModel> + 'a {
        self.permissions.iter().filter(move |p| p.event == event)
    }
}

/// A component of a complex object.
#[derive(Debug, Clone)]
pub struct ComponentModel {
    /// Component name.
    pub name: String,
    /// Multiplicity.
    pub kind: ComponentKind,
    /// Component class.
    pub class: String,
}

/// A lowered valuation rule.
#[derive(Debug, Clone)]
pub struct ValuationModel {
    /// Optional guard (pre-state predicate).
    pub guard: Option<Term>,
    /// Event name.
    pub event: String,
    /// Parameter binder names.
    pub params: Vec<String>,
    /// Assigned attribute.
    pub attribute: String,
    /// New-value term over the pre-state.
    pub value: Term,
}

/// A lowered derivation rule.
#[derive(Debug, Clone)]
pub struct DerivationModel {
    /// Derived attribute.
    pub attribute: String,
    /// Defining term.
    pub value: Term,
}

/// A lowered **parameterized attribute** — the paper's
/// `IncomeInYear(integer): money`: a family of derived observations
/// indexed by data arguments, read via
/// `ObjectBase::attribute_with_args`.
#[derive(Debug, Clone)]
pub struct ParamAttrModel {
    /// Attribute family name.
    pub name: String,
    /// Parameter sorts.
    pub params: Vec<Sort>,
    /// Observation sort.
    pub sort: Sort,
    /// Binder names of the derivation rule.
    pub binders: Vec<String>,
    /// Defining term (over the binders and the object's state).
    pub value: Term,
}

/// A lowered permission.
#[derive(Debug, Clone)]
pub struct PermissionModel {
    /// Guarded event.
    pub event: String,
    /// Parameter binder names.
    pub params: Vec<String>,
    /// Precondition formula over the object's history.
    pub formula: Formula,
}

/// Constraint kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Holds in every state.
    Static,
    /// Temporal formula holding at every position.
    Dynamic,
    /// Holds in the birth state.
    Initially,
}

/// A lowered constraint.
#[derive(Debug, Clone)]
pub struct ConstraintModel {
    /// Kind.
    pub kind: ConstraintKind,
    /// Formula.
    pub formula: Formula,
}

/// Where a called event lives.
#[derive(Debug, Clone, PartialEq)]
pub enum EventTarget {
    /// The object itself.
    Local,
    /// A component or incorporated object, by alias.
    Component(String),
    /// A specific instance of a class (`DEPT(D)`), with the identity
    /// given by a term.
    Instance {
        /// Class name.
        class: String,
        /// Identity term.
        id: Term,
    },
}

/// One called event in a calling rule.
#[derive(Debug, Clone)]
pub struct LoweredCall {
    /// Target object.
    pub target: EventTarget,
    /// Event name.
    pub event: String,
    /// Argument terms (evaluated in the caller's environment).
    pub args: Vec<Term>,
}

/// A lowered event-calling rule: when the trigger occurs, all called
/// events occur synchronously with it (transaction calling when several).
#[derive(Debug, Clone)]
pub struct CallRule {
    /// Trigger target (Local for in-class rules; Instance for global
    /// interactions).
    pub trigger_target: EventTarget,
    /// Trigger event name.
    pub trigger_event: String,
    /// Trigger parameter binders (plain variables) — bound to the
    /// trigger's actual arguments when the rule fires.
    pub trigger_params: Vec<String>,
    /// The called events, in order.
    pub calls: Vec<LoweredCall>,
}

/// A lowered event declaration for interfaces.
#[derive(Debug, Clone)]
pub struct EventModel {
    /// Event name.
    pub name: String,
    /// Parameter sorts.
    pub params: Vec<Sort>,
    /// Life-cycle kind.
    pub kind: EventKind,
    /// Whether derived.
    pub derived: bool,
}

/// A lowered interface class (§5.1).
#[derive(Debug, Clone)]
pub struct InterfaceModel {
    /// Interface name.
    pub name: String,
    /// Encapsulated bases: `(class, variable)`.
    pub bases: Vec<(String, String)>,
    /// Selection predicate, if any.
    pub selection: Option<Term>,
    /// Exposed attributes: `(name, sort, derived)`.
    pub attributes: Vec<(String, Sort, bool)>,
    /// Exposed events.
    pub events: Vec<EventModel>,
    /// Derivation rules for derived attributes.
    pub derivation: Vec<DerivationModel>,
    /// Calling rules for derived events.
    pub calling: Vec<CallRule>,
}

impl InterfaceModel {
    /// Whether this is a join view (more than one base).
    pub fn is_join(&self) -> bool {
        self.bases.len() > 1
    }
}

/// A lowered module (three-level schema architecture, §6).
#[derive(Debug, Clone)]
pub struct ModuleModel {
    /// Module name.
    pub name: String,
    /// Conceptual-schema classes.
    pub conceptual: Vec<String>,
    /// Internal-schema classes.
    pub internal: Vec<String>,
    /// External schemata: name → interface classes.
    pub external: Vec<(String, Vec<String>)>,
    /// Imported `(module, schema)` pairs.
    pub imports: Vec<(String, String)>,
}
