//! Recursive-descent parser for TROLL.

use crate::ast::*;
use crate::{lex, LangError, Result, Token, TokenKind};
use troll_data::{Date, Money, Op, Quantifier, Sort, Term, TupleField, Value};
use troll_temporal::{EventPattern, Formula};

/// Parses a complete TROLL specification.
///
/// # Errors
///
/// Returns a [`LangError`] with source position on the first syntax
/// error.
///
/// # Example
///
/// ```
/// let spec = troll_lang::parse(
///     "object class C identification k: string; template events birth b; end object class C;",
/// )?;
/// assert_eq!(spec.items.len(), 1);
/// # Ok::<(), troll_lang::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<Spec> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        libraries: std::collections::BTreeMap::new(),
    };
    p.spec()
}

/// Parses a standalone expression (used by tests and the runtime REPL
/// helpers).
///
/// # Errors
///
/// Returns a [`LangError`] on syntax errors or trailing input.
pub fn parse_term(source: &str) -> Result<Term> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        libraries: std::collections::BTreeMap::new(),
    };
    let t = p.expr()?;
    p.expect_eof()?;
    Ok(t)
}

/// Parses a standalone temporal formula.
///
/// # Errors
///
/// Returns a [`LangError`] on syntax errors or trailing input.
pub fn parse_formula(source: &str) -> Result<Formula> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        libraries: std::collections::BTreeMap::new(),
    };
    let f = p.formula()?;
    p.expect_eof()?;
    Ok(f)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `library class` bodies (token runs between the header and the
    /// terminator), for syntactic reuse — the paper's \[SRGS91\]
    /// "syntactical reuse of specification text".
    libraries: std::collections::BTreeMap<String, Vec<Token>>,
}

/// Section-introducing keywords inside class bodies; an identifier that
/// matches one of these ends the previous section.
const SECTION_KEYWORDS: &[&str] = &[
    "identification",
    "data",
    "template",
    "attributes",
    "components",
    "events",
    "constraints",
    "valuation",
    "derivation",
    "permissions",
    "obligations",
    "interaction",
    "interactions",
    "calling",
    "inheriting",
    "view",
    "selection",
    "encapsulating",
    "end",
];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let t = self.peek();
        Err(LangError::new(t.line, t.column, message))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.peek().is_kw(kw) {
            self.advance();
            Ok(())
        } else {
            self.err(format!(
                "expected keyword `{kw}`, found {}",
                self.peek().kind
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input {}", self.peek().kind))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn at_section_boundary(&self) -> bool {
        match self.peek().ident() {
            Some(word) => SECTION_KEYWORDS.contains(&word),
            None => self.peek().kind == TokenKind::Eof,
        }
    }

    // ----- top level -------------------------------------------------

    fn spec(&mut self) -> Result<Spec> {
        let mut items = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            if self.peek().is_kw("library") {
                self.library_decl()?;
            } else if self.peek().is_kw("object") {
                items.push(self.object_decl()?);
            } else if self.peek().is_kw("interface") {
                items.push(Item::InterfaceClass(self.interface_class()?));
            } else if self.peek().is_kw("global") {
                items.push(Item::GlobalInteractions(self.global_interactions()?));
            } else if self.peek().is_kw("module") {
                items.push(Item::Module(self.module_decl()?));
            } else {
                return self.err(format!(
                    "expected `object`, `interface`, `global` or `module`, found {}",
                    self.peek().kind
                ));
            }
        }
        Ok(Spec { items })
    }

    fn object_decl(&mut self) -> Result<Item> {
        self.expect_kw("object")?;
        let singleton = !self.eat_kw("class");
        let name = self.expect_ident()?;

        // syntactic reuse: `object class NAME = LIB with A = B, …;`
        if self.peek().kind == TokenKind::Eq {
            return self.instantiate_library(&name, singleton);
        }

        let mut decl = ObjectClassDecl {
            name: name.clone(),
            singleton,
            identification: Vec::new(),
            data_types: Vec::new(),
            view_of: None,
            inheriting: Vec::new(),
            body: TemplateBody::default(),
        };

        loop {
            if self.peek().is_kw("end") {
                break;
            } else if self.eat_kw("identification") {
                // a run of `name: sort;` declarations, also accepting
                // `data types …;` interleaved (the paper puts it inside)
                while let Some(word) = self.peek().ident() {
                    if word == "data" {
                        self.advance();
                        self.expect_kw("types")?;
                        decl.data_types = self.sort_list()?;
                        self.expect(&TokenKind::Semi)?;
                        continue;
                    }
                    if SECTION_KEYWORDS.contains(&word) {
                        break;
                    }
                    let pname = self.expect_ident()?;
                    self.expect(&TokenKind::Colon)?;
                    let sort = self.sort_expr()?;
                    self.expect(&TokenKind::Semi)?;
                    decl.identification.push(Param::new(pname, sort));
                }
            } else if self.eat_kw("data") {
                self.expect_kw("types")?;
                decl.data_types = self.sort_list()?;
                self.expect(&TokenKind::Semi)?;
            } else if self.eat_kw("view") {
                self.expect_kw("of")?;
                decl.view_of = Some(self.expect_ident()?);
                self.expect(&TokenKind::Semi)?;
            } else if self.eat_kw("template") {
                // body sections follow
            } else if self.eat_kw("inheriting") {
                let object = self.expect_ident()?;
                self.expect_kw("as")?;
                let alias = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                decl.inheriting.push(InheritDecl { object, alias });
            } else if self.peek().is_kw("attributes")
                || self.peek().is_kw("components")
                || self.peek().is_kw("events")
                || self.peek().is_kw("constraints")
                || self.peek().is_kw("valuation")
                || self.peek().is_kw("derivation")
                || self.peek().is_kw("permissions")
                || self.peek().is_kw("obligations")
                || self.peek().is_kw("interaction")
                || self.peek().is_kw("interactions")
                || self.peek().is_kw("calling")
            {
                self.template_section(&mut decl.body)?;
            } else {
                return self.err(format!(
                    "unexpected {} in object declaration",
                    self.peek().kind
                ));
            }
        }

        self.expect_kw("end")?;
        self.expect_kw("object")?;
        if !singleton {
            self.expect_kw("class")?;
        }
        let closing = self.expect_ident()?;
        if closing != name {
            return self.err(format!(
                "mismatched block: `object {name}` closed by `{closing}`"
            ));
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Item::ObjectClass(decl))
    }

    /// `library class NAME <body tokens> end library class NAME;` — the
    /// body is recorded verbatim for later instantiation.
    fn library_decl(&mut self) -> Result<()> {
        self.expect_kw("library")?;
        self.expect_kw("class")?;
        let name = self.expect_ident()?;
        let start = self.pos;
        // scan for `end library class NAME ;`
        loop {
            if self.peek().kind == TokenKind::Eof {
                return self.err(format!("library class `{name}` is not terminated"));
            }
            if self.peek().is_kw("end")
                && self.peek_at(1).is_kw("library")
                && self.peek_at(2).is_kw("class")
            {
                break;
            }
            self.advance();
        }
        let body: Vec<Token> = self.tokens[start..self.pos].to_vec();
        self.expect_kw("end")?;
        self.expect_kw("library")?;
        self.expect_kw("class")?;
        let closing = self.expect_ident()?;
        if closing != name {
            return self.err(format!(
                "mismatched block: `library class {name}` closed by `{closing}`"
            ));
        }
        self.expect(&TokenKind::Semi)?;
        self.libraries.insert(name, body);
        Ok(())
    }

    /// `object class NAME = LIB with A = <tokens>, B = <tokens>;` —
    /// splices the library body with identifier substitution and parses
    /// the result as an ordinary object class.
    fn instantiate_library(&mut self, name: &str, singleton: bool) -> Result<Item> {
        self.expect(&TokenKind::Eq)?;
        let lib_name = self.expect_ident()?;
        let body = self.libraries.get(&lib_name).cloned().ok_or_else(|| {
            LangError::new(
                self.peek().line,
                self.peek().column,
                format!("unknown library class `{lib_name}`"),
            )
        })?;
        let mut substitutions: Vec<(String, Vec<Token>)> = Vec::new();
        if self.eat_kw("with") {
            loop {
                let key = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                // the replacement is a raw token run up to `,` or `;` at
                // bracket depth 0
                let mut depth = 0usize;
                let mut replacement = Vec::new();
                loop {
                    match &self.peek().kind {
                        TokenKind::Eof => {
                            return self.err("unterminated instantiation");
                        }
                        TokenKind::Comma | TokenKind::Semi if depth == 0 => break,
                        TokenKind::LParen | TokenKind::LBracket | TokenKind::LBrace => {
                            depth += 1;
                            replacement.push(self.advance());
                        }
                        TokenKind::RParen | TokenKind::RBracket | TokenKind::RBrace => {
                            depth = depth.saturating_sub(1);
                            replacement.push(self.advance());
                        }
                        _ => replacement.push(self.advance()),
                    }
                }
                substitutions.push((key, replacement));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Semi)?;

        // splice: object [class] NAME <substituted body> end object [class] NAME ;
        let line = self.peek().line;
        let mk = |kind: TokenKind| Token::new(kind, line, 0);
        let mut spliced: Vec<Token> = vec![mk(TokenKind::Ident("object".into()))];
        if !singleton {
            spliced.push(mk(TokenKind::Ident("class".into())));
        }
        spliced.push(mk(TokenKind::Ident(name.to_string())));
        for tok in body {
            match &tok.kind {
                TokenKind::Ident(word) => {
                    if let Some((_, replacement)) = substitutions.iter().find(|(k, _)| k == word) {
                        spliced.extend(replacement.iter().cloned());
                    } else {
                        spliced.push(tok);
                    }
                }
                _ => spliced.push(tok),
            }
        }
        spliced.push(mk(TokenKind::Ident("end".into())));
        spliced.push(mk(TokenKind::Ident("object".into())));
        if !singleton {
            spliced.push(mk(TokenKind::Ident("class".into())));
        }
        spliced.push(mk(TokenKind::Ident(name.to_string())));
        spliced.push(mk(TokenKind::Semi));
        spliced.push(mk(TokenKind::Eof));

        let mut sub_parser = Parser {
            tokens: spliced,
            pos: 0,
            libraries: std::collections::BTreeMap::new(),
        };
        sub_parser.object_decl().map_err(|e| {
            LangError::new(
                e.line,
                e.column,
                format!(
                    "in instantiation of library `{lib_name}` as `{name}`: {}",
                    e.message
                ),
            )
        })
    }

    fn template_section(&mut self, body: &mut TemplateBody) -> Result<()> {
        if self.eat_kw("attributes") {
            while !self.at_section_boundary() {
                body.attributes.push(self.attr_decl()?);
            }
        } else if self.eat_kw("components") {
            while !self.at_section_boundary() {
                body.components.push(self.component_decl()?);
            }
        } else if self.eat_kw("events") {
            while !self.at_section_boundary() {
                body.events.push(self.event_decl()?);
            }
        } else if self.eat_kw("constraints") {
            while !self.at_section_boundary() {
                body.constraints.push(self.constraint_decl()?);
            }
        } else if self.eat_kw("valuation") {
            self.skip_variables_decl()?;
            while !self.at_section_boundary() {
                body.valuation.push(self.valuation_rule()?);
            }
        } else if self.eat_kw("derivation") {
            self.eat_kw("rules");
            while !self.at_section_boundary() {
                body.derivation_rules.push(self.derivation_rule()?);
            }
        } else if self.eat_kw("permissions") {
            self.skip_variables_decl()?;
            while !self.at_section_boundary() {
                body.permissions.push(self.permission_rule()?);
            }
        } else if self.eat_kw("obligations") {
            while !self.at_section_boundary() {
                let f = self.formula()?;
                self.expect(&TokenKind::Semi)?;
                body.obligations.push(f);
            }
        } else if self.eat_kw("interaction")
            || self.eat_kw("interactions")
            || self.eat_kw("calling")
        {
            self.skip_variables_decl()?;
            while !self.at_section_boundary() {
                body.interactions.push(self.calling_rule()?);
            }
        } else {
            return self.err("expected a template section");
        }
        Ok(())
    }

    /// `variables P: PERSON; d: date;` — declarations are documentation
    /// for the rule variables; sorts are re-checked by the analyzer, so
    /// the parser records nothing.
    fn skip_variables_decl(&mut self) -> Result<()> {
        if !self.eat_kw("variables") {
            return Ok(());
        }
        loop {
            // name (, name)* : sort ;
            self.expect_ident()?;
            while self.eat(&TokenKind::Comma) {
                self.expect_ident()?;
            }
            self.expect(&TokenKind::Colon)?;
            self.sort_expr()?;
            self.expect(&TokenKind::Semi)?;
            // another declaration follows if we see `ident (,ident)* :`
            let mut is_decl =
                matches!(self.peek().kind, TokenKind::Ident(_)) && !self.at_section_boundary();
            if is_decl {
                // lookahead for `:` after the name list
                let mut k = 1;
                while self.peek_at(k).kind == TokenKind::Comma {
                    k += 2;
                }
                // the sort after `:` may be a named sort or a class
                // sort `|C|`
                is_decl = self.peek_at(k).kind == TokenKind::Colon
                    && (self.peek_at(k + 1).ident().is_some()
                        || self.peek_at(k + 1).kind == TokenKind::Pipe);
            }
            if !is_decl {
                return Ok(());
            }
        }
    }

    fn attr_decl(&mut self) -> Result<AttrDecl> {
        let derived = self.eat_kw("derived");
        let name = self.expect_ident()?;
        // parameterized attribute: IncomeInYear(integer): money
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                params.push(self.sort_expr()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.sort_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let sort = if self.eat(&TokenKind::Colon) {
            self.sort_expr()?
        } else {
            // the paper omits the sort of some derived attributes
            // (`derived Salary;` in EMPL_IMPL); default to int
            Sort::Int
        };
        self.expect(&TokenKind::Semi)?;
        if !params.is_empty() && !derived {
            return self.err(format!(
                "parameterized attribute `{name}` must be declared `derived`"
            ));
        }
        Ok(AttrDecl {
            name,
            params,
            sort,
            derived,
        })
    }

    fn component_decl(&mut self) -> Result<ComponentDecl> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let head = self.expect_ident()?;
        let (kind, class) = if head.eq_ignore_ascii_case("list") && self.eat(&TokenKind::LParen) {
            let c = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            (ComponentKind::List, c)
        } else if head.eq_ignore_ascii_case("set") && self.eat(&TokenKind::LParen) {
            let c = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            (ComponentKind::Set, c)
        } else {
            (ComponentKind::Single, head)
        };
        self.expect(&TokenKind::Semi)?;
        Ok(ComponentDecl { name, kind, class })
    }

    fn event_decl(&mut self) -> Result<EventDecl> {
        let mut marker = EventMarker::Update;
        if self.eat_kw("birth") {
            marker = EventMarker::Birth;
        } else if self.eat_kw("death") {
            marker = EventMarker::Death;
        } else if self.eat_kw("active") {
            marker = EventMarker::Active;
        }
        let derived = self.eat_kw("derived");
        let first = self.expect_ident()?;
        // `birth PERSON.become_manager;` — alias of a base event
        let (name, alias_of) = if self.eat(&TokenKind::Dot) {
            let event = self.expect_ident()?;
            (event.clone(), Some((first, event)))
        } else {
            (first, None)
        };
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                params.push(self.sort_expr()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.sort_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;
        Ok(EventDecl {
            name,
            params,
            marker,
            derived,
            alias_of,
        })
    }

    fn constraint_decl(&mut self) -> Result<ConstraintDecl> {
        let kind = if self.eat_kw("static") {
            ConstraintKindAst::Static
        } else if self.eat_kw("dynamic") {
            ConstraintKindAst::Dynamic
        } else if self.eat_kw("initially") {
            ConstraintKindAst::Initially
        } else {
            ConstraintKindAst::Static
        };
        let formula = self.formula()?;
        self.expect(&TokenKind::Semi)?;
        Ok(ConstraintDecl { kind, formula })
    }

    fn valuation_rule(&mut self) -> Result<ValuationRule> {
        let guard = if self.peek().kind == TokenKind::LBrace {
            self.advance();
            let g = self.expr()?;
            self.expect(&TokenKind::RBrace)?;
            self.eat(&TokenKind::Implies); // optional ⇒
            Some(g)
        } else {
            None
        };
        self.expect(&TokenKind::LBracket)?;
        let event = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                params.push(self.binder()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.binder()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::RBracket)?;
        let attribute = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let value = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(ValuationRule {
            guard,
            event,
            params,
            attribute,
            value,
        })
    }

    fn binder(&mut self) -> Result<String> {
        if self.eat(&TokenKind::Underscore) {
            Ok(format!("_w{}", self.pos))
        } else {
            self.expect_ident()
        }
    }

    fn derivation_rule(&mut self) -> Result<DerivationRule> {
        let attribute = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                params.push(self.binder()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.binder()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Eq)?;
        let value = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(DerivationRule {
            attribute,
            params,
            value,
        })
    }

    fn permission_rule(&mut self) -> Result<PermissionRule> {
        self.expect(&TokenKind::LBrace)?;
        let formula = self.formula()?;
        self.expect(&TokenKind::RBrace)?;
        let event = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                params.push(self.binder()?);
                while self.eat(&TokenKind::Comma) {
                    params.push(self.binder()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;
        Ok(PermissionRule {
            formula,
            event,
            params,
        })
    }

    fn calling_rule(&mut self) -> Result<CallingRule> {
        let trigger = self.event_ref()?;
        self.expect(&TokenKind::Calls)?;
        let mut calls = Vec::new();
        if self.eat(&TokenKind::LParen) {
            calls.push(self.event_ref()?);
            while self.eat(&TokenKind::Semi) {
                calls.push(self.event_ref()?);
            }
            self.expect(&TokenKind::RParen)?;
        } else {
            calls.push(self.event_ref()?);
        }
        self.expect(&TokenKind::Semi)?;
        Ok(CallingRule { trigger, calls })
    }

    fn event_ref(&mut self) -> Result<EventRef> {
        if self.eat_kw("self") {
            self.expect(&TokenKind::Dot)?;
            let event = self.expect_ident()?;
            let args = self.call_args()?;
            return Ok(EventRef {
                target: TargetRef::Local,
                event,
                args,
            });
        }
        let first = self.expect_ident()?;
        if self.eat(&TokenKind::Dot) {
            // component-qualified: alias.event(args)
            let event = self.expect_ident()?;
            let args = self.call_args()?;
            return Ok(EventRef {
                target: TargetRef::Component(first),
                event,
                args,
            });
        }
        if self.peek().kind == TokenKind::LParen {
            // could be `CLASS(id).event(args)` or a local event with args
            let save = self.pos;
            self.advance(); // (
            let id = self.expr();
            if let Ok(id) = id {
                if self.peek().kind == TokenKind::RParen && self.peek_at(1).kind == TokenKind::Dot {
                    self.advance(); // )
                    self.advance(); // .
                    let event = self.expect_ident()?;
                    let args = self.call_args()?;
                    return Ok(EventRef {
                        target: TargetRef::Instance { class: first, id },
                        event,
                        args,
                    });
                }
            }
            self.pos = save;
            let args = self.call_args()?;
            return Ok(EventRef {
                target: TargetRef::Local,
                event: first,
                args,
            });
        }
        Ok(EventRef {
            target: TargetRef::Local,
            event: first,
            args: Vec::new(),
        })
    }

    fn call_args(&mut self) -> Result<Vec<Term>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                args.push(self.expr()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(args)
    }

    fn global_interactions(&mut self) -> Result<GlobalInteractionsDecl> {
        self.expect_kw("global")?;
        self.expect_kw("interactions")?;
        let mut decl = GlobalInteractionsDecl::default();
        if self.eat_kw("variables") {
            loop {
                let mut names = vec![self.expect_ident()?];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_ident()?);
                }
                self.expect(&TokenKind::Colon)?;
                let sort = self.sort_expr()?;
                self.expect(&TokenKind::Semi)?;
                for n in names {
                    decl.variables.push(Param::new(n, sort.clone()));
                }
                // another declaration follows if `ident (, ident)* :`
                if self.peek().is_kw("end") || self.peek().ident().is_none() {
                    break;
                }
                let mut k = 1;
                while self.peek_at(k).kind == TokenKind::Comma {
                    k += 2;
                }
                if self.peek_at(k).kind != TokenKind::Colon {
                    break;
                }
            }
        }
        while !self.peek().is_kw("end") {
            decl.rules.push(self.calling_rule()?);
        }
        self.expect_kw("end")?;
        self.expect_kw("global")?;
        self.expect_kw("interactions")?;
        self.expect(&TokenKind::Semi)?;
        Ok(decl)
    }

    fn interface_class(&mut self) -> Result<InterfaceClassDecl> {
        self.expect_kw("interface")?;
        self.expect_kw("class")?;
        let name = self.expect_ident()?;
        self.expect_kw("encapsulating")?;
        let mut encapsulating = Vec::new();
        loop {
            let class = self.expect_ident()?;
            let var = match self.peek().ident() {
                Some(v)
                    if !SECTION_KEYWORDS.contains(&v)
                        && self.peek_at(1).kind != TokenKind::Colon =>
                {
                    self.expect_ident()?
                }
                _ => class.clone(),
            };
            encapsulating.push(EncapsulatedBase { class, var });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.eat(&TokenKind::Semi);

        let mut decl = InterfaceClassDecl {
            name: name.clone(),
            encapsulating,
            selection: None,
            attributes: Vec::new(),
            events: Vec::new(),
            derivation_rules: Vec::new(),
            calling: Vec::new(),
        };

        loop {
            if self.peek().is_kw("end") {
                break;
            } else if self.eat_kw("selection") {
                self.expect_kw("where")?;
                decl.selection = Some(self.expr()?);
                self.expect(&TokenKind::Semi)?;
            } else if self.eat_kw("attributes") {
                while !self.at_section_boundary() {
                    decl.attributes.push(self.attr_decl()?);
                }
            } else if self.eat_kw("events") {
                while !self.at_section_boundary() {
                    decl.events.push(self.event_decl()?);
                }
            } else if self.eat_kw("derivation") {
                self.eat_kw("rules");
                while !self.at_section_boundary() {
                    decl.derivation_rules.push(self.derivation_rule()?);
                }
            } else if self.eat_kw("calling") {
                while !self.at_section_boundary() {
                    decl.calling.push(self.calling_rule()?);
                }
            } else {
                return self.err(format!(
                    "unexpected {} in interface class",
                    self.peek().kind
                ));
            }
        }
        self.expect_kw("end")?;
        self.expect_kw("interface")?;
        self.expect_kw("class")?;
        let closing = self.expect_ident()?;
        if closing != name {
            return self.err(format!(
                "mismatched block: `interface class {name}` closed by `{closing}`"
            ));
        }
        self.expect(&TokenKind::Semi)?;
        Ok(decl)
    }

    fn module_decl(&mut self) -> Result<ModuleDecl> {
        self.expect_kw("module")?;
        let name = self.expect_ident()?;
        let mut decl = ModuleDecl {
            name: name.clone(),
            ..ModuleDecl::default()
        };
        loop {
            if self.peek().is_kw("end") {
                break;
            } else if self.eat_kw("conceptual") {
                self.expect_kw("schema")?;
                decl.conceptual = self.ident_list_semi()?;
            } else if self.eat_kw("internal") {
                self.expect_kw("schema")?;
                decl.internal = self.ident_list_semi()?;
            } else if self.eat_kw("external") {
                self.expect_kw("schema")?;
                let schema_name = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                let members = self.ident_list_semi()?;
                decl.external.push((schema_name, members));
            } else if self.eat_kw("import") {
                let module = self.expect_ident()?;
                self.expect(&TokenKind::Dot)?;
                let schema = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                decl.imports.push((module, schema));
            } else {
                return self.err(format!("unexpected {} in module", self.peek().kind));
            }
        }
        self.expect_kw("end")?;
        self.expect_kw("module")?;
        let closing = self.expect_ident()?;
        if closing != name {
            return self.err(format!(
                "mismatched block: `module {name}` closed by `{closing}`"
            ));
        }
        self.expect(&TokenKind::Semi)?;
        Ok(decl)
    }

    fn ident_list_semi(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::Semi)?;
        Ok(out)
    }

    // ----- sorts -----------------------------------------------------

    fn sort_list(&mut self) -> Result<Vec<Sort>> {
        let mut out = vec![self.sort_expr()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.sort_expr()?);
        }
        Ok(out)
    }

    fn sort_expr(&mut self) -> Result<Sort> {
        if self.eat(&TokenKind::Pipe) {
            let class = self.expect_ident()?;
            self.expect(&TokenKind::Pipe)?;
            return Ok(Sort::id(class));
        }
        let name = self.expect_ident()?;
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "bool" | "boolean" => Ok(Sort::Bool),
            "int" | "integer" => Ok(Sort::Int),
            "nat" => Ok(Sort::Nat),
            "string" => Ok(Sort::String),
            "date" => Ok(Sort::Date),
            "money" => Ok(Sort::Money),
            "set" | "list" | "map" | "optional" if self.peek().kind == TokenKind::LParen => {
                self.expect(&TokenKind::LParen)?;
                let first = self.sort_expr()?;
                let sort = match lower.as_str() {
                    "set" => Sort::set(first),
                    "list" => Sort::list(first),
                    "optional" => Sort::optional(first),
                    "map" => {
                        self.expect(&TokenKind::Comma)?;
                        let v = self.sort_expr()?;
                        Sort::map(first, v)
                    }
                    _ => unreachable!(),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(sort)
            }
            "tuple" if self.peek().kind == TokenKind::LParen => {
                self.expect(&TokenKind::LParen)?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.expect_ident()?;
                    self.expect(&TokenKind::Colon)?;
                    let fsort = self.sort_expr()?;
                    fields.push(TupleField::new(fname, fsort));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Sort::tuple(fields))
            }
            // class name used as a sort denotes the identity sort |C|
            _ => Ok(Sort::id(name)),
        }
    }

    // ----- formulas --------------------------------------------------

    /// `formula := or_f ( "=>" formula )?` (right associative)
    pub(crate) fn formula(&mut self) -> Result<Formula> {
        let lhs = self.or_formula()?;
        if self.eat(&TokenKind::Implies) {
            let rhs = self.formula()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_formula(&mut self) -> Result<Formula> {
        let mut f = self.and_formula()?;
        while self.peek().is_kw("or") {
            self.advance();
            let rhs = self.and_formula()?;
            f = Formula::or(f, rhs);
        }
        Ok(f)
    }

    fn and_formula(&mut self) -> Result<Formula> {
        let mut f = self.since_formula()?;
        while self.peek().is_kw("and") {
            self.advance();
            let rhs = self.since_formula()?;
            f = Formula::and(f, rhs);
        }
        Ok(f)
    }

    fn since_formula(&mut self) -> Result<Formula> {
        let lhs = self.formula_atom()?;
        if self.peek().is_kw("since") {
            self.advance();
            let rhs = self.formula_atom()?;
            Ok(Formula::since(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn formula_atom(&mut self) -> Result<Formula> {
        let t = self.peek().clone();
        if let Some(word) = t.ident() {
            match word {
                "not" => {
                    self.advance();
                    return Ok(Formula::not(self.formula_atom()?));
                }
                "sometime" | "always" | "previous" | "eventually" | "henceforth"
                    // temporal unary — only when followed by `(`
                    if self.peek_at(1).kind == TokenKind::LParen => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let inner = self.formula()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(match word {
                            "sometime" => Formula::sometime(inner),
                            "always" => Formula::always_past(inner),
                            "previous" => Formula::previous(inner),
                            "eventually" => Formula::eventually(inner),
                            _ => Formula::henceforth(inner),
                        });
                    }
                "after" | "occurs"
                    if self.peek_at(1).kind == TokenKind::LParen => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let pattern = self.event_pattern()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(if word == "after" {
                            Formula::after(pattern)
                        } else {
                            Formula::occurs(pattern)
                        });
                    }
                "for" | "exists" => {
                    let is_forall = word == "for";
                    let lookahead = if is_forall { 1 } else { 0 };
                    let paren_ok = if is_forall {
                        self.peek_at(1).is_kw("all") && self.peek_at(2).kind == TokenKind::LParen
                    } else {
                        self.peek_at(1).kind == TokenKind::LParen
                    };
                    if paren_ok {
                        self.advance();
                        if is_forall {
                            self.expect_kw("all")?;
                        }
                        let _ = lookahead;
                        self.expect(&TokenKind::LParen)?;
                        let var = self.expect_ident()?;
                        let domain = if self.eat(&TokenKind::Colon) {
                            // `P: PERSON` — quantify over the class
                            // population, provided by the runtime under
                            // the reserved name `population(C)`.
                            let class = self.expect_ident()?;
                            Term::var(format!("population({class})"))
                        } else {
                            self.expect_kw("in")?;
                            self.expr()?
                        };
                        self.expect(&TokenKind::Colon)?;
                        let body = self.formula()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Formula::Quant {
                            q: if is_forall {
                                Quantifier::Forall
                            } else {
                                Quantifier::Exists
                            },
                            var,
                            domain,
                            body: Box::new(body),
                        });
                    }
                }
                _ => {}
            }
        }
        // `( formula )` vs expression: try expression first (it handles
        // its own parentheses); backtrack to a parenthesized formula.
        let save = self.pos;
        match self.expr() {
            Ok(e) => Ok(Formula::pred(e)),
            Err(expr_err) => {
                self.pos = save;
                if self.eat(&TokenKind::LParen) {
                    let f = self.formula()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(f)
                } else {
                    Err(expr_err)
                }
            }
        }
    }

    fn event_pattern(&mut self) -> Result<EventPattern> {
        let name = self.expect_ident()?;
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek().kind != TokenKind::RParen {
                args.push(self.pattern_arg()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.pattern_arg()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(EventPattern::new(name, args))
    }

    fn pattern_arg(&mut self) -> Result<Option<Term>> {
        if self.eat(&TokenKind::Underscore) {
            Ok(None)
        } else {
            Ok(Some(self.expr()?))
        }
    }

    // ----- expressions ------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Term> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Term> {
        let mut t = self.and_expr()?;
        while self.peek().is_kw("or") {
            self.advance();
            let rhs = self.and_expr()?;
            t = Term::apply(Op::Or, vec![t, rhs]);
        }
        Ok(t)
    }

    fn and_expr(&mut self) -> Result<Term> {
        let mut t = self.cmp_expr()?;
        while self.peek().is_kw("and") {
            self.advance();
            let rhs = self.cmp_expr()?;
            t = Term::apply(Op::And, vec![t, rhs]);
        }
        Ok(t)
    }

    fn cmp_expr(&mut self) -> Result<Term> {
        let lhs = self.add_expr()?;
        let op = match &self.peek().kind {
            TokenKind::Eq => Some(Op::Eq),
            TokenKind::Neq => Some(Op::Neq),
            TokenKind::Lt => Some(Op::Lt),
            TokenKind::Le => Some(Op::Le),
            TokenKind::Gt => Some(Op::Gt),
            TokenKind::Ge => Some(Op::Ge),
            TokenKind::Ident(w) if w == "in" => Some(Op::In),
            TokenKind::Ident(w) if w == "subset" => Some(Op::Subset),
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let rhs = self.add_expr()?;
                Ok(Term::apply(op, vec![lhs, rhs]))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Term> {
        let mut t = self.mul_expr()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Plus => Op::Add,
                TokenKind::Minus => Op::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            t = Term::apply(op, vec![t, rhs]);
        }
        Ok(t)
    }

    fn mul_expr(&mut self) -> Result<Term> {
        let mut t = self.unary_expr()?;
        loop {
            let op = match &self.peek().kind {
                TokenKind::Star => Op::Mul,
                TokenKind::Slash => Op::Div,
                TokenKind::Ident(w) if w == "div" => Op::Div,
                TokenKind::Ident(w) if w == "mod" => Op::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            // `money * 1.1` — scale by tenths, exactly
            if op == Op::Mul {
                if let Term::Const(Value::Money(m)) = &rhs {
                    let cents = m.cents();
                    if cents % 10 == 0 {
                        t = Term::apply(Op::ScaleTenths, vec![t, Term::constant(cents / 10)]);
                        continue;
                    }
                }
            }
            t = Term::apply(op, vec![t, rhs]);
        }
        Ok(t)
    }

    fn unary_expr(&mut self) -> Result<Term> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Term::Const(Value::Int(i)) => Term::constant(-i),
                other => Term::apply(Op::Neg, vec![other]),
            });
        }
        if self.peek().is_kw("not") {
            self.advance();
            let inner = self.unary_expr()?;
            return Ok(Term::apply(Op::Not, vec![inner]));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Term> {
        let mut t = self.primary_expr()?;
        while self.eat(&TokenKind::Dot) {
            let field = self.expect_ident()?;
            t = Term::field(t, field);
        }
        Ok(t)
    }

    fn primary_expr(&mut self) -> Result<Term> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Term::constant(*i))
            }
            TokenKind::Money(c) => {
                self.advance();
                Ok(Term::constant(Value::Money(Money::from_cents(*c))))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Term::constant(Value::from(s.clone())))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            // identity literal: |CLASS|(k1, …) — sugar for
            // mkid("CLASS", [k1, …])
            TokenKind::Pipe => {
                self.advance();
                let class = self.expect_ident()?;
                self.expect(&TokenKind::Pipe)?;
                let mut keys = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    if self.peek().kind != TokenKind::RParen {
                        keys.push(self.expr()?);
                        while self.eat(&TokenKind::Comma) {
                            keys.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(Term::apply(
                    Op::MkId,
                    vec![Term::constant(Value::from(class)), Term::MkList(keys)],
                ))
            }
            TokenKind::LBrace => {
                self.advance();
                let mut elems = Vec::new();
                if self.peek().kind != TokenKind::RBrace {
                    elems.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        elems.push(self.expr()?);
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Term::MkSet(elems))
            }
            TokenKind::LBracket => {
                self.advance();
                let mut elems = Vec::new();
                if self.peek().kind != TokenKind::RBracket {
                    elems.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        elems.push(self.expr()?);
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Term::MkList(elems))
            }
            TokenKind::Ident(word) => match word.as_str() {
                "true" => {
                    self.advance();
                    Ok(Term::constant(true))
                }
                "false" => {
                    self.advance();
                    Ok(Term::constant(false))
                }
                "undefined" => {
                    self.advance();
                    Ok(Term::Const(Value::Undefined))
                }
                "self" | "SELF" => {
                    self.advance();
                    Ok(Term::var("self"))
                }
                "if" => {
                    self.advance();
                    let c = self.expr()?;
                    self.expect_kw("then")?;
                    let a = self.expr()?;
                    self.expect_kw("else")?;
                    let b = self.expr()?;
                    Ok(Term::ite(c, a, b))
                }
                "tuple" if self.peek_at(1).kind == TokenKind::LParen => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let mut fields = Vec::new();
                    loop {
                        let fname = self.expect_ident()?;
                        self.expect(&TokenKind::Colon)?;
                        let fval = self.expr()?;
                        fields.push((fname, fval));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::MkTuple(fields))
                }
                "select" if self.peek_at(1).kind == TokenKind::Pipe => {
                    self.advance();
                    self.expect(&TokenKind::Pipe)?;
                    let pred = self.expr()?;
                    self.expect(&TokenKind::Pipe)?;
                    self.expect(&TokenKind::LParen)?;
                    let rel = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::select(rel, pred))
                }
                "project" if self.peek_at(1).kind == TokenKind::Pipe => {
                    self.advance();
                    self.expect(&TokenKind::Pipe)?;
                    let mut fields = vec![self.expect_ident()?];
                    while self.eat(&TokenKind::Comma) {
                        fields.push(self.expect_ident()?);
                    }
                    self.expect(&TokenKind::Pipe)?;
                    self.expect(&TokenKind::LParen)?;
                    let rel = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::project(rel, fields))
                }
                "the" if self.peek_at(1).kind == TokenKind::LParen => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let rel = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::the(rel))
                }
                // data-level bounded quantification over finite
                // collections: `exists(x in S : pred)` / `for all(…)`
                "exists" if self.peek_at(1).kind == TokenKind::LParen => {
                    self.advance();
                    self.quantified_term(Quantifier::Exists)
                }
                "for"
                    if self.peek_at(1).is_kw("all")
                        && self.peek_at(2).kind == TokenKind::LParen =>
                {
                    self.advance();
                    self.expect_kw("all")?;
                    self.quantified_term(Quantifier::Forall)
                }
                "date" if self.peek_at(1).kind == TokenKind::LParen => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let (l, c) = (self.peek().line, self.peek().column);
                    let y = self.int_literal()?;
                    self.expect(&TokenKind::Comma)?;
                    let m = self.int_literal()?;
                    self.expect(&TokenKind::Comma)?;
                    let d = self.int_literal()?;
                    self.expect(&TokenKind::RParen)?;
                    let date = Date::new(y as i32, m as u8, d as u8)
                        .map_err(|e| LangError::new(l, c, e.to_string()))?;
                    Ok(Term::constant(Value::Date(date)))
                }
                _ => {
                    // function call or plain variable
                    if self.peek_at(1).kind == TokenKind::LParen {
                        let name = self.expect_ident()?;
                        if let Some(op) = Op::by_name(&name) {
                            self.expect(&TokenKind::LParen)?;
                            let mut args = Vec::new();
                            if self.peek().kind != TokenKind::RParen {
                                args.push(self.expr()?);
                                while self.eat(&TokenKind::Comma) {
                                    args.push(self.expr()?);
                                }
                            }
                            self.expect(&TokenKind::RParen)?;
                            if args.len() != op.arity() {
                                return self.err(format!(
                                    "operation `{name}` expects {} argument(s), got {}",
                                    op.arity(),
                                    args.len()
                                ));
                            }
                            Ok(Term::Apply(op, args))
                        } else {
                            self.err(format!("unknown function `{name}`"))
                        }
                    } else {
                        let name = self.expect_ident()?;
                        Ok(Term::var(name))
                    }
                }
            },
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    fn quantified_term(&mut self, q: Quantifier) -> Result<Term> {
        self.expect(&TokenKind::LParen)?;
        let var = self.expect_ident()?;
        self.expect_kw("in")?;
        let domain = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let body = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Term::quant(q, var, domain, body))
    }

    fn int_literal(&mut self) -> Result<i64> {
        match self.peek().kind {
            TokenKind::Int(i) => {
                self.advance();
                Ok(i)
            }
            _ => self.err("expected an integer literal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_terms() {
        assert_eq!(
            parse_term("insert(P, employees)").unwrap(),
            Term::apply(Op::Insert, vec![Term::var("P"), Term::var("employees")])
        );
        assert_eq!(
            parse_term("a + b * 2").unwrap(),
            Term::apply(
                Op::Add,
                vec![
                    Term::var("a"),
                    Term::apply(Op::Mul, vec![Term::var("b"), Term::constant(2i64)])
                ]
            )
        );
        assert_eq!(
            parse_term("(a + b) * 2").unwrap(),
            Term::apply(
                Op::Mul,
                vec![
                    Term::apply(Op::Add, vec![Term::var("a"), Term::var("b")]),
                    Term::constant(2i64)
                ]
            )
        );
        assert_eq!(parse_term("-3").unwrap(), Term::constant(-3i64));
        assert_eq!(
            parse_term("P in employees").unwrap(),
            Term::apply(Op::In, vec![Term::var("P"), Term::var("employees")])
        );
        assert_eq!(parse_term("{}").unwrap(), Term::MkSet(vec![]));
        assert_eq!(
            parse_term("{1, 2}").unwrap(),
            Term::MkSet(vec![Term::constant(1i64), Term::constant(2i64)])
        );
        assert_eq!(
            parse_term("self.EmpName").unwrap(),
            Term::field(Term::var("self"), "EmpName")
        );
        assert!(parse_term("frobnicate(1)").is_err());
        assert!(parse_term("1 +").is_err());
    }

    #[test]
    fn money_scaling_lowered_exactly() {
        // Salary * 1.1 → scale_tenths(Salary, 11)
        assert_eq!(
            parse_term("Salary * 1.1").unwrap(),
            Term::apply(
                Op::ScaleTenths,
                vec![Term::var("Salary"), Term::constant(11i64)]
            )
        );
        // Salary * 13.5 → scale_tenths(Salary, 135)
        assert_eq!(
            parse_term("Salary * 13.5").unwrap(),
            Term::apply(
                Op::ScaleTenths,
                vec![Term::var("Salary"), Term::constant(135i64)]
            )
        );
        // non-tenth money stays a money constant multiplication
        assert_eq!(
            parse_term("Salary * 1.25").unwrap(),
            Term::apply(
                Op::Mul,
                vec![
                    Term::var("Salary"),
                    Term::constant(Value::Money(Money::from_cents(125)))
                ]
            )
        );
    }

    #[test]
    fn date_literals_fold() {
        assert_eq!(
            parse_term("date(1991, 10, 16)").unwrap(),
            Term::constant(Value::Date(Date::new(1991, 10, 16).unwrap()))
        );
        assert!(parse_term("date(1991, 13, 1)").is_err());
    }

    #[test]
    fn algebra_syntax() {
        let t = parse_term(
            "the(project|esalary|(select|ename = EmpName and ebirth = EmpBirth|(Emps)))",
        )
        .unwrap();
        match t {
            Term::The(_) => {}
            other => panic!("expected The node, got {other:?}"),
        }
        let p = parse_term("project|a, b|(rel)").unwrap();
        assert_eq!(p, Term::project(Term::var("rel"), vec!["a", "b"]));
    }

    #[test]
    fn parse_formulas() {
        let f = parse_formula("sometime(after(hire(P)))").unwrap();
        assert_eq!(
            f,
            Formula::sometime(Formula::after(EventPattern::new(
                "hire",
                vec![Some(Term::var("P"))]
            )))
        );
        let f = parse_formula("a = 1 => b = 2").unwrap();
        assert!(matches!(f, Formula::Implies(_, _)));
        let f = parse_formula("not occurs(closure)").unwrap();
        assert!(matches!(f, Formula::Not(_)));
        let f = parse_formula("x >= 1 since occurs(reset)").unwrap();
        assert!(matches!(f, Formula::Since(_, _)));
        let f = parse_formula("(occurs(a) or x = 1) and always(y >= 0)").unwrap();
        assert!(matches!(f, Formula::And(_, _)));
        let f = parse_formula("after(hire(_))").unwrap();
        assert_eq!(f, Formula::after(EventPattern::new("hire", vec![None])));
    }

    #[test]
    fn paper_closure_permission_parses() {
        let f = parse_formula(
            "for all(P: PERSON : sometime(P in employees) => sometime(after(fire(P))))",
        )
        .unwrap();
        match f {
            Formula::Quant { var, domain, .. } => {
                assert_eq!(var, "P");
                assert_eq!(domain, Term::var("population(PERSON)"));
            }
            other => panic!("expected quantifier, got {other:?}"),
        }
        let f = parse_formula("exists(x in employees : x = P)").unwrap();
        assert!(matches!(f, Formula::Quant { .. }));
    }

    #[test]
    fn parse_dept_class() {
        let src = r#"
object class DEPT
  identification id: string;
  data types date, PERSON, set(PERSON);
  template
    attributes
      est_date: date;
      manager: PERSON;
      employees: set(PERSON);
    events
      birth establishment(date);
      death closure;
      new_manager(PERSON);
      hire(PERSON);
      fire(PERSON);
    valuation
      variables P: PERSON; d: date;
      [establishment(d)] est_date = d;
      [new_manager(P)] manager = P;
      [hire(P)] employees = insert(P, employees);
      [fire(P)] employees = remove(P, employees);
    permissions
      variables P: PERSON;
      { sometime(after(hire(P))) } fire(P);
      { for all(P: PERSON : sometime(P in employees) => sometime(after(fire(P)))) } closure;
end object class DEPT;
"#;
        let spec = parse(src).unwrap();
        let dept = spec.object_class("DEPT").unwrap();
        assert!(!dept.singleton);
        assert_eq!(dept.identification.len(), 1);
        assert_eq!(dept.data_types.len(), 3);
        assert_eq!(dept.body.attributes.len(), 3);
        assert_eq!(dept.body.events.len(), 5);
        assert_eq!(dept.body.valuation.len(), 4);
        assert_eq!(dept.body.permissions.len(), 2);
        let hire_rule = &dept.body.valuation[2];
        assert_eq!(hire_rule.event, "hire");
        assert_eq!(hire_rule.params, vec!["P".to_string()]);
        assert_eq!(hire_rule.attribute, "employees");
        // sorts: manager is an identity sort since PERSON is a class name
        assert_eq!(dept.body.attributes[1].sort, Sort::id("PERSON"),);
    }

    #[test]
    fn variables_decl_continues_after_class_sort() {
        // regression: the decl-continuation lookahead must recognize a
        // class sort `|C|` after the colon, not just named sorts
        let src = r#"
object class DEPT
  identification id: string;
  template
    attributes employees: set(|PERSON|);
    events
      birth establishment;
      hire(|PERSON|);
      fire(|PERSON|);
      swap(|PERSON|, |PERSON|);
    interaction
      variables P: |PERSON|; Q: |PERSON|;
      swap(P, Q) >> (fire(P); hire(Q));
end object class DEPT;
"#;
        let spec = parse(src).unwrap();
        let dept = spec.object_class("DEPT").unwrap();
        assert_eq!(dept.body.interactions.len(), 1);
    }

    #[test]
    fn variables_decl_continues_after_class_sort_in_all_sections() {
        // regression (PR 1 lookahead fix): `variables P: |C|; Q: |C|;`
        // must parse as two declarations — in the valuation and
        // permissions sections too, not just interaction
        let src = r#"
object class DEPT
  identification id: string;
  template
    attributes
      employees: set(|PERSON|);
      backups: set(|PERSON|);
    events
      birth establishment;
      pair(|PERSON|, |PERSON|);
      fire(|PERSON|);
    valuation
      variables P: |PERSON|; Q: |PERSON|;
      [pair(P, Q)] employees = insert(P, employees);
      [pair(P, Q)] backups = insert(Q, backups);
    permissions
      variables P: |PERSON|; Q: |PERSON|;
      { not(sometime(after(pair(P, Q)))) } pair(P, Q);
end object class DEPT;
"#;
        let spec = parse(src).unwrap();
        let dept = spec.object_class("DEPT").unwrap();
        assert_eq!(dept.body.valuation.len(), 2);
        assert_eq!(dept.body.permissions.len(), 1);
        // both binders survived into the rules (Q was not swallowed by
        // the first declaration's sort)
        let analyzed = crate::analyze(&spec).unwrap();
        let class = analyzed.class("DEPT").unwrap();
        assert!(class
            .valuation_for("pair")
            .all(|r| r.params == vec!["P".to_string(), "Q".to_string()]));
        let perm = class.permissions_for("pair").next().unwrap();
        assert_eq!(perm.params, vec!["P".to_string(), "Q".to_string()]);
    }

    #[test]
    fn parse_person_manager_phase() {
        let src = r#"
object class PERSON
  identification
    name: string;
    birthdate: date;
  template
    attributes Salary: money;
    events
      birth create;
      become_manager;
      death die;
end object class PERSON;

object class MANAGER
  view of PERSON;
  template
    attributes OfficialCar: |CAR|;
    events
      birth PERSON.become_manager;
    constraints
      static Salary >= 5000;
end object class MANAGER;
"#;
        let spec = parse(src).unwrap();
        let mgr = spec.object_class("MANAGER").unwrap();
        assert_eq!(mgr.view_of.as_deref(), Some("PERSON"));
        assert_eq!(mgr.body.attributes[0].sort, Sort::id("CAR"));
        let ev = &mgr.body.events[0];
        assert_eq!(ev.name, "become_manager");
        assert_eq!(
            ev.alias_of,
            Some(("PERSON".to_string(), "become_manager".to_string()))
        );
        assert_eq!(ev.marker, EventMarker::Birth);
        assert_eq!(mgr.body.constraints.len(), 1);
    }

    #[test]
    fn parse_company_components_and_globals() {
        let src = r#"
object TheCompany
  template
    components
      depts: LIST(DEPT);
      hq: BUILDING;
      teams: SET(TEAM);
end object TheCompany;

global interactions
  variables P: PERSON; D: DEPT;
  DEPT(D).new_manager(P) >> PERSON(P).become_manager;
end global interactions;
"#;
        let spec = parse(src).unwrap();
        let company = spec.object_class("TheCompany").unwrap();
        assert!(company.singleton);
        assert_eq!(company.body.components.len(), 3);
        assert_eq!(company.body.components[0].kind, ComponentKind::List);
        assert_eq!(company.body.components[1].kind, ComponentKind::Single);
        assert_eq!(company.body.components[2].kind, ComponentKind::Set);
        match &spec.items[1] {
            Item::GlobalInteractions(g) => {
                assert_eq!(g.variables.len(), 2);
                assert_eq!(g.rules.len(), 1);
                let rule = &g.rules[0];
                match &rule.trigger.target {
                    TargetRef::Instance { class, id } => {
                        assert_eq!(class, "DEPT");
                        assert_eq!(id, &Term::var("D"));
                    }
                    other => panic!("expected instance target, got {other:?}"),
                }
                assert_eq!(rule.calls.len(), 1);
                assert_eq!(rule.calls[0].event, "become_manager");
            }
            other => panic!("expected global interactions, got {other:?}"),
        }
    }

    #[test]
    fn parse_emp_rel_with_guard_and_transaction() {
        let src = r#"
object emp_rel
  template
    data types string, date, integer;
    attributes
      Emps: set(tuple(ename: string, ebirth: date, esalary: integer));
    events
      birth CreateEmpRel;
      UpdateSalary(string, date, integer);
      InsertEmp(string, date, integer);
      DeleteEmp(string, date);
      ChangeSalary(string, date, integer);
      death CloseEmpRel;
    valuation
      variables n: string; b: date; s: integer;
      [CreateEmpRel] Emps = {};
      [InsertEmp(n, b, s)] Emps = insert(tuple(ename: n, ebirth: b, esalary: s), Emps);
      { tuple(ename: n, ebirth: b, esalary: s) in Emps } =>
        [DeleteEmp(n, b)] Emps = remove(tuple(ename: n, ebirth: b, esalary: s), Emps);
    permissions
      variables n: string; b: date; s: integer;
      { exists(e in Emps : e.ename = n and e.ebirth = b) } UpdateSalary(n, b, s);
      { Emps = {} } CloseEmpRel;
    interaction
      variables n: string; b: date; s: integer;
      ChangeSalary(n, b, s) >> (DeleteEmp(n, b); InsertEmp(n, b, s));
end object emp_rel;
"#;
        let spec = parse(src).unwrap();
        let rel = spec.object_class("emp_rel").unwrap();
        assert!(rel.singleton);
        assert_eq!(rel.body.valuation.len(), 3);
        assert!(rel.body.valuation[2].guard.is_some());
        assert_eq!(rel.body.permissions.len(), 2);
        assert_eq!(rel.body.interactions.len(), 1);
        let tx = &rel.body.interactions[0];
        assert_eq!(tx.trigger.event, "ChangeSalary");
        assert_eq!(tx.calls.len(), 2);
        assert_eq!(tx.calls[0].event, "DeleteEmp");
        assert_eq!(tx.calls[1].event, "InsertEmp");
    }

    #[test]
    fn parse_empl_impl_inheriting() {
        let src = r#"
object class EMPL_IMPL
  identification
    EmpName: string;
    EmpBirth: date;
  template
    inheriting emp_rel as employees;
    attributes
      derived Salary: int;
    events
      birth HireEmployee;
      derived IncreaseSalary(integer);
      death FireEmployee;
    derivation rules
      Salary = the(project|esalary|(select|ename = EmpName and ebirth = EmpBirth|(Emps)));
    interaction
      variables n: integer;
      HireEmployee >> employees.InsertEmp(self.EmpName, self.EmpBirth, 0);
      FireEmployee >> employees.DeleteEmp(self.EmpName, self.EmpBirth);
      IncreaseSalary(n) >> employees.UpdateSalary(self.EmpName, self.EmpBirth, self.Salary + n);
end object class EMPL_IMPL;
"#;
        let spec = parse(src).unwrap();
        let c = spec.object_class("EMPL_IMPL").unwrap();
        assert_eq!(c.inheriting.len(), 1);
        assert_eq!(c.inheriting[0].alias, "employees");
        assert_eq!(c.body.derivation_rules.len(), 1);
        assert_eq!(c.body.interactions.len(), 3);
        match &c.body.interactions[0].calls[0].target {
            TargetRef::Component(alias) => assert_eq!(alias, "employees"),
            other => panic!("expected component target, got {other:?}"),
        }
        assert!(c.body.attributes[0].derived);
        assert!(c.body.events[1].derived);
    }

    #[test]
    fn parse_interface_classes() {
        let src = r#"
interface class SAL_EMPLOYEE2
  encapsulating PERSON
  attributes
    Name: string;
    derived CurrentIncomePerYear: money;
    Salary: money;
  events
    derived IncreaseSalary;
  derivation rules
    CurrentIncomePerYear = Salary * 13.5;
  calling
    IncreaseSalary >> ChangeSalary(Salary * 1.1);
end interface class SAL_EMPLOYEE2;

interface class RESEARCH_EMPLOYEE
  encapsulating PERSON
  selection where self.Dept = 'Research';
  attributes
    Name: string;
    Salary: money;
  events
    ChangeSalary(money);
end interface class RESEARCH_EMPLOYEE;

interface class WORKS_FOR
  encapsulating PERSON P, DEPT D
  selection where P.surrogate in D.employees;
  attributes
    DeptName: string;
    PersonName: string;
  derivation rules
    DeptName = D.id;
    PersonName = P.name;
end interface class WORKS_FOR;
"#;
        let spec = parse(src).unwrap();
        let sal2 = spec.interface_class("SAL_EMPLOYEE2").unwrap();
        assert_eq!(sal2.encapsulating.len(), 1);
        assert_eq!(sal2.attributes.len(), 3);
        assert!(sal2.attributes[1].derived);
        assert_eq!(sal2.derivation_rules.len(), 1);
        assert_eq!(sal2.calling.len(), 1);

        let research = spec.interface_class("RESEARCH_EMPLOYEE").unwrap();
        assert!(research.selection.is_some());

        let works = spec.interface_class("WORKS_FOR").unwrap();
        assert_eq!(works.encapsulating.len(), 2);
        assert_eq!(works.encapsulating[0].var, "P");
        assert_eq!(works.encapsulating[1].var, "D");
        assert_eq!(works.derivation_rules.len(), 2);
    }

    #[test]
    fn parse_module() {
        let src = r#"
module COMPANY_MGMT
  conceptual schema PERSON, DEPT;
  internal schema emp_rel, EMPL_IMPL;
  external schema SALARY = SAL_EMPLOYEE, SAL_EMPLOYEE2;
  external schema RESEARCH = RESEARCH_EMPLOYEE;
  import CLOCK_MODULE.TIME;
end module COMPANY_MGMT;
"#;
        let spec = parse(src).unwrap();
        match &spec.items[0] {
            Item::Module(m) => {
                assert_eq!(m.name, "COMPANY_MGMT");
                assert_eq!(m.conceptual, vec!["PERSON", "DEPT"]);
                assert_eq!(m.internal, vec!["emp_rel", "EMPL_IMPL"]);
                assert_eq!(m.external.len(), 2);
                assert_eq!(m.external[0].0, "SALARY");
                assert_eq!(m.imports, vec![("CLOCK_MODULE".into(), "TIME".into())]);
            }
            other => panic!("expected module, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse("object class X\nevents birth b\nend object class X;").unwrap_err();
        assert!(err.line >= 2, "{err}");
        let err = parse("object class A end object class B;").unwrap_err();
        assert!(err.to_string().contains("mismatched block"), "{err}");
    }

    #[test]
    fn unexpected_top_level_item() {
        let err = parse("banana").unwrap_err();
        assert!(err.to_string().contains("expected `object`"));
    }
}

#[cfg(test)]
mod identity_literal_tests {
    use super::*;
    use troll_data::{MapEnv, ObjectId};

    #[test]
    fn identity_literals_parse_and_evaluate() {
        let t = parse_term(r#"|PERSON|("ada")"#).unwrap();
        let v = t.eval(&MapEnv::new()).unwrap();
        assert_eq!(
            v,
            Value::Id(ObjectId::new("PERSON", vec![Value::from("ada")]))
        );
        // compound keys
        let t = parse_term(r#"|PERSON|("ada", date(1960, 1, 1))"#).unwrap();
        match t.eval(&MapEnv::new()).unwrap() {
            Value::Id(id) => assert_eq!(id.key().len(), 2),
            other => panic!("expected identity, got {other}"),
        }
        // no-key singleton address
        let t = parse_term("|TheCompany|()").unwrap();
        assert_eq!(
            t.eval(&MapEnv::new()).unwrap(),
            Value::Id(ObjectId::new("TheCompany", vec![]))
        );
    }

    #[test]
    fn identity_literal_with_variable_key() {
        let t = parse_term("|PERSON|(n)").unwrap();
        let mut env = MapEnv::new();
        env.bind("n", Value::from("bob"));
        assert_eq!(
            t.eval(&env).unwrap(),
            Value::Id(ObjectId::new("PERSON", vec![Value::from("bob")]))
        );
    }

    #[test]
    fn identity_literals_round_trip_through_printer() {
        for src in [r#"|PERSON|("ada")"#, "|TheCompany|()", "|DEPT|(d, 3)"] {
            let t1 = parse_term(src).unwrap();
            let printed = crate::pretty::print_term(&t1);
            let t2 = parse_term(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
            assert_eq!(t1, t2);
        }
    }
}

#[cfg(test)]
mod library_reuse_tests {
    use super::*;

    const LIB: &str = r#"
library class COUNTER_LIKE
  identification key: string;
  template
    attributes total: int;
    events
      birth start;
      step(STEP_SORT);
    valuation
      variables n: STEP_SORT;
      [start] total = 0;
      [step(n)] total = total + WEIGHT * n;
end library class COUNTER_LIKE;
"#;

    #[test]
    fn library_instantiation_produces_object_classes() {
        let src = format!(
            "{LIB}
object class APPLES = COUNTER_LIKE with STEP_SORT = int, WEIGHT = 1;
object class CRATES = COUNTER_LIKE with STEP_SORT = nat, WEIGHT = 12;
"
        );
        let spec = parse(&src).unwrap();
        assert_eq!(spec.items.len(), 2, "library itself is not an item");
        let apples = spec.object_class("APPLES").unwrap();
        assert_eq!(apples.body.events.len(), 2);
        assert_eq!(apples.body.valuation.len(), 2);
        let crates = spec.object_class("CRATES").unwrap();
        // WEIGHT substituted into the valuation term
        let rule = &crates.body.valuation[1];
        assert!(rule.value.to_string().contains("12"), "{}", rule.value);
        // and the instantiated classes analyze + run
        let model = crate::analyze(&spec).unwrap();
        assert!(model.class("APPLES").is_some());
        assert!(model.class("CRATES").is_some());
    }

    #[test]
    fn multi_token_replacements() {
        let src = format!(
            "{LIB}
object class TOTES = COUNTER_LIKE with STEP_SORT = set(|ITEM|), WEIGHT = (2 + 3);
"
        );
        let spec = parse(&src).unwrap();
        let totes = spec.object_class("TOTES").unwrap();
        assert_eq!(totes.body.events[1].params[0], Sort::set(Sort::id("ITEM")));
    }

    #[test]
    fn unknown_library_and_unterminated_reported() {
        let err = parse("object class X = GHOST with A = 1;").unwrap_err();
        assert!(err.to_string().contains("unknown library class"), "{err}");
        let err = parse("library class L template events birth b;").unwrap_err();
        assert!(err.to_string().contains("not terminated"), "{err}");
        let err = parse("library class L events birth b; end library class M;").unwrap_err();
        assert!(err.to_string().contains("mismatched block"), "{err}");
    }

    #[test]
    fn instantiation_errors_cite_the_library() {
        // WEIGHT unsubstituted → unknown variable at analysis...
        // but a syntax-level breakage reports the instantiation context:
        let src = format!("{LIB}\nobject class BAD = COUNTER_LIKE with step = 5;\n");
        let err = parse(&src).unwrap_err();
        assert!(
            err.to_string().contains("in instantiation of library"),
            "{err}"
        );
    }

    #[test]
    fn singleton_instantiation() {
        let src = format!("{LIB}\nobject tally = COUNTER_LIKE with STEP_SORT = int, WEIGHT = 1;\n");
        let spec = parse(&src).unwrap();
        let tally = spec.object_class("tally").unwrap();
        assert!(tally.singleton);
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The front end never panics: arbitrary input produces either a
        /// Spec or a positioned error.
        #[test]
        fn parser_total_on_arbitrary_strings(s in "\\PC{0,200}") {
            let _ = parse(&s);
            let _ = parse_term(&s);
            let _ = parse_formula(&s);
        }

        /// Token-soup built from the language's own vocabulary — much
        /// likelier to reach deep parser states than raw unicode.
        #[test]
        fn parser_total_on_token_soup(words in proptest::collection::vec(
            prop_oneof![
                Just("object"), Just("class"), Just("end"), Just("template"),
                Just("events"), Just("attributes"), Just("valuation"),
                Just("permissions"), Just("interaction"), Just("derived"),
                Just("birth"), Just("death"), Just("view"), Just("of"),
                Just("module"), Just("interface"), Just("encapsulating"),
                Just("("), Just(")"), Just("["), Just("]"), Just("{"), Just("}"),
                Just(";"), Just(":"), Just(","), Just("."), Just("|"),
                Just("="), Just(">>"), Just("=>"), Just("+"), Just("-"),
                Just("x"), Just("DEPT"), Just("42"), Just("3.50"),
                Just("\"str\""), Just("sometime"), Just("after"),
                Just("for"), Just("all"), Just("exists"), Just("in"),
                Just("library"), Just("with"), Just("select"), Just("project"),
            ],
            0..60,
        )) {
            let s = words.join(" ");
            let _ = parse(&s);
            let _ = parse_term(&s);
            let _ = parse_formula(&s);
        }

        /// Lexer totality separately (positions never panic).
        #[test]
        fn lexer_total(s in "\\PC{0,300}") {
            let _ = crate::lex(&s);
        }
    }
}
