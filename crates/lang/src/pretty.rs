//! Pretty-printer: renders a parsed [`Spec`] back to TROLL concrete
//! syntax. `parse ∘ print ∘ parse = parse` (round-trip stability) is
//! property-tested against the shipped corpus.

use crate::ast::*;
use std::fmt::Write;
use troll_data::{Sort, Term};
use troll_temporal::{EventPattern, Formula};

/// Renders a specification as TROLL source text.
pub fn print_spec(spec: &Spec) -> String {
    let mut out = String::new();
    for item in &spec.items {
        match item {
            Item::ObjectClass(c) => print_object_class(&mut out, c),
            Item::InterfaceClass(c) => print_interface_class(&mut out, c),
            Item::GlobalInteractions(g) => print_globals(&mut out, g),
            Item::Module(m) => print_module(&mut out, m),
        }
        out.push('\n');
    }
    out
}

fn print_object_class(out: &mut String, c: &ObjectClassDecl) {
    if c.singleton {
        let _ = writeln!(out, "object {}", c.name);
    } else {
        let _ = writeln!(out, "object class {}", c.name);
    }
    if !c.identification.is_empty() {
        let _ = writeln!(out, "  identification");
        for p in &c.identification {
            let _ = writeln!(out, "    {}: {};", p.name, print_sort(&p.sort));
        }
    }
    if !c.data_types.is_empty() {
        let sorts: Vec<String> = c.data_types.iter().map(print_sort).collect();
        let _ = writeln!(out, "  data types {};", sorts.join(", "));
    }
    if let Some(base) = &c.view_of {
        let _ = writeln!(out, "  view of {base};");
    }
    let _ = writeln!(out, "  template");
    for inh in &c.inheriting {
        let _ = writeln!(out, "    inheriting {} as {};", inh.object, inh.alias);
    }
    print_body(out, &c.body);
    if c.singleton {
        let _ = writeln!(out, "end object {};", c.name);
    } else {
        let _ = writeln!(out, "end object class {};", c.name);
    }
}

fn print_body(out: &mut String, b: &TemplateBody) {
    if !b.attributes.is_empty() {
        let _ = writeln!(out, "    attributes");
        for a in &b.attributes {
            let derived = if a.derived { "derived " } else { "" };
            let params = if a.params.is_empty() {
                String::new()
            } else {
                let ps: Vec<String> = a.params.iter().map(print_sort).collect();
                format!("({})", ps.join(", "))
            };
            let _ = writeln!(
                out,
                "      {derived}{}{params}: {};",
                a.name,
                print_sort(&a.sort)
            );
        }
    }
    if !b.components.is_empty() {
        let _ = writeln!(out, "    components");
        for c in &b.components {
            let rendered = match c.kind {
                ComponentKind::Single => c.class.clone(),
                ComponentKind::List => format!("LIST({})", c.class),
                ComponentKind::Set => format!("SET({})", c.class),
            };
            let _ = writeln!(out, "      {}: {rendered};", c.name);
        }
    }
    if !b.events.is_empty() {
        let _ = writeln!(out, "    events");
        for e in &b.events {
            let marker = match e.marker {
                EventMarker::Birth => "birth ",
                EventMarker::Death => "death ",
                EventMarker::Active => "active ",
                EventMarker::Update => "",
            };
            let derived = if e.derived { "derived " } else { "" };
            let name = match &e.alias_of {
                Some((base, ev)) => format!("{base}.{ev}"),
                None => e.name.clone(),
            };
            let params = if e.params.is_empty() {
                String::new()
            } else {
                let ps: Vec<String> = e.params.iter().map(print_sort).collect();
                format!("({})", ps.join(", "))
            };
            let _ = writeln!(out, "      {marker}{derived}{name}{params};");
        }
    }
    if !b.valuation.is_empty() {
        let _ = writeln!(out, "    valuation");
        for v in &b.valuation {
            let guard = match &v.guard {
                Some(g) => format!("{{ {} }} => ", print_term(g)),
                None => String::new(),
            };
            let params = if v.params.is_empty() {
                String::new()
            } else {
                format!("({})", v.params.join(", "))
            };
            let _ = writeln!(
                out,
                "      {guard}[{}{params}] {} = {};",
                v.event,
                v.attribute,
                print_term(&v.value)
            );
        }
    }
    if !b.derivation_rules.is_empty() {
        let _ = writeln!(out, "    derivation rules");
        for d in &b.derivation_rules {
            let params = if d.params.is_empty() {
                String::new()
            } else {
                format!("({})", d.params.join(", "))
            };
            let _ = writeln!(
                out,
                "      {}{params} = {};",
                d.attribute,
                print_term(&d.value)
            );
        }
    }
    if !b.permissions.is_empty() {
        let _ = writeln!(out, "    permissions");
        for p in &b.permissions {
            let params = if p.params.is_empty() {
                String::new()
            } else {
                format!("({})", p.params.join(", "))
            };
            let _ = writeln!(
                out,
                "      {{ {} }} {}{params};",
                print_formula(&p.formula),
                p.event
            );
        }
    }
    if !b.obligations.is_empty() {
        let _ = writeln!(out, "    obligations");
        for o in &b.obligations {
            let _ = writeln!(out, "      {};", print_formula(o));
        }
    }
    if !b.constraints.is_empty() {
        let _ = writeln!(out, "    constraints");
        for c in &b.constraints {
            let kw = match c.kind {
                ConstraintKindAst::Static => "static",
                ConstraintKindAst::Dynamic => "dynamic",
                ConstraintKindAst::Initially => "initially",
            };
            let _ = writeln!(out, "      {kw} {};", print_formula(&c.formula));
        }
    }
    if !b.interactions.is_empty() {
        let _ = writeln!(out, "    interaction");
        for rule in &b.interactions {
            let _ = writeln!(out, "      {};", print_calling_rule(rule));
        }
    }
}

fn print_interface_class(out: &mut String, c: &InterfaceClassDecl) {
    let _ = writeln!(out, "interface class {}", c.name);
    let bases: Vec<String> = c
        .encapsulating
        .iter()
        .map(|b| {
            if b.var == b.class {
                b.class.clone()
            } else {
                format!("{} {}", b.class, b.var)
            }
        })
        .collect();
    let _ = writeln!(out, "  encapsulating {}", bases.join(", "));
    if let Some(sel) = &c.selection {
        let _ = writeln!(out, "  selection where {};", print_term(sel));
    }
    if !c.attributes.is_empty() {
        let _ = writeln!(out, "  attributes");
        for a in &c.attributes {
            let derived = if a.derived { "derived " } else { "" };
            let _ = writeln!(out, "    {derived}{}: {};", a.name, print_sort(&a.sort));
        }
    }
    if !c.events.is_empty() {
        let _ = writeln!(out, "  events");
        for e in &c.events {
            let derived = if e.derived { "derived " } else { "" };
            let params = if e.params.is_empty() {
                String::new()
            } else {
                let ps: Vec<String> = e.params.iter().map(print_sort).collect();
                format!("({})", ps.join(", "))
            };
            let _ = writeln!(out, "    {derived}{}{params};", e.name);
        }
    }
    if !c.derivation_rules.is_empty() {
        let _ = writeln!(out, "  derivation rules");
        for d in &c.derivation_rules {
            let _ = writeln!(out, "    {} = {};", d.attribute, print_term(&d.value));
        }
    }
    if !c.calling.is_empty() {
        let _ = writeln!(out, "  calling");
        for rule in &c.calling {
            let _ = writeln!(out, "    {};", print_calling_rule(rule));
        }
    }
    let _ = writeln!(out, "end interface class {};", c.name);
}

fn print_globals(out: &mut String, g: &GlobalInteractionsDecl) {
    let _ = writeln!(out, "global interactions");
    if !g.variables.is_empty() {
        let vars: Vec<String> = g
            .variables
            .iter()
            .map(|p| format!("{}: {};", p.name, print_sort(&p.sort)))
            .collect();
        let _ = writeln!(out, "  variables {}", vars.join(" "));
    }
    for rule in &g.rules {
        let _ = writeln!(out, "  {};", print_calling_rule(rule));
    }
    let _ = writeln!(out, "end global interactions;");
}

fn print_module(out: &mut String, m: &ModuleDecl) {
    let _ = writeln!(out, "module {}", m.name);
    if !m.conceptual.is_empty() {
        let _ = writeln!(out, "  conceptual schema {};", m.conceptual.join(", "));
    }
    if !m.internal.is_empty() {
        let _ = writeln!(out, "  internal schema {};", m.internal.join(", "));
    }
    for (name, members) in &m.external {
        let _ = writeln!(out, "  external schema {name} = {};", members.join(", "));
    }
    for (module, schema) in &m.imports {
        let _ = writeln!(out, "  import {module}.{schema};");
    }
    let _ = writeln!(out, "end module {};", m.name);
}

fn print_calling_rule(rule: &CallingRule) -> String {
    let trigger = print_event_ref(&rule.trigger);
    if rule.calls.len() == 1 {
        format!("{trigger} >> {}", print_event_ref(&rule.calls[0]))
    } else {
        let calls: Vec<String> = rule.calls.iter().map(print_event_ref).collect();
        format!("{trigger} >> ({})", calls.join("; "))
    }
}

fn print_event_ref(e: &EventRef) -> String {
    let target = match &e.target {
        TargetRef::Local => String::new(),
        TargetRef::Component(alias) => format!("{alias}."),
        TargetRef::Instance { class, id } => format!("{class}({}).", print_term(id)),
    };
    let args = if e.args.is_empty() {
        String::new()
    } else {
        let rendered: Vec<String> = e.args.iter().map(print_term).collect();
        format!("({})", rendered.join(", "))
    };
    format!("{target}{}{args}", e.event)
}

/// Renders a sort in parseable TROLL syntax (identity sorts as `|C|`).
pub fn print_sort(sort: &Sort) -> String {
    match sort {
        Sort::Bool => "bool".into(),
        Sort::Int => "int".into(),
        Sort::Nat => "nat".into(),
        Sort::String => "string".into(),
        Sort::Date => "date".into(),
        Sort::Money => "money".into(),
        Sort::Id(c) => format!("|{c}|"),
        Sort::Set(e) => format!("set({})", print_sort(e)),
        Sort::List(e) => format!("list({})", print_sort(e)),
        Sort::Map(k, v) => format!("map({}, {})", print_sort(k), print_sort(v)),
        Sort::Tuple(fields) => {
            let fs: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, print_sort(&f.sort)))
                .collect();
            format!("tuple({})", fs.join(", "))
        }
        Sort::Optional(inner) => format!("optional({})", print_sort(inner)),
    }
}

/// Renders a term in parseable TROLL syntax. Infix operators are fully
/// parenthesized (correct and unambiguous, at the cost of some noise).
pub fn print_term(t: &Term) -> String {
    use troll_data::Op;
    match t {
        Term::Const(v) => print_value(v),
        Term::Var(name) => {
            if name == "self" {
                "self".into()
            } else {
                name.clone()
            }
        }
        Term::Apply(troll_data::Op::MkId, args) if args.len() == 2 => {
            if let (Term::Const(troll_data::Value::Str(class)), Term::MkList(keys)) =
                (&args[0], &args[1])
            {
                let ks: Vec<String> = keys.iter().map(print_term).collect();
                format!("|{class}|({})", ks.join(", "))
            } else {
                format!("mkid({}, {})", print_term(&args[0]), print_term(&args[1]))
            }
        }
        Term::Apply(op, args) => {
            let infix = matches!(
                op,
                Op::And
                    | Op::Or
                    | Op::Eq
                    | Op::Neq
                    | Op::Lt
                    | Op::Le
                    | Op::Gt
                    | Op::Ge
                    | Op::Add
                    | Op::Sub
                    | Op::Mul
                    | Op::In
                    | Op::Subset
            );
            if infix && args.len() == 2 {
                format!(
                    "({} {} {})",
                    print_term(&args[0]),
                    op.name(),
                    print_term(&args[1])
                )
            } else if *op == Op::Not && args.len() == 1 {
                format!("not({})", print_term(&args[0]))
            } else {
                let rendered: Vec<String> = args.iter().map(print_term).collect();
                format!("{}({})", op.name(), rendered.join(", "))
            }
        }
        Term::Field(base, field) => format!("{}.{field}", print_term(base)),
        Term::MkTuple(fields) => {
            let fs: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n}: {}", print_term(v)))
                .collect();
            format!("tuple({})", fs.join(", "))
        }
        Term::MkSet(elems) => {
            let es: Vec<String> = elems.iter().map(print_term).collect();
            format!("{{{}}}", es.join(", "))
        }
        Term::MkList(elems) => {
            let es: Vec<String> = elems.iter().map(print_term).collect();
            format!("[{}]", es.join(", "))
        }
        Term::IfThenElse(c, a, b) => format!(
            "if {} then {} else {}",
            print_term(c),
            print_term(a),
            print_term(b)
        ),
        Term::Quant {
            q,
            var,
            domain,
            body,
        } => {
            let kw = match q {
                troll_data::Quantifier::Forall => "for all",
                troll_data::Quantifier::Exists => "exists",
            };
            format!(
                "{kw}({var} in {} : {})",
                print_term(domain),
                print_term(body)
            )
        }
        Term::Let { var, value, body } => {
            // `let` has no surface syntax in TROLL; inline by substitution
            print_term(&body.subst(var, value))
        }
        Term::Select { rel, pred } => {
            format!("select|{}|({})", print_term(pred), print_term(rel))
        }
        Term::Project { rel, fields } => {
            format!("project|{}|({})", fields.join(", "), print_term(rel))
        }
        Term::The(rel) => format!("the({})", print_term(rel)),
    }
}

fn print_value(v: &troll_data::Value) -> String {
    use troll_data::Value;
    match v {
        Value::Undefined => "undefined".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => {
            if *i < 0 {
                format!("({i})")
            } else {
                i.to_string()
            }
        }
        Value::Str(s) => format!("{s:?}"),
        Value::Date(d) => format!("date({}, {}, {})", d.year(), d.month(), d.day()),
        Value::Money(m) => {
            let cents = m.cents();
            if cents < 0 {
                format!("neg({}.{:02})", -cents / 100, (-cents) % 100)
            } else {
                format!("{}.{:02}", cents / 100, cents % 100)
            }
        }
        Value::Set(elems) => {
            let es: Vec<String> = elems.iter().map(print_value).collect();
            format!("{{{}}}", es.join(", "))
        }
        Value::List(elems) => {
            let es: Vec<String> = elems.iter().map(print_value).collect();
            format!("[{}]", es.join(", "))
        }
        Value::Tuple(fields) => {
            let fs: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n}: {}", print_value(v)))
                .collect();
            format!("tuple({})", fs.join(", "))
        }
        Value::Id(id) => {
            let ks: Vec<String> = id.key().iter().map(|k| print_value(&k.clone())).collect();
            format!("|{}|({})", id.class(), ks.join(", "))
        }
        // maps have no literal syntax; render as data
        other => other.to_string(),
    }
}

/// Renders a temporal formula in parseable TROLL syntax.
pub fn print_formula(f: &Formula) -> String {
    match f {
        Formula::Pred(t) => print_term(t),
        Formula::Occurs(p) => format!("occurs({})", print_pattern(p)),
        Formula::After(p) => format!("after({})", print_pattern(p)),
        Formula::Not(g) => format!("not {}", atom(g)),
        Formula::And(a, b) => format!("({} and {})", print_formula(a), print_formula(b)),
        Formula::Or(a, b) => format!("({} or {})", print_formula(a), print_formula(b)),
        Formula::Implies(a, b) => format!("({} => {})", print_formula(a), print_formula(b)),
        Formula::Sometime(g) => format!("sometime({})", print_formula(g)),
        Formula::AlwaysPast(g) => format!("always({})", print_formula(g)),
        Formula::Previous(g) => format!("previous({})", print_formula(g)),
        Formula::Since(a, b) => format!("({} since {})", atom(a), atom(b)),
        Formula::Eventually(g) => format!("eventually({})", print_formula(g)),
        Formula::Henceforth(g) => format!("henceforth({})", print_formula(g)),
        Formula::Quant {
            q,
            var,
            domain,
            body,
        } => {
            let kw = match q {
                troll_data::Quantifier::Forall => "for all",
                troll_data::Quantifier::Exists => "exists",
            };
            // population(C) domains print back as the `P: C` form
            let domain_str = match domain {
                Term::Var(v) if v.starts_with("population(") && v.ends_with(')') => {
                    let class = &v["population(".len()..v.len() - 1];
                    return format!("{kw}({var}: {class} : {})", print_formula(body));
                }
                other => print_term(other),
            };
            format!("{kw}({var} in {domain_str} : {})", print_formula(body))
        }
    }
}

/// Wraps non-atomic formulas in parentheses for `since`/`not` operands.
fn atom(f: &Formula) -> String {
    match f {
        Formula::Pred(_) | Formula::Occurs(_) | Formula::After(_) => print_formula(f),
        Formula::Sometime(_)
        | Formula::AlwaysPast(_)
        | Formula::Previous(_)
        | Formula::Eventually(_)
        | Formula::Henceforth(_) => print_formula(f),
        other => format!("({})", print_formula(other)),
    }
}

fn print_pattern(p: &EventPattern) -> String {
    if p.args.is_empty() {
        return p.name.clone();
    }
    let args: Vec<String> = p
        .args
        .iter()
        .map(|a| match a {
            Some(t) => print_term(t),
            None => "_".into(),
        })
        .collect();
    format!("{}({})", p.name, args.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_formula, parse_term};

    #[test]
    fn terms_round_trip() {
        for src in [
            "insert(P, employees)",
            "(a + b) * 2",
            "{1, 2, 3}",
            "[x, y]",
            "tuple(ename: n, esalary: s)",
            "if defined(x) then x + 1 else 0",
            "self.EmpName",
            "the(project|esalary|(select|(ename = n)|(Emps)))",
            "exists(e in Emps : (e.ename = n))",
        ] {
            let t1 = parse_term(src).unwrap();
            let printed = print_term(&t1);
            let t2 = parse_term(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(t1, t2, "round trip changed `{src}` → `{printed}`");
        }
    }

    #[test]
    fn formulas_round_trip() {
        for src in [
            "sometime(after(hire(P)))",
            "always(not occurs(closure))",
            "(x >= 1 since occurs(reset))",
            "for all(P: PERSON : sometime((P in employees)) => sometime(after(fire(P))))",
            "eventually(occurs(done))",
            "after(hire(_))",
        ] {
            let f1 = parse_formula(src).unwrap();
            let printed = print_formula(&f1);
            let f2 = parse_formula(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(f1, f2, "round trip changed `{src}` → `{printed}`");
        }
    }

    #[test]
    fn negative_literals_round_trip() {
        let t1 = parse_term("0 - 5").unwrap();
        let printed = print_term(&t1);
        assert_eq!(parse_term(&printed).unwrap(), t1);
        let neg = Term::constant(-3i64);
        assert_eq!(parse_term(&print_term(&neg)).unwrap(), neg);
    }

    #[test]
    fn values_print_parseably() {
        use troll_data::{Date, Money, Value};
        for v in [
            Value::Undefined,
            Value::from(true),
            Value::from(42),
            Value::from(-42),
            Value::from("research dept"),
            Value::Date(Date::new(1991, 10, 16).unwrap()),
            Value::Money(Money::from_major(5000)),
            Value::Money(Money::from_cents(-5)),
            Value::set_of(vec![Value::from(1), Value::from(2)]),
            Value::tuple_of(vec![("a", Value::from(1))]),
        ] {
            let printed = print_term(&Term::Const(v.clone()));
            let reparsed = parse_term(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            let evaluated = reparsed.eval(&troll_data::MapEnv::new()).unwrap();
            assert_eq!(evaluated, v, "value changed through printing: `{printed}`");
        }
    }

    #[test]
    fn let_terms_print_by_substitution() {
        let t = Term::let_in(
            "x",
            Term::constant(5i64),
            Term::apply(troll_data::Op::Add, vec![Term::var("x"), Term::var("y")]),
        );
        assert_eq!(print_term(&t), "(5 + y)");
    }
}

/// Corpus round-trip: parse → print → parse is the identity on the AST
/// for every shipped spec. Kept in a separate test module so the corpus
/// lives next to the other corpus tests.
#[cfg(test)]
mod corpus_round_trip {
    use super::print_spec;
    use crate::parse;

    #[test]
    fn shipped_corpus_round_trips() {
        // the corpus lives in the facade crate; embed the same sources
        // here via the workspace-relative path
        for (name, path) in [
            ("dept", "../../specs/dept.troll"),
            ("company", "../../specs/company.troll"),
            ("employment", "../../specs/employment.troll"),
            ("views", "../../specs/views.troll"),
            ("modules", "../../specs/modules.troll"),
        ] {
            let src = std::fs::read_to_string(
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path),
            )
            .unwrap_or_else(|e| panic!("reading {name}: {e}"));
            let ast1 = parse(&src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let printed = print_spec(&ast1);
            let ast2 = parse(&printed)
                .unwrap_or_else(|e| panic!("reparsing printed {name}: {e}\n---\n{printed}"));
            assert_eq!(ast1, ast2, "round trip changed the {name} spec");
        }
    }
}
