//! Token definitions for the TROLL lexer.

use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are contextual: TROLL freely uses
    /// words like `variables` as section headers; the parser decides).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Money literal (`123.45`).
    Money(i64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `>>` — event calling.
    Calls,
    /// `=>` — implication / guarded rule arrow.
    Implies,
    /// `_` — wildcard in event patterns.
    Underscore,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Money(c) => write!(f, "money {}.{:02}", c / 100, c % 100),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Neq => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Calls => write!(f, "`>>`"),
            TokenKind::Implies => write!(f, "`=>`"),
            TokenKind::Underscore => write!(f, "`_`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind (and payload).
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, line: usize, column: usize) -> Self {
        Token { kind, line, column }
    }

    /// The identifier payload, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given (case-sensitive) keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.ident() == Some(kw)
    }

    /// Whether this token matches the keyword case-insensitively
    /// (TROLL's examples write both `LIST(DEPT)` and `set(PERSON)`).
    pub fn is_kw_ci(&self, kw: &str) -> bool {
        self.ident().is_some_and(|s| s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_helpers() {
        let t = Token::new(TokenKind::Ident("LIST".into()), 1, 1);
        assert!(t.is_kw("LIST"));
        assert!(!t.is_kw("list"));
        assert!(t.is_kw_ci("list"));
        assert_eq!(t.ident(), Some("LIST"));
        let p = Token::new(TokenKind::Semi, 1, 2);
        assert_eq!(p.ident(), None);
        assert!(!p.is_kw("x"));
    }

    #[test]
    fn display() {
        assert_eq!(TokenKind::Ident("hire".into()).to_string(), "`hire`");
        assert_eq!(TokenKind::Calls.to_string(), "`>>`");
        assert_eq!(TokenKind::Money(1250).to_string(), "money 12.50");
    }
}
