//! Typed observability events emitted by the runtime.

/// Which evaluation path answered a permission or constraint check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPath {
    /// Answered by an incremental monitor peek (O(|φ|)).
    Monitored,
    /// Answered by the reference history-scan evaluator
    /// (O(|trace|·|φ|)) — the fallback for quantified/future/open
    /// formulas, role histories and a disabled cache.
    Scan,
}

impl CheckPath {
    /// Stable lower-case label, used in traces and metric names.
    pub fn label(self) -> &'static str {
        match self {
            CheckPath::Monitored => "monitored",
            CheckPath::Scan => "scan",
        }
    }
}

/// One observable runtime event. Events are emitted only when an
/// [`crate::Observer`] is enabled, so owned `String` fields are fine:
/// the disabled path never constructs them.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A step began executing (before the calling closure).
    StepStarted {
        /// Sequence number of the attempt (counts committed and
        /// rolled-back steps alike).
        step: u64,
        /// Rendering of the initiating occurrence (`id[class].event`).
        initial: String,
    },
    /// An occurrence was scheduled into the step's synchronous closure
    /// (the initiating event and everything it calls).
    EventCalled {
        /// Instance identity.
        instance: String,
        /// Context class of the occurrence.
        ctx_class: String,
        /// Event name.
        event: String,
    },
    /// A permission precondition was evaluated.
    PermissionChecked {
        /// Instance identity.
        instance: String,
        /// The guarded event.
        event: String,
        /// Monitored or scan path.
        path: CheckPath,
        /// Whether the permission granted the event.
        granted: bool,
    },
    /// A constraint was evaluated on the post-state.
    ConstraintChecked {
        /// Instance identity.
        instance: String,
        /// Monitored or scan path.
        path: CheckPath,
        /// Whether the constraint held.
        satisfied: bool,
    },
    /// Valuation rules of one occurrence were applied.
    ValuationApplied {
        /// Instance identity.
        instance: String,
        /// The event whose rules ran.
        event: String,
        /// Number of attribute updates applied.
        updates: usize,
    },
    /// Delta accounting for one occurrence's valuation rules: how many
    /// collection-valued rules were applied incrementally (path-copied
    /// onto the shared pre-state handle) versus recomputed in full
    /// despite having a delta-able shape (oracle / forced-recompute
    /// configurations). Emitted only when at least one field is
    /// nonzero.
    ValuationDelta {
        /// Instance identity.
        instance: String,
        /// The event whose rules ran.
        event: String,
        /// Rules applied through delta ops.
        delta: usize,
        /// Delta-shaped rules evaluated by full recompute.
        recomputed: usize,
    },
    /// A committed step was fed to the instance's live monitors.
    MonitorFed {
        /// Instance identity.
        instance: String,
        /// Number of active monitors that consumed the step.
        monitors: usize,
    },
    /// The step committed.
    StepCommitted {
        /// Sequence number of the attempt.
        step: u64,
        /// Occurrences in the committed closure.
        occurrences: usize,
        /// Wall-clock duration of the step, monotonic-clock timed.
        nanos: u64,
    },
    /// The step rolled back (permission refusal, constraint violation,
    /// or any other error) leaving the base unchanged.
    StepRolledBack {
        /// Sequence number of the attempt.
        step: u64,
        /// Human-readable rollback reason.
        reason: String,
        /// Wall-clock duration until the rollback.
        nanos: u64,
    },
    /// A submitted event was routed to a shard inbox; allocates the
    /// event's causal span id (one span per submitted event, stable
    /// across speculation, conflict re-runs, and commit).
    EventRouted {
        /// Causal span id of the submitted event.
        span: u64,
        /// Shard index the event was routed to.
        shard: usize,
        /// Position within the submitted batch (== commit order).
        batch_index: usize,
        /// Rendering of the occurrence (`id[class].event`).
        initial: String,
    },
    /// A shard worker began speculating the spanned event against the
    /// frozen pre-batch snapshot.
    SpeculationStarted {
        /// Causal span id.
        span: u64,
        /// Shard index doing the speculation.
        shard: usize,
    },
    /// A shard worker finished speculating the spanned event.
    SpeculationFinished {
        /// Causal span id.
        span: u64,
        /// Shard index that speculated.
        shard: usize,
        /// Whether the speculation produced a committable step.
        ok: bool,
        /// Wall-clock duration of the speculation.
        nanos: u64,
    },
    /// A speculation was invalidated at commit time (its read set or
    /// lifecycle assumptions overlapped an earlier commit in the batch)
    /// and the event will re-run sequentially.
    SpeculationConflict {
        /// Causal span id.
        span: u64,
        /// What invalidated it (dirty read set or lifecycle overlap).
        reason: String,
    },
    /// Commit-time resolution of a causal span: links the span to the
    /// step attempt that consumed it (or to no attempt at all for
    /// events that failed before an attempt was allocated).
    SpanClosed {
        /// Causal span id.
        span: u64,
        /// The step-attempt sequence number the span resolved to, if
        /// one was allocated (`StepCommitted`/`StepRolledBack` carry
        /// the same number).
        step: Option<u64>,
        /// `"committed"`, `"rolled_back"`, or `"rejected"` (failed
        /// before any attempt, e.g. unknown event).
        outcome: String,
    },
    /// The durable store appended a committed step to the WAL.
    StoreAppended {
        /// Step-attempt sequence number of the committed step.
        step: u64,
        /// Log sequence number assigned by the WAL.
        seq: u64,
    },
    /// The durable store fsynced the WAL.
    StoreFsynced {
        /// Step-attempt sequence number that triggered the sync.
        step: u64,
        /// Wall-clock duration of the sync.
        nanos: u64,
    },
    /// The durable store wrote a snapshot.
    SnapshotWritten {
        /// Log sequence number the snapshot covers up to (exclusive).
        seq: u64,
        /// Wall-clock duration of the snapshot write.
        nanos: u64,
    },
    /// A world was recovered from a durable directory.
    StoreRecovered {
        /// Log sequence number of the snapshot used, if any.
        snapshot_seq: Option<u64>,
        /// Committed steps replayed from the WAL tail.
        replayed: u64,
        /// Bytes of torn/corrupt WAL tail discarded.
        truncated_bytes: u64,
        /// Next log sequence number after recovery.
        next_seq: u64,
    },
    /// A one-shot evaluator fallback fired (previously a bare
    /// `eprintln!`): the scan evaluator standing in for an
    /// unmonitorable temporal formula, or the tree walk standing in
    /// for an uncompilable VM term.
    FallbackNoted {
        /// Which fallback: `"temporal.scan_fallback"` or
        /// `"vm.fallback"` (matches the global counter name).
        fallback: String,
        /// The formula or term that fell back.
        what: String,
        /// Why it fell back.
        detail: String,
    },
}

impl ObsEvent {
    /// Stable kind tag, used as the `"ev"` field in JSON-lines traces.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::StepStarted { .. } => "step_started",
            ObsEvent::EventCalled { .. } => "event_called",
            ObsEvent::PermissionChecked { .. } => "permission_checked",
            ObsEvent::ConstraintChecked { .. } => "constraint_checked",
            ObsEvent::ValuationApplied { .. } => "valuation_applied",
            ObsEvent::ValuationDelta { .. } => "valuation_delta",
            ObsEvent::MonitorFed { .. } => "monitor_fed",
            ObsEvent::StepCommitted { .. } => "step_committed",
            ObsEvent::StepRolledBack { .. } => "step_rolled_back",
            ObsEvent::EventRouted { .. } => "event_routed",
            ObsEvent::SpeculationStarted { .. } => "speculation_started",
            ObsEvent::SpeculationFinished { .. } => "speculation_finished",
            ObsEvent::SpeculationConflict { .. } => "speculation_conflict",
            ObsEvent::SpanClosed { .. } => "span_closed",
            ObsEvent::StoreAppended { .. } => "store_appended",
            ObsEvent::StoreFsynced { .. } => "store_fsynced",
            ObsEvent::SnapshotWritten { .. } => "snapshot_written",
            ObsEvent::StoreRecovered { .. } => "store_recovered",
            ObsEvent::FallbackNoted { .. } => "fallback_noted",
        }
    }

    /// Renders the event as one JSON object (no trailing newline). The
    /// encoding is hand-rolled — the workspace is hermetic — but emits
    /// strict JSON: strings are escaped, numbers are plain integers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ev\":");
        push_json_str(&mut out, self.kind());
        match self {
            ObsEvent::StepStarted { step, initial } => {
                push_field_u64(&mut out, "step", *step);
                push_field_str(&mut out, "initial", initial);
            }
            ObsEvent::EventCalled {
                instance,
                ctx_class,
                event,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "class", ctx_class);
                push_field_str(&mut out, "event", event);
            }
            ObsEvent::PermissionChecked {
                instance,
                event,
                path,
                granted,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "event", event);
                push_field_str(&mut out, "path", path.label());
                push_field_bool(&mut out, "granted", *granted);
            }
            ObsEvent::ConstraintChecked {
                instance,
                path,
                satisfied,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "path", path.label());
                push_field_bool(&mut out, "satisfied", *satisfied);
            }
            ObsEvent::ValuationApplied {
                instance,
                event,
                updates,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "event", event);
                push_field_u64(&mut out, "updates", *updates as u64);
            }
            ObsEvent::ValuationDelta {
                instance,
                event,
                delta,
                recomputed,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "event", event);
                push_field_u64(&mut out, "delta", *delta as u64);
                push_field_u64(&mut out, "recomputed", *recomputed as u64);
            }
            ObsEvent::MonitorFed { instance, monitors } => {
                push_field_str(&mut out, "instance", instance);
                push_field_u64(&mut out, "monitors", *monitors as u64);
            }
            ObsEvent::StepCommitted {
                step,
                occurrences,
                nanos,
            } => {
                push_field_u64(&mut out, "step", *step);
                push_field_u64(&mut out, "occurrences", *occurrences as u64);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::StepRolledBack {
                step,
                reason,
                nanos,
            } => {
                push_field_u64(&mut out, "step", *step);
                push_field_str(&mut out, "reason", reason);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::EventRouted {
                span,
                shard,
                batch_index,
                initial,
            } => {
                push_field_u64(&mut out, "span", *span);
                push_field_u64(&mut out, "shard", *shard as u64);
                push_field_u64(&mut out, "batch_index", *batch_index as u64);
                push_field_str(&mut out, "initial", initial);
            }
            ObsEvent::SpeculationStarted { span, shard } => {
                push_field_u64(&mut out, "span", *span);
                push_field_u64(&mut out, "shard", *shard as u64);
            }
            ObsEvent::SpeculationFinished {
                span,
                shard,
                ok,
                nanos,
            } => {
                push_field_u64(&mut out, "span", *span);
                push_field_u64(&mut out, "shard", *shard as u64);
                push_field_bool(&mut out, "ok", *ok);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::SpeculationConflict { span, reason } => {
                push_field_u64(&mut out, "span", *span);
                push_field_str(&mut out, "reason", reason);
            }
            ObsEvent::SpanClosed {
                span,
                step,
                outcome,
            } => {
                push_field_u64(&mut out, "span", *span);
                push_field_opt_u64(&mut out, "step", *step);
                push_field_str(&mut out, "outcome", outcome);
            }
            ObsEvent::StoreAppended { step, seq } => {
                push_field_u64(&mut out, "step", *step);
                push_field_u64(&mut out, "seq", *seq);
            }
            ObsEvent::StoreFsynced { step, nanos } => {
                push_field_u64(&mut out, "step", *step);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::SnapshotWritten { seq, nanos } => {
                push_field_u64(&mut out, "seq", *seq);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::StoreRecovered {
                snapshot_seq,
                replayed,
                truncated_bytes,
                next_seq,
            } => {
                push_field_opt_u64(&mut out, "snapshot_seq", *snapshot_seq);
                push_field_u64(&mut out, "replayed", *replayed);
                push_field_u64(&mut out, "truncated_bytes", *truncated_bytes);
                push_field_u64(&mut out, "next_seq", *next_seq);
            }
            ObsEvent::FallbackNoted {
                fallback,
                what,
                detail,
            } => {
                push_field_str(&mut out, "fallback", fallback);
                push_field_str(&mut out, "what", what);
                push_field_str(&mut out, "detail", detail);
            }
        }
        out.push('}');
        out
    }
}

fn push_field_str(out: &mut String, key: &str, value: &str) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, value);
}

fn push_field_u64(out: &mut String, key: &str, value: u64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn push_field_opt_u64(out: &mut String, key: &str, value: Option<u64>) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    match value {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
}

fn push_field_bool(out: &mut String, key: &str, value: bool) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(if value { "true" } else { "false" });
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_strict() {
        let ev = ObsEvent::PermissionChecked {
            instance: "|DEPT|(\"Toys\")".into(),
            event: "fire".into(),
            path: CheckPath::Monitored,
            granted: false,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"permission_checked","instance":"|DEPT|(\"Toys\")","event":"fire","path":"monitored","granted":false}"#
        );
    }

    #[test]
    fn control_characters_escaped() {
        let ev = ObsEvent::StepRolledBack {
            step: 3,
            reason: "line1\nline2\u{1}".into(),
            nanos: 42,
        };
        let json = ev.to_json();
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\\u0001"), "{json}");
        assert!(!json.contains('\n'), "one physical line: {json}");
    }

    #[test]
    fn every_kind_is_distinct() {
        let kinds = [
            ObsEvent::StepStarted {
                step: 0,
                initial: String::new(),
            }
            .kind(),
            ObsEvent::EventCalled {
                instance: String::new(),
                ctx_class: String::new(),
                event: String::new(),
            }
            .kind(),
            ObsEvent::PermissionChecked {
                instance: String::new(),
                event: String::new(),
                path: CheckPath::Scan,
                granted: true,
            }
            .kind(),
            ObsEvent::ConstraintChecked {
                instance: String::new(),
                path: CheckPath::Scan,
                satisfied: true,
            }
            .kind(),
            ObsEvent::ValuationApplied {
                instance: String::new(),
                event: String::new(),
                updates: 0,
            }
            .kind(),
            ObsEvent::ValuationDelta {
                instance: String::new(),
                event: String::new(),
                delta: 0,
                recomputed: 0,
            }
            .kind(),
            ObsEvent::MonitorFed {
                instance: String::new(),
                monitors: 0,
            }
            .kind(),
            ObsEvent::StepCommitted {
                step: 0,
                occurrences: 0,
                nanos: 0,
            }
            .kind(),
            ObsEvent::StepRolledBack {
                step: 0,
                reason: String::new(),
                nanos: 0,
            }
            .kind(),
            ObsEvent::EventRouted {
                span: 0,
                shard: 0,
                batch_index: 0,
                initial: String::new(),
            }
            .kind(),
            ObsEvent::SpeculationStarted { span: 0, shard: 0 }.kind(),
            ObsEvent::SpeculationFinished {
                span: 0,
                shard: 0,
                ok: true,
                nanos: 0,
            }
            .kind(),
            ObsEvent::SpeculationConflict {
                span: 0,
                reason: String::new(),
            }
            .kind(),
            ObsEvent::SpanClosed {
                span: 0,
                step: None,
                outcome: String::new(),
            }
            .kind(),
            ObsEvent::StoreAppended { step: 0, seq: 0 }.kind(),
            ObsEvent::StoreFsynced { step: 0, nanos: 0 }.kind(),
            ObsEvent::SnapshotWritten { seq: 0, nanos: 0 }.kind(),
            ObsEvent::StoreRecovered {
                snapshot_seq: None,
                replayed: 0,
                truncated_bytes: 0,
                next_seq: 0,
            }
            .kind(),
            ObsEvent::FallbackNoted {
                fallback: String::new(),
                what: String::new(),
                detail: String::new(),
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn optional_fields_encode_as_null() {
        let ev = ObsEvent::SpanClosed {
            span: 9,
            step: None,
            outcome: "rejected".into(),
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"span_closed","span":9,"step":null,"outcome":"rejected"}"#
        );
        let ev = ObsEvent::SpanClosed {
            span: 9,
            step: Some(4),
            outcome: "committed".into(),
        };
        assert!(ev.to_json().contains("\"step\":4"), "{}", ev.to_json());
    }
}
