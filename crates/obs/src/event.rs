//! Typed observability events emitted by the runtime.

/// Which evaluation path answered a permission or constraint check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPath {
    /// Answered by an incremental monitor peek (O(|φ|)).
    Monitored,
    /// Answered by the reference history-scan evaluator
    /// (O(|trace|·|φ|)) — the fallback for quantified/future/open
    /// formulas, role histories and a disabled cache.
    Scan,
}

impl CheckPath {
    /// Stable lower-case label, used in traces and metric names.
    pub fn label(self) -> &'static str {
        match self {
            CheckPath::Monitored => "monitored",
            CheckPath::Scan => "scan",
        }
    }
}

/// One observable runtime event. Events are emitted only when an
/// [`crate::Observer`] is enabled, so owned `String` fields are fine:
/// the disabled path never constructs them.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A step began executing (before the calling closure).
    StepStarted {
        /// Sequence number of the attempt (counts committed and
        /// rolled-back steps alike).
        step: u64,
        /// Rendering of the initiating occurrence (`id[class].event`).
        initial: String,
    },
    /// An occurrence was scheduled into the step's synchronous closure
    /// (the initiating event and everything it calls).
    EventCalled {
        /// Instance identity.
        instance: String,
        /// Context class of the occurrence.
        ctx_class: String,
        /// Event name.
        event: String,
    },
    /// A permission precondition was evaluated.
    PermissionChecked {
        /// Instance identity.
        instance: String,
        /// The guarded event.
        event: String,
        /// Monitored or scan path.
        path: CheckPath,
        /// Whether the permission granted the event.
        granted: bool,
    },
    /// A constraint was evaluated on the post-state.
    ConstraintChecked {
        /// Instance identity.
        instance: String,
        /// Monitored or scan path.
        path: CheckPath,
        /// Whether the constraint held.
        satisfied: bool,
    },
    /// Valuation rules of one occurrence were applied.
    ValuationApplied {
        /// Instance identity.
        instance: String,
        /// The event whose rules ran.
        event: String,
        /// Number of attribute updates applied.
        updates: usize,
    },
    /// A committed step was fed to the instance's live monitors.
    MonitorFed {
        /// Instance identity.
        instance: String,
        /// Number of active monitors that consumed the step.
        monitors: usize,
    },
    /// The step committed.
    StepCommitted {
        /// Sequence number of the attempt.
        step: u64,
        /// Occurrences in the committed closure.
        occurrences: usize,
        /// Wall-clock duration of the step, monotonic-clock timed.
        nanos: u64,
    },
    /// The step rolled back (permission refusal, constraint violation,
    /// or any other error) leaving the base unchanged.
    StepRolledBack {
        /// Sequence number of the attempt.
        step: u64,
        /// Human-readable rollback reason.
        reason: String,
        /// Wall-clock duration until the rollback.
        nanos: u64,
    },
}

impl ObsEvent {
    /// Stable kind tag, used as the `"ev"` field in JSON-lines traces.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::StepStarted { .. } => "step_started",
            ObsEvent::EventCalled { .. } => "event_called",
            ObsEvent::PermissionChecked { .. } => "permission_checked",
            ObsEvent::ConstraintChecked { .. } => "constraint_checked",
            ObsEvent::ValuationApplied { .. } => "valuation_applied",
            ObsEvent::MonitorFed { .. } => "monitor_fed",
            ObsEvent::StepCommitted { .. } => "step_committed",
            ObsEvent::StepRolledBack { .. } => "step_rolled_back",
        }
    }

    /// Renders the event as one JSON object (no trailing newline). The
    /// encoding is hand-rolled — the workspace is hermetic — but emits
    /// strict JSON: strings are escaped, numbers are plain integers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ev\":");
        push_json_str(&mut out, self.kind());
        match self {
            ObsEvent::StepStarted { step, initial } => {
                push_field_u64(&mut out, "step", *step);
                push_field_str(&mut out, "initial", initial);
            }
            ObsEvent::EventCalled {
                instance,
                ctx_class,
                event,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "class", ctx_class);
                push_field_str(&mut out, "event", event);
            }
            ObsEvent::PermissionChecked {
                instance,
                event,
                path,
                granted,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "event", event);
                push_field_str(&mut out, "path", path.label());
                push_field_bool(&mut out, "granted", *granted);
            }
            ObsEvent::ConstraintChecked {
                instance,
                path,
                satisfied,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "path", path.label());
                push_field_bool(&mut out, "satisfied", *satisfied);
            }
            ObsEvent::ValuationApplied {
                instance,
                event,
                updates,
            } => {
                push_field_str(&mut out, "instance", instance);
                push_field_str(&mut out, "event", event);
                push_field_u64(&mut out, "updates", *updates as u64);
            }
            ObsEvent::MonitorFed { instance, monitors } => {
                push_field_str(&mut out, "instance", instance);
                push_field_u64(&mut out, "monitors", *monitors as u64);
            }
            ObsEvent::StepCommitted {
                step,
                occurrences,
                nanos,
            } => {
                push_field_u64(&mut out, "step", *step);
                push_field_u64(&mut out, "occurrences", *occurrences as u64);
                push_field_u64(&mut out, "nanos", *nanos);
            }
            ObsEvent::StepRolledBack {
                step,
                reason,
                nanos,
            } => {
                push_field_u64(&mut out, "step", *step);
                push_field_str(&mut out, "reason", reason);
                push_field_u64(&mut out, "nanos", *nanos);
            }
        }
        out.push('}');
        out
    }
}

fn push_field_str(out: &mut String, key: &str, value: &str) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, value);
}

fn push_field_u64(out: &mut String, key: &str, value: u64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn push_field_bool(out: &mut String, key: &str, value: bool) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(if value { "true" } else { "false" });
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_strict() {
        let ev = ObsEvent::PermissionChecked {
            instance: "|DEPT|(\"Toys\")".into(),
            event: "fire".into(),
            path: CheckPath::Monitored,
            granted: false,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"permission_checked","instance":"|DEPT|(\"Toys\")","event":"fire","path":"monitored","granted":false}"#
        );
    }

    #[test]
    fn control_characters_escaped() {
        let ev = ObsEvent::StepRolledBack {
            step: 3,
            reason: "line1\nline2\u{1}".into(),
            nanos: 42,
        };
        let json = ev.to_json();
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\\u0001"), "{json}");
        assert!(!json.contains('\n'), "one physical line: {json}");
    }

    #[test]
    fn every_kind_is_distinct() {
        let kinds = [
            ObsEvent::StepStarted {
                step: 0,
                initial: String::new(),
            }
            .kind(),
            ObsEvent::EventCalled {
                instance: String::new(),
                ctx_class: String::new(),
                event: String::new(),
            }
            .kind(),
            ObsEvent::PermissionChecked {
                instance: String::new(),
                event: String::new(),
                path: CheckPath::Scan,
                granted: true,
            }
            .kind(),
            ObsEvent::ConstraintChecked {
                instance: String::new(),
                path: CheckPath::Scan,
                satisfied: true,
            }
            .kind(),
            ObsEvent::ValuationApplied {
                instance: String::new(),
                event: String::new(),
                updates: 0,
            }
            .kind(),
            ObsEvent::MonitorFed {
                instance: String::new(),
                monitors: 0,
            }
            .kind(),
            ObsEvent::StepCommitted {
                step: 0,
                occurrences: 0,
                nanos: 0,
            }
            .kind(),
            ObsEvent::StepRolledBack {
                step: 0,
                reason: String::new(),
                nanos: 0,
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
