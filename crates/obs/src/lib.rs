//! # troll-obs — zero-dependency tracing & metrics for the object
//! community runtime
//!
//! The paper's semantics is all about *observable behaviour*: attribute
//! observations over event sequences. This crate reifies the runtime's
//! own meta-level the same way — steps, permission checks, valuations
//! and monitor feeds become observable events — so the system can be
//! inspected and measured without redesign (the description-driven
//! systems argument of Estrella et al.).
//!
//! Three pieces, all hermetic (no external dependencies, mirroring the
//! in-repo proptest/rand/criterion shims):
//!
//! * [`Observer`] — span-style enter/exit hooks plus typed events
//!   ([`ObsEvent`]): `StepStarted`, `PermissionChecked` (monitored or
//!   scan path), `ValuationApplied`, `EventCalled`, `StepCommitted`,
//!   `StepRolledBack`, `MonitorFed`. The [`NoopObserver`] default
//!   reports itself disabled so instrumented code can skip event
//!   construction entirely — the disabled cost is a predicted branch
//!   (measured ≈0 in `e10_obs_overhead`).
//! * [`Metrics`] — a lock-free-enough registry of named [`Counter`]s
//!   (relaxed atomics) and fixed-bucket latency [`Histogram`]s
//!   (power-of-two nanosecond buckets, p50/p90/p99 summaries).
//!   Handles are resolved once and incremented without locking; the
//!   registry mutex is touched only on registration and snapshot.
//! * Two built-in sinks: the in-memory [`Recorder`] for tests and the
//!   JSON-lines [`TraceWriter`] for offline analysis.
//!
//! # Example
//!
//! ```
//! use troll_obs::{Metrics, ObsEvent, Observer, Recorder};
//! use std::sync::Arc;
//!
//! let metrics = Metrics::new();
//! let steps = metrics.counter("steps.committed");
//! steps.inc();
//! assert_eq!(metrics.counter("steps.committed").get(), 1);
//!
//! let recorder = Arc::new(Recorder::new());
//! recorder.on_event(&ObsEvent::StepCommitted {
//!     step: 0,
//!     occurrences: 1,
//!     nanos: 1500,
//! });
//! assert_eq!(recorder.events().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod observer;
mod sinks;

pub use event::{CheckPath, ObsEvent};
pub use metrics::{global, Counter, Histogram, HistogramSummary, Metrics, MetricsSnapshot};
pub use observer::{NoopObserver, Observer};
pub use sinks::{Recorder, TraceWriter};
