//! # troll-obs — zero-dependency tracing & metrics for the object
//! community runtime
//!
//! The paper's semantics is all about *observable behaviour*: attribute
//! observations over event sequences. This crate reifies the runtime's
//! own meta-level the same way — steps, permission checks, valuations
//! and monitor feeds become observable events — so the system can be
//! inspected and measured without redesign (the description-driven
//! systems argument of Estrella et al.).
//!
//! Three pieces, all hermetic (no external dependencies, mirroring the
//! in-repo proptest/rand/criterion shims):
//!
//! * [`Observer`] — span-style enter/exit hooks plus typed events
//!   ([`ObsEvent`]): `StepStarted`, `PermissionChecked` (monitored or
//!   scan path), `ValuationApplied`, `EventCalled`, `StepCommitted`,
//!   `StepRolledBack`, `MonitorFed`. The [`NoopObserver`] default
//!   reports itself disabled so instrumented code can skip event
//!   construction entirely — the disabled cost is a predicted branch
//!   (measured ≈0 in `e10_obs_overhead`).
//! * [`Metrics`] — a lock-free-enough registry of named [`Counter`]s
//!   (relaxed atomics) and fixed-bucket latency [`Histogram`]s
//!   (power-of-two nanosecond buckets, p50/p90/p99 summaries).
//!   Handles are resolved once and incremented without locking; the
//!   registry mutex is touched only on registration and snapshot.
//! * [`StepProfiler`] — phase-level self-time profiling of the step
//!   envelope: RAII [`Phase`] guards on a thread-local stack record
//!   `step.phase.*.self_ns` histograms with child time subtracted, so
//!   the per-phase totals *partition* the recorded step latency
//!   ([`phase_table`] renders the sorted breakdown).
//! * Built-in sinks: the in-memory [`Recorder`] for tests, the
//!   JSON-lines [`TraceWriter`] for offline analysis (lines carry a
//!   [`thread_ord`] tag for cross-thread timelines), the [`Fanout`]
//!   combinator, and the periodic [`StatsSnapshotSink`]. For pull-based
//!   scrapers, [`Metrics::render_prometheus`] emits the Prometheus text
//!   exposition format. One-shot evaluator-fallback warnings route
//!   through [`note_fallback_warning`] when a warning observer is
//!   registered ([`set_warning_observer`]), else stay on stderr.
//!
//! # Example
//!
//! ```
//! use troll_obs::{Metrics, ObsEvent, Observer, Recorder};
//! use std::sync::Arc;
//!
//! let metrics = Metrics::new();
//! let steps = metrics.counter("steps.committed");
//! steps.inc();
//! assert_eq!(metrics.counter("steps.committed").get(), 1);
//!
//! let recorder = Arc::new(Recorder::new());
//! recorder.on_event(&ObsEvent::StepCommitted {
//!     step: 0,
//!     occurrences: 1,
//!     nanos: 1500,
//! });
//! assert_eq!(recorder.events().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod observer;
mod profile;
mod sinks;
mod warn;

pub use event::{CheckPath, ObsEvent};
pub use metrics::{
    global, json_str, Counter, Histogram, HistogramSummary, Metrics, MetricsSnapshot,
};
pub use observer::{NoopObserver, Observer};
pub use profile::{phase_table, Phase, PhaseGuard, StepProfiler, PHASES};
pub use sinks::{thread_ord, Fanout, Recorder, StatsSnapshotSink, TraceWriter};
pub use warn::{clear_warning_observer, note_fallback_warning, set_warning_observer};
