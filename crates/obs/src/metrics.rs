//! Named counters and fixed-bucket latency histograms.
//!
//! The registry is "lock-free enough": incrementing a resolved
//! [`Counter`] or recording into a [`Histogram`] is a relaxed atomic
//! operation on shared storage; the registry's mutex is taken only to
//! resolve a handle by name or to snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing named counter. Cloning shares storage.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter not attached to any registry.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i` counts samples with
/// `value < 2^i` ns (the last bucket is unbounded). 2^39 ns ≈ 9 minutes,
/// far beyond any single runtime step.
const BUCKETS: usize = 40;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest recorded sample; `u64::MAX` until the first record.
    min: AtomicU64,
    /// Largest recorded sample.
    max: AtomicU64,
}

/// A fixed-bucket latency histogram over nanosecond samples. Cloning
/// shares storage; recording is wait-free (two relaxed adds and one
/// bucket add).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A free-standing histogram not attached to any registry.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - u64::leading_zeros(ns) as usize).min(BUCKETS - 1);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(ns, Ordering::Relaxed);
        self.inner.min.fetch_min(ns, Ordering::Relaxed);
        self.inner.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Summarizes the recorded samples. Quantiles are upper bucket
    /// bounds (power-of-two resolution — good for complexity *shapes*
    /// and order-of-magnitude latencies, not microsecond precision).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.inner.count.load(Ordering::Relaxed);
        let sum = self.inner.sum.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // upper bound of bucket i: 2^i - 1 (bucket 0 is {0})
                    return if i == 0 { 0 } else { (1u64 << i) - 1 };
                }
            }
            u64::MAX
        };
        let min = self.inner.min.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum_ns: sum,
            mean_ns: sum.checked_div(count).unwrap_or(0),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.inner.max.load(Ordering::Relaxed),
            p50_ns: quantile(0.50),
            p90_ns: quantile(0.90),
            p99_ns: quantile(0.99),
        }
    }

    /// Per-bucket sample counts; entry `i` counts samples whose value's
    /// bit length is `i` (upper bound `2^i - 1` ns; bucket 0 is `{0}`,
    /// the last bucket is unbounded). Exposed for cumulative-bucket
    /// renderers like [`Metrics::render_prometheus`].
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }
}

/// Point-in-time summary of one histogram. `count`/`sum_ns`/`min_ns`/
/// `max_ns` are exact (tracked outside the buckets); the quantiles have
/// power-of-two bucket resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples (exact).
    pub count: u64,
    /// Sum of all samples in nanoseconds (exact).
    pub sum_ns: u64,
    /// Arithmetic mean in nanoseconds (exact: tracked as a running sum).
    pub mean_ns: u64,
    /// Smallest sample in nanoseconds (exact; 0 when empty).
    pub min_ns: u64,
    /// Largest sample in nanoseconds (exact; 0 when empty).
    pub max_ns: u64,
    /// Median upper bound in nanoseconds (bucket resolution).
    pub p50_ns: u64,
    /// 90th percentile upper bound in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile upper bound in nanoseconds.
    pub p99_ns: u64,
}

/// Point-in-time snapshot of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, in name order.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → summary, in name order.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named [`Counter`]s and [`Histogram`]s. Cloning shares
/// the registry. Resolve handles once (registry lock), then increment
/// them lock-free on the hot path.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Arc<Mutex<Registry>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Resolves (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.registry.lock().expect("metrics registry poisoned");
        reg.counters.entry(name.to_string()).or_default().clone()
    }

    /// Resolves (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.registry.lock().expect("metrics registry poisoned");
        reg.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Snapshots every registered counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.registry.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (hand-rolled, version `0.0.4`): counters as `counter` samples,
    /// histograms as cumulative `_bucket{le="..."}` series with `_sum`
    /// and `_count`. Metric names are the registry names with `.`
    /// mapped to `_` and prefixed by `prefix` (pass `"troll"` for
    /// `troll_steps_committed`-style names; empty for none). Bucket
    /// boundaries are the power-of-two upper bounds actually used by
    /// [`Histogram`], emitted up to the highest non-empty bucket, then
    /// `+Inf`.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        use std::fmt::Write;
        let reg = self.registry.lock().expect("metrics registry poisoned");
        let mangle = |name: &str| -> String {
            let body: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if prefix.is_empty() {
                body
            } else {
                format!("{prefix}_{body}")
            }
        };
        let mut out = String::new();
        for (name, counter) in &reg.counters {
            let pname = mangle(name);
            let _ = writeln!(out, "# TYPE {pname} counter");
            let _ = writeln!(out, "{pname} {}", counter.get());
        }
        for (name, hist) in &reg.histograms {
            let pname = mangle(name);
            let buckets = hist.bucket_counts();
            let count = hist.count();
            let sum = hist.inner.sum.load(Ordering::Relaxed);
            let _ = writeln!(out, "# TYPE {pname} histogram");
            let mut cumulative = 0u64;
            let highest = buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| i + 1)
                .unwrap_or(0)
                .min(BUCKETS - 1);
            for (i, c) in buckets.iter().enumerate().take(highest) {
                cumulative += c;
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {count}");
            let _ = writeln!(out, "{pname}_sum {sum}");
            let _ = writeln!(out, "{pname}_count {count}");
        }
        out
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as one line of JSON (counters as numbers,
    /// histograms as objects with exact count/sum/min/max and bucketed
    /// quantiles) — the record format of the periodic stats-snapshot
    /// sink. Keys are emitted in name order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_str(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\
                 \"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                json_str(name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                h.mean_ns,
                h.p50_ns,
                h.p90_ns,
                h.p99_ns
            );
        }
        out.push_str("}}");
        out
    }
}

/// A JSON string literal (quoted, escaped) — the one escaping rule
/// every hand-rolled JSON writer in the workspace shares (trace lines,
/// stats snapshots, the serve wire protocol).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The process-wide registry, for instrumentation points that have no
/// natural owner to thread a [`Metrics`] through (e.g. the temporal
/// crate's scan-evaluator fallback counters). Values are cumulative over
/// the process lifetime; read them as differences around a workload.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_storage_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("x").get(), 3);
        assert_eq!(m.snapshot().counters["x"], 3);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(1_000); // bucket upper bound 1023
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // bucket upper bound 2^20-1
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 1023);
        assert_eq!(s.p90_ns, 1023);
        assert!(s.p99_ns >= 1_000_000 && s.p99_ns < 2_097_152, "{s:?}");
        assert_eq!(s.mean_ns, (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_and_zero_samples() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record_ns(0);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, 0);
    }

    #[test]
    fn exact_sum_min_max_alongside_buckets() {
        let h = Histogram::new();
        for ns in [700u64, 3, 120_000] {
            h.record_ns(ns);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 120_703);
        assert_eq!(s.min_ns, 3);
        assert_eq!(s.max_ns, 120_000);
        assert_eq!(s.mean_ns, 120_703 / 3);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_mangled() {
        let m = Metrics::new();
        m.counter("steps.committed").add(7);
        let h = m.histogram("step.latency_ns");
        h.record_ns(5); // bucket 3, le=7
        h.record_ns(1000); // bucket 10, le=1023
        let text = m.render_prometheus("troll");
        assert!(text.contains("# TYPE troll_steps_committed counter"));
        assert!(text.contains("troll_steps_committed 7"));
        assert!(text.contains("# TYPE troll_step_latency_ns histogram"));
        assert!(text.contains("troll_step_latency_ns_bucket{le=\"7\"} 1"));
        assert!(
            text.contains("troll_step_latency_ns_bucket{le=\"1023\"} 2"),
            "cumulative buckets:\n{text}"
        );
        assert!(text.contains("troll_step_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("troll_step_latency_ns_sum 1005"));
        assert!(text.contains("troll_step_latency_ns_count 2"));
        // cumulative series never decreases
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket series: {line}");
            last = v;
        }
    }

    #[test]
    fn snapshot_json_round_trips_basic_fields() {
        let m = Metrics::new();
        m.counter("a.b").inc();
        m.histogram("lat").record_ns(42);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"a.b\":1"), "{json}");
        assert!(json.contains("\"sum_ns\":42"), "{json}");
        assert!(json.contains("\"min_ns\":42"), "{json}");
        assert!(json.contains("\"max_ns\":42"), "{json}");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.global_registry_is_shared");
        let before = c.get();
        global().counter("test.global_registry_is_shared").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = Metrics::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = m.counter("contended");
                let h = m.histogram("lat");
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record_ns(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(m.counter("contended").get(), 4000);
        assert_eq!(m.histogram("lat").count(), 4000);
    }
}
