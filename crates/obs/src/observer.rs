//! The observer trait and the no-op default.

use crate::ObsEvent;

/// Receives runtime observability signals.
///
/// Implementations use interior mutability — all hooks take `&self` so
/// an observer can be shared behind an `Arc` by a runtime that is
/// otherwise `&mut`. Hooks must not panic and should be cheap: they run
/// inside the step engine's hot path.
///
/// Instrumented code is expected to consult [`Observer::enabled`] once
/// per attachment and skip event *construction* entirely when it
/// returns `false`; that makes the disabled cost of instrumentation a
/// single predicted branch rather than an allocation.
pub trait Observer: Send + Sync + std::fmt::Debug {
    /// Whether the observer wants events at all. The runtime caches
    /// this at attachment time; return a constant.
    fn enabled(&self) -> bool {
        true
    }

    /// A named span was entered (e.g. `"step"`). Spans nest; exits
    /// arrive in reverse entry order with the measured duration.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// A named span was exited after `nanos` nanoseconds.
    fn span_exit(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// A typed event occurred.
    fn on_event(&self, event: &ObsEvent);
}

/// The default observer: reports itself disabled, receives nothing.
/// Instrumented code behind it costs one branch per would-be event
/// (measured ≈0 against the uninstrumented baseline; EXPERIMENTS.md
/// E10).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, _event: &ObsEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopObserver.enabled());
        // and silently swallows anything sent anyway
        NoopObserver.on_event(&ObsEvent::StepStarted {
            step: 0,
            initial: "x".into(),
        });
        NoopObserver.span_enter("step");
        NoopObserver.span_exit("step", 10);
    }
}
