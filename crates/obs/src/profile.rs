//! Phase-level step profiling with self-time accounting.
//!
//! The step engine's ~100 µs envelope is made of nested phases —
//! closing the calling closure, assembling evaluation environments,
//! checking permissions and constraints, moving state, advancing
//! monitors, appending to the durable log. [`StepProfiler`] reifies
//! that structure: instrumented code brackets each phase with an RAII
//! [`PhaseGuard`], and on exit the guard records the phase's
//! **self-time** (elapsed minus the time spent in child phases) into a
//! per-phase [`Histogram`] named `step.phase.<name>.self_ns` in the
//! owner's [`Metrics`] registry.
//!
//! Self-time accounting means the phase histograms *partition* the step
//! envelope: summed over a run, the per-phase self-time totals add up
//! to the total recorded step latency (`step.latency_ns` sums), minus
//! only the timer-read skew — which is what lets a profile table answer
//! "where do the microseconds go" without double counting. The
//! [`Phase::Envelope`] pseudo-phase wraps the whole step, so its
//! self-time *is* the unattributed remainder (sequence bookkeeping,
//! rollback scaffolding, timer overhead).
//!
//! The phase stack lives in a thread-local, so nesting works across
//! crates sharing one registry (the store's fsync phase nests under the
//! runtime's sink phase without either knowing about the other), and a
//! `&self` engine method can record phases without threading a mutable
//! profiler through every signature. A step that migrates threads
//! mid-flight (sharded speculation vs commit) simply records each
//! phase on the thread that ran it — histograms are process-shared.
//!
//! Disabled cost: instrumented code consults one cached `bool` before
//! constructing a guard (the same discipline as event emission), so a
//! run without profiling pays one predicted branch per phase site.

use crate::metrics::{Histogram, Metrics, MetricsSnapshot};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// One named phase of the step envelope. The list is the profiling
/// contract: every variant owns a `step.phase.<label>.self_ns`
/// histogram, and [`phase_table`] renders them sorted by total
/// self-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The whole step envelope; its self-time is the *unattributed*
    /// remainder after every other phase claimed its share.
    Envelope,
    /// Closing the occurrence set under synchronous event calling.
    Closure,
    /// Evaluation-environment assembly (`build_env`, alias
    /// materialization for virtual steps) — a child of whichever check
    /// or rule needed the environment.
    Env,
    /// Permission precondition checks (monitored or scan path).
    Permissions,
    /// Valuation-rule evaluation and attribute updates.
    Valuation,
    /// Constraint checks on post-states.
    Constraints,
    /// The alias/component snapshot pre-pass for inheriting classes.
    AliasPrepass,
    /// Moving prepared working states into the instance store.
    StateCommit,
    /// Feeding committed steps to the incremental monitors.
    MonitorAdvance,
    /// Derived-event expansion through interface views.
    Views,
    /// The step-sink hook (durable WAL append lives here).
    Sink,
    /// `fsync` inside the sink — a child of [`Phase::Sink`].
    Fsync,
}

/// Every phase, in declaration order (the histogram array layout).
pub const PHASES: [Phase; 12] = [
    Phase::Envelope,
    Phase::Closure,
    Phase::Env,
    Phase::Permissions,
    Phase::Valuation,
    Phase::Constraints,
    Phase::AliasPrepass,
    Phase::StateCommit,
    Phase::MonitorAdvance,
    Phase::Views,
    Phase::Sink,
    Phase::Fsync,
];

impl Phase {
    /// Stable lower-case label used in metric names and profile tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Envelope => "envelope",
            Phase::Closure => "closure",
            Phase::Env => "env",
            Phase::Permissions => "permissions",
            Phase::Valuation => "valuation",
            Phase::Constraints => "constraints",
            Phase::AliasPrepass => "alias_prepass",
            Phase::StateCommit => "state_commit",
            Phase::MonitorAdvance => "monitor_advance",
            Phase::Views => "views",
            Phase::Sink => "sink",
            Phase::Fsync => "fsync",
        }
    }

    /// The phase's histogram name: `step.phase.<label>.self_ns`.
    pub fn metric_name(self) -> String {
        format!("step.phase.{}.self_ns", self.label())
    }

    fn index(self) -> usize {
        PHASES
            .iter()
            .position(|p| *p == self)
            .expect("listed phase")
    }
}

/// One open phase on the thread-local stack.
struct Frame {
    phase: Phase,
    start: Instant,
    /// Total elapsed time of already-closed child phases, subtracted
    /// from this frame's elapsed time to get its self-time.
    child_ns: u64,
}

thread_local! {
    /// The per-thread stack of open phases. Cross-crate by design: any
    /// [`StepProfiler`] entered on this thread nests here, which is how
    /// the store's fsync phase lands under the runtime's sink phase.
    static PHASE_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Records phase self-times into per-phase histograms of one [`Metrics`]
/// registry. Cloning shares the histogram handles (an `Arc` bump), so a
/// guard can own an independent handle and outlive the borrow that
/// created it.
#[derive(Debug, Clone)]
pub struct StepProfiler {
    hists: Arc<[Histogram; PHASES.len()]>,
}

impl StepProfiler {
    /// Resolves the `step.phase.*.self_ns` histograms in `metrics`
    /// (registering them on first use).
    pub fn new(metrics: &Metrics) -> StepProfiler {
        StepProfiler {
            hists: Arc::new(std::array::from_fn(|i| {
                metrics.histogram(&PHASES[i].metric_name())
            })),
        }
    }

    /// Opens `phase`. The returned guard records the phase's self-time
    /// when dropped; drop order must mirror entry order (guaranteed for
    /// scoped locals).
    pub fn enter(&self, phase: Phase) -> PhaseGuard {
        PHASE_STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                phase,
                start: Instant::now(),
                child_ns: 0,
            })
        });
        PhaseGuard {
            profiler: self.clone(),
        }
    }

    /// Opens `phase` only when some enclosing phase is already open on
    /// this thread — the hook for layers (like the durable store) that
    /// cannot see the engine's profiling switch: inside a profiled step
    /// the stack is non-empty, outside it this is a no-op.
    pub fn enter_if_active(&self, phase: Phase) -> Option<PhaseGuard> {
        let active = PHASE_STACK.with(|stack| !stack.borrow().is_empty());
        active.then(|| self.enter(phase))
    }
}

/// RAII handle for an open phase; see [`StepProfiler::enter`].
#[derive(Debug)]
pub struct PhaseGuard {
    profiler: StepProfiler,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else {
                return; // unbalanced drop — never panic in a profiler
            };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            self.profiler.hists[frame.phase.index()].record_ns(self_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed;
            }
        });
    }
}

/// Renders the sorted per-phase self-time table from a metrics
/// snapshot: one row per `step.phase.*.self_ns` histogram with samples,
/// total self-time, share of the recorded step latency, and
/// mean/p50/p90/p99, footed with the accounted-for share. Returns the
/// header-only table when the snapshot holds no phase samples.
pub fn phase_table(snapshot: &MetricsSnapshot) -> String {
    use std::fmt::Write;
    let mut rows: Vec<(&str, &crate::HistogramSummary)> = Vec::new();
    for (name, h) in &snapshot.histograms {
        if let Some(label) = name
            .strip_prefix("step.phase.")
            .and_then(|n| n.strip_suffix(".self_ns"))
        {
            if h.count > 0 {
                rows.push((label, h));
            }
        }
    }
    rows.sort_by(|a, b| b.1.sum_ns.cmp(&a.1.sum_ns).then(a.0.cmp(b.0)));
    // Sequential steps (and conflicted re-runs) record
    // `step.latency_ns`; the sharded commit loop records its own
    // machinery in `shard.commit_latency_ns` (re-run time subtracted,
    // since the nested execute already recorded it); parallel
    // speculation records `shard.speculation_latency_ns` on the worker
    // threads. The three are disjoint and together cover every window
    // in which phases record, so the share denominator sums them all —
    // `steps` counts only committed envelopes, not speculations.
    let (mut steps, mut total_latency) = (0, 0u64);
    for name in ["step.latency_ns", "shard.commit_latency_ns"] {
        if let Some(h) = snapshot.histograms.get(name) {
            steps += h.count;
            total_latency += h.sum_ns;
        }
    }
    if let Some(h) = snapshot.histograms.get("shard.speculation_latency_ns") {
        total_latency += h.sum_ns;
    }
    let accounted: u64 = rows.iter().map(|(_, h)| h.sum_ns).sum();
    let denom = if total_latency > 0 {
        total_latency
    } else {
        accounted.max(1)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>12} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "phase", "samples", "self_total", "share", "mean", "p50<=", "p90<=", "p99<="
    );
    for (label, h) in &rows {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>12} {:>5.1}% {:>9} {:>9} {:>9} {:>9}",
            label,
            h.count,
            fmt_ns(h.sum_ns),
            100.0 * h.sum_ns as f64 / denom as f64,
            fmt_ns(h.mean_ns),
            fmt_ns(h.p50_ns),
            fmt_ns(h.p90_ns),
            fmt_ns(h.p99_ns),
        );
    }
    if steps > 0 {
        let _ = writeln!(
            out,
            "steps={} total={} accounted={} ({:.1}%)",
            steps,
            fmt_ns(total_latency),
            fmt_ns(accounted),
            100.0 * accounted as f64 / denom as f64,
        );
    }
    out
}

/// Human-readable nanosecond quantity (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burns at least `ns` of wall clock so phase durations are
    /// reliably nonzero and ordered.
    fn busy(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let m = Metrics::new();
        let p = StepProfiler::new(&m);
        {
            let _outer = p.enter(Phase::Envelope);
            busy(50_000);
            {
                let _inner = p.enter(Phase::Permissions);
                busy(200_000);
            }
            busy(50_000);
        }
        let snap = m.snapshot();
        let outer = snap.histograms[&Phase::Envelope.metric_name()];
        let inner = snap.histograms[&Phase::Permissions.metric_name()];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.sum_ns >= 200_000, "inner self {inner:?}");
        // outer self-time excludes the inner 200µs: it ran ~100µs of
        // its own work, so anything under the child's floor proves the
        // subtraction happened
        assert!(
            outer.sum_ns < 200_000,
            "outer self must exclude child time: {outer:?}"
        );
        assert!(outer.sum_ns >= 100_000, "outer kept its own time");
    }

    #[test]
    fn sibling_phases_partition_the_envelope() {
        let m = Metrics::new();
        let p = StepProfiler::new(&m);
        {
            let _e = p.enter(Phase::Envelope);
            for phase in [Phase::Closure, Phase::Valuation, Phase::StateCommit] {
                let _g = p.enter(phase);
                busy(100_000);
            }
        }
        let snap = m.snapshot();
        let env = snap.histograms[&Phase::Envelope.metric_name()];
        // all three 100µs children subtracted: envelope self ≈ loop glue
        assert!(env.sum_ns < 100_000, "envelope self-time: {env:?}");
    }

    #[test]
    fn enter_if_active_requires_an_open_phase() {
        let m = Metrics::new();
        let p = StepProfiler::new(&m);
        assert!(p.enter_if_active(Phase::Fsync).is_none());
        {
            let _outer = p.enter(Phase::Sink);
            let inner = p.enter_if_active(Phase::Fsync);
            assert!(inner.is_some());
        }
        let snap = m.snapshot();
        assert_eq!(snap.histograms[&Phase::Fsync.metric_name()].count, 1);
        assert_eq!(snap.histograms[&Phase::Sink.metric_name()].count, 1);
    }

    #[test]
    fn cross_profiler_nesting_shares_the_thread_stack() {
        // two registries, one thread: the child still subtracts from
        // the parent even though their histograms live apart (the
        // store-under-runtime shape)
        let runtime = Metrics::new();
        let store = Metrics::new();
        let rp = StepProfiler::new(&runtime);
        let sp = StepProfiler::new(&store);
        {
            let _sink = rp.enter(Phase::Sink);
            busy(20_000);
            let _fsync = sp.enter_if_active(Phase::Fsync).expect("active");
            busy(150_000);
        }
        let sink = runtime.snapshot().histograms[&Phase::Sink.metric_name()];
        let fsync = store.snapshot().histograms[&Phase::Fsync.metric_name()];
        assert!(fsync.sum_ns >= 150_000);
        assert!(sink.sum_ns < 150_000, "sink self excludes fsync: {sink:?}");
    }

    #[test]
    fn phase_table_sorts_by_self_time_and_foots_coverage() {
        let m = Metrics::new();
        let p = StepProfiler::new(&m);
        let latency = m.histogram("step.latency_ns");
        {
            let _e = p.enter(Phase::Envelope);
            let _g = p.enter(Phase::Valuation);
            busy(300_000);
        }
        latency.record_ns(320_000);
        let table = phase_table(&m.snapshot());
        let val_line = table.lines().position(|l| l.starts_with("valuation"));
        let env_line = table.lines().position(|l| l.starts_with("envelope"));
        assert!(val_line.is_some() && env_line.is_some(), "{table}");
        assert!(val_line < env_line, "sorted by self-time:\n{table}");
        assert!(table.contains("steps=1"), "{table}");
        assert!(table.contains("accounted="), "{table}");
    }

    #[test]
    fn labels_and_metric_names_are_distinct() {
        let labels: std::collections::BTreeSet<_> = PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PHASES.len());
        for p in PHASES {
            assert_eq!(p.metric_name(), format!("step.phase.{}.self_ns", p.label()));
            assert_eq!(PHASES[p.index()], p);
        }
    }
}
