//! Built-in observer sinks: the in-memory [`Recorder`] for tests, the
//! JSON-lines [`TraceWriter`] for offline analysis, the [`Fanout`]
//! combinator, and the periodic [`StatsSnapshotSink`].

use crate::{Metrics, ObsEvent, Observer};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A small dense ordinal for the calling thread, assigned on first use
/// (0, 1, 2, …) — stable for the thread's lifetime. Used to tag trace
/// lines so cross-thread timelines (sharded speculation) can be
/// regrouped offline. `std::thread::ThreadId` has no stable integer
/// form, hence the hand-rolled scheme.
pub fn thread_ord() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORD: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|o| *o)
}

/// Records every event (and span) in memory, in arrival order — the
/// assertion-friendly sink for tests.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<ObsEvent>>,
    spans: Mutex<Vec<(&'static str, u64)>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// All recorded events, in order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// All exited spans as `(name, nanos)`, in exit order.
    pub fn spans(&self) -> Vec<(&'static str, u64)> {
        self.spans.lock().expect("recorder poisoned").clone()
    }

    /// Number of recorded events matching the predicate.
    pub fn count(&self, pred: impl Fn(&ObsEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|e| pred(e))
            .count()
    }

    /// Drops all recorded events and spans.
    pub fn clear(&self) {
        self.events.lock().expect("recorder poisoned").clear();
        self.spans.lock().expect("recorder poisoned").clear();
    }
}

impl Observer for Recorder {
    fn on_event(&self, event: &ObsEvent) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(event.clone());
    }

    fn span_exit(&self, name: &'static str, nanos: u64) {
        self.spans
            .lock()
            .expect("recorder poisoned")
            .push((name, nanos));
    }
}

/// Streams events as JSON lines (one object per line) to any writer —
/// typically a buffered file for offline analysis of a run.
///
/// Write errors are counted, not propagated: observability must never
/// fail the observed step.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Send> {
    out: Mutex<W>,
    errors: crate::Counter,
}

impl<W: Write + Send> TraceWriter<W> {
    /// Wraps a writer. Callers that hand in a file usually want to wrap
    /// it in a [`std::io::BufWriter`] first.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter {
            out: Mutex::new(out),
            errors: crate::Counter::new(),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.errors.get()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("trace writer poisoned");
        let _ = w.flush();
        w
    }

    /// Flushes buffered output.
    pub fn flush(&self) {
        if self
            .out
            .lock()
            .expect("trace writer poisoned")
            .flush()
            .is_err()
        {
            self.errors.inc();
        }
    }
}

impl<W: Write + Send> Observer for TraceWriter<W>
where
    W: std::fmt::Debug,
{
    fn on_event(&self, event: &ObsEvent) {
        // Tag each line with the emitting thread's ordinal so sharded
        // traces (speculation on workers, commit on the caller) can be
        // re-grouped into per-thread timelines offline. The tag is
        // spliced before the closing brace to keep the `{"ev":...}`
        // line shape.
        let mut line = event.to_json();
        line.pop(); // trailing '}'
        line.push_str(&format!(",\"thread\":{}}}", thread_ord()));
        let mut out = self.out.lock().expect("trace writer poisoned");
        if writeln!(out, "{line}").is_err() {
            self.errors.inc();
        }
    }
}

/// Forwards every event and span to each of a set of observers —
/// e.g. a JSON-lines trace *and* a periodic stats snapshotter on the
/// same run. Reports itself enabled iff any child is, and forwards
/// only to enabled children.
#[derive(Debug)]
pub struct Fanout {
    children: Vec<Arc<dyn Observer>>,
}

impl Fanout {
    /// Combines `children` into one observer.
    pub fn new(children: Vec<Arc<dyn Observer>>) -> Fanout {
        Fanout { children }
    }
}

impl Observer for Fanout {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }

    fn span_enter(&self, name: &'static str) {
        for c in &self.children {
            if c.enabled() {
                c.span_enter(name);
            }
        }
    }

    fn span_exit(&self, name: &'static str, nanos: u64) {
        for c in &self.children {
            if c.enabled() {
                c.span_exit(name, nanos);
            }
        }
    }

    fn on_event(&self, event: &ObsEvent) {
        for c in &self.children {
            if c.enabled() {
                c.on_event(event);
            }
        }
    }
}

/// Writes a full [`crate::MetricsSnapshot`] as one JSON line every
/// `every` committed steps — a poor-man's time series for watching a
/// long run converge without attaching a scraper. Write errors are
/// counted, not propagated.
#[derive(Debug)]
pub struct StatsSnapshotSink<W: Write + Send> {
    metrics: Metrics,
    every: u64,
    committed: AtomicU64,
    out: Mutex<W>,
    errors: crate::Counter,
}

impl<W: Write + Send> StatsSnapshotSink<W> {
    /// Snapshots `metrics` into `out` every `every` committed steps
    /// (`every` is clamped to ≥ 1).
    pub fn new(metrics: Metrics, every: u64, out: W) -> StatsSnapshotSink<W> {
        StatsSnapshotSink {
            metrics,
            every: every.max(1),
            committed: AtomicU64::new(0),
            out: Mutex::new(out),
            errors: crate::Counter::new(),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.errors.get()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("stats sink poisoned");
        let _ = w.flush();
        w
    }

    /// Flushes buffered output.
    pub fn flush(&self) {
        if self
            .out
            .lock()
            .expect("stats sink poisoned")
            .flush()
            .is_err()
        {
            self.errors.inc();
        }
    }
}

impl<W: Write + Send> Observer for StatsSnapshotSink<W>
where
    W: std::fmt::Debug,
{
    fn on_event(&self, event: &ObsEvent) {
        if !matches!(event, ObsEvent::StepCommitted { .. }) {
            return;
        }
        let n = self.committed.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every) {
            return;
        }
        let line = self.metrics.snapshot().to_json();
        let mut out = self.out.lock().expect("stats sink poisoned");
        if writeln!(out, "{line}").is_err() {
            self.errors.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckPath;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::StepStarted {
                step: 0,
                initial: "d.hire".into(),
            },
            ObsEvent::PermissionChecked {
                instance: "d".into(),
                event: "fire".into(),
                path: CheckPath::Scan,
                granted: true,
            },
            ObsEvent::StepCommitted {
                step: 0,
                occurrences: 1,
                nanos: 1234,
            },
        ]
    }

    #[test]
    fn recorder_keeps_order_and_counts() {
        let r = Recorder::new();
        for e in sample_events() {
            r.on_event(&e);
        }
        r.span_exit("step", 99);
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events()[0].kind(), "step_started");
        assert_eq!(r.count(|e| matches!(e, ObsEvent::StepCommitted { .. })), 1);
        assert_eq!(r.spans(), vec![("step", 99)]);
        r.clear();
        assert!(r.events().is_empty());
    }

    #[test]
    fn trace_writer_emits_one_json_object_per_line() {
        let w = TraceWriter::new(Vec::new());
        for e in sample_events() {
            w.on_event(&e);
        }
        let buf = w.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"ev\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains("\"thread\":"), "{line}");
        }
        assert!(lines[2].contains("\"nanos\":1234"));
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ord();
        assert_eq!(here, thread_ord());
        let other = std::thread::spawn(thread_ord).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn fanout_forwards_to_enabled_children_only() {
        use crate::NoopObserver;
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        let f = Fanout::new(vec![a.clone(), Arc::new(NoopObserver), b.clone()]);
        assert!(f.enabled());
        f.on_event(&ObsEvent::StepStarted {
            step: 0,
            initial: "x".into(),
        });
        f.span_exit("step", 7);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(a.spans(), vec![("step", 7)]);
        let empty = Fanout::new(vec![Arc::new(NoopObserver) as Arc<dyn Observer>]);
        assert!(!empty.enabled());
    }

    #[test]
    fn stats_sink_snapshots_every_n_commits() {
        let m = Metrics::new();
        let c = m.counter("steps.committed");
        let sink = StatsSnapshotSink::new(m.clone(), 2, Vec::new());
        for step in 0..5 {
            c.inc();
            sink.on_event(&ObsEvent::StepCommitted {
                step,
                occurrences: 1,
                nanos: 10,
            });
            // non-commit events never trigger a snapshot
            sink.on_event(&ObsEvent::StepStarted {
                step,
                initial: String::new(),
            });
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "commits 2 and 4 snapshot: {text}");
        assert!(lines[0].contains("\"steps.committed\":2"), "{text}");
        assert!(lines[1].contains("\"steps.committed\":4"), "{text}");
    }

    #[test]
    fn write_errors_are_swallowed_and_counted() {
        /// A writer that always fails.
        #[derive(Debug)]
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("broken pipe"))
            }
        }
        let w = TraceWriter::new(Broken);
        w.on_event(&ObsEvent::StepStarted {
            step: 0,
            initial: String::new(),
        });
        w.flush();
        assert_eq!(w.write_errors(), 2);
    }
}
