//! Built-in observer sinks: the in-memory [`Recorder`] for tests and
//! the JSON-lines [`TraceWriter`] for offline analysis.

use crate::{ObsEvent, Observer};
use std::io::Write;
use std::sync::Mutex;

/// Records every event (and span) in memory, in arrival order — the
/// assertion-friendly sink for tests.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<ObsEvent>>,
    spans: Mutex<Vec<(&'static str, u64)>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// All recorded events, in order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// All exited spans as `(name, nanos)`, in exit order.
    pub fn spans(&self) -> Vec<(&'static str, u64)> {
        self.spans.lock().expect("recorder poisoned").clone()
    }

    /// Number of recorded events matching the predicate.
    pub fn count(&self, pred: impl Fn(&ObsEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|e| pred(e))
            .count()
    }

    /// Drops all recorded events and spans.
    pub fn clear(&self) {
        self.events.lock().expect("recorder poisoned").clear();
        self.spans.lock().expect("recorder poisoned").clear();
    }
}

impl Observer for Recorder {
    fn on_event(&self, event: &ObsEvent) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(event.clone());
    }

    fn span_exit(&self, name: &'static str, nanos: u64) {
        self.spans
            .lock()
            .expect("recorder poisoned")
            .push((name, nanos));
    }
}

/// Streams events as JSON lines (one object per line) to any writer —
/// typically a buffered file for offline analysis of a run.
///
/// Write errors are counted, not propagated: observability must never
/// fail the observed step.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Send> {
    out: Mutex<W>,
    errors: crate::Counter,
}

impl<W: Write + Send> TraceWriter<W> {
    /// Wraps a writer. Callers that hand in a file usually want to wrap
    /// it in a [`std::io::BufWriter`] first.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter {
            out: Mutex::new(out),
            errors: crate::Counter::new(),
        }
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.errors.get()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("trace writer poisoned");
        let _ = w.flush();
        w
    }

    /// Flushes buffered output.
    pub fn flush(&self) {
        if self
            .out
            .lock()
            .expect("trace writer poisoned")
            .flush()
            .is_err()
        {
            self.errors.inc();
        }
    }
}

impl<W: Write + Send> Observer for TraceWriter<W>
where
    W: std::fmt::Debug,
{
    fn on_event(&self, event: &ObsEvent) {
        let line = event.to_json();
        let mut out = self.out.lock().expect("trace writer poisoned");
        if writeln!(out, "{line}").is_err() {
            self.errors.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckPath;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::StepStarted {
                step: 0,
                initial: "d.hire".into(),
            },
            ObsEvent::PermissionChecked {
                instance: "d".into(),
                event: "fire".into(),
                path: CheckPath::Scan,
                granted: true,
            },
            ObsEvent::StepCommitted {
                step: 0,
                occurrences: 1,
                nanos: 1234,
            },
        ]
    }

    #[test]
    fn recorder_keeps_order_and_counts() {
        let r = Recorder::new();
        for e in sample_events() {
            r.on_event(&e);
        }
        r.span_exit("step", 99);
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events()[0].kind(), "step_started");
        assert_eq!(r.count(|e| matches!(e, ObsEvent::StepCommitted { .. })), 1);
        assert_eq!(r.spans(), vec![("step", 99)]);
        r.clear();
        assert!(r.events().is_empty());
    }

    #[test]
    fn trace_writer_emits_one_json_object_per_line() {
        let w = TraceWriter::new(Vec::new());
        for e in sample_events() {
            w.on_event(&e);
        }
        let buf = w.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"ev\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(lines[2].contains("\"nanos\":1234"));
    }

    #[test]
    fn write_errors_are_swallowed_and_counted() {
        /// A writer that always fails.
        #[derive(Debug)]
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("broken pipe"))
            }
        }
        let w = TraceWriter::new(Broken);
        w.on_event(&ObsEvent::StepStarted {
            step: 0,
            initial: String::new(),
        });
        w.flush();
        assert_eq!(w.write_errors(), 2);
    }
}
