//! Process-global routing for one-shot evaluator-fallback warnings.
//!
//! Two fallbacks in the engine used to announce themselves with a bare
//! `eprintln!`: the temporal layer dropping to the history-scan
//! evaluator for an unmonitorable formula, and the VM keeping a term on
//! the tree walk because it would not compile. Both fire from layers
//! that cannot see a per-world [`Observer`] — the VM fallback even runs
//! at World *build* time, before any observer could be attached — so a
//! trace could never capture them.
//!
//! This module gives them a destination: the process registers a
//! warning observer (the CLI does this with the trace sink before
//! building the world), and [`note_fallback_warning`] routes each
//! warning there as a structured [`ObsEvent::FallbackNoted`]. When no
//! observer is registered (or it reports disabled) the function returns
//! `false` and the caller keeps its stderr behavior — plain runs look
//! exactly as before.

use crate::{ObsEvent, Observer};
use std::sync::{Arc, Mutex, OnceLock};

fn slot() -> &'static Mutex<Option<Arc<dyn Observer>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn Observer>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Registers `observer` as the process-wide destination for fallback
/// warnings, replacing any previous registration. Call before building
/// worlds to capture build-time (VM compile) fallbacks too.
pub fn set_warning_observer(observer: Arc<dyn Observer>) {
    *slot().lock().expect("warning observer poisoned") = Some(observer);
}

/// Removes the registered warning observer (warnings fall back to the
/// caller's stderr path again). Mainly for tests.
pub fn clear_warning_observer() {
    *slot().lock().expect("warning observer poisoned") = None;
}

/// Routes one fallback warning to the registered warning observer as an
/// [`ObsEvent::FallbackNoted`]. Returns `true` when an enabled observer
/// consumed it; `false` means no observer is attached (or it is
/// disabled) and the caller should preserve its stderr warning.
pub fn note_fallback_warning(fallback: &str, what: &str, detail: &str) -> bool {
    let observer = slot().lock().expect("warning observer poisoned").clone();
    match observer {
        Some(obs) if obs.enabled() => {
            obs.on_event(&ObsEvent::FallbackNoted {
                fallback: fallback.to_string(),
                what: what.to_string(),
                detail: detail.to_string(),
            });
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoopObserver, Recorder};

    #[test]
    fn routes_to_registered_observer_else_reports_unconsumed() {
        // Serialize against other tests touching the global slot.
        clear_warning_observer();
        assert!(!note_fallback_warning("vm.fallback", "t", "why"));

        let rec = Arc::new(Recorder::new());
        set_warning_observer(rec.clone());
        assert!(note_fallback_warning(
            "temporal.scan_fallback",
            "sometime(p)",
            "future"
        ));
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            ObsEvent::FallbackNoted {
                fallback,
                what,
                detail,
            } => {
                assert_eq!(fallback, "temporal.scan_fallback");
                assert_eq!(what, "sometime(p)");
                assert_eq!(detail, "future");
            }
            other => panic!("unexpected {other:?}"),
        }

        // disabled observers do not consume warnings
        set_warning_observer(Arc::new(NoopObserver));
        assert!(!note_fallback_warning("vm.fallback", "t", "why"));
        clear_warning_observer();
    }
}
