//! Event alphabets: the action signatures of templates.

use std::collections::BTreeMap;
use std::fmt;

/// Classification of an event within a template's life cycle.
///
/// TROLL marks events as `birth` (create the object), `death` (destroy
/// it) or plain update events; `active` events may occur on the object's
/// own initiative (§4: "events that may occur on the object's own
/// initiative whenever their occurrence is possible").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum EventKind {
    /// Creates the object; must be the first event of any life cycle.
    Birth,
    /// Ordinary update event.
    #[default]
    Update,
    /// Destroys the object; terminal in any life cycle.
    Death,
    /// Update event that the object may trigger itself.
    Active,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Birth => write!(f, "birth"),
            EventKind::Update => write!(f, "update"),
            EventKind::Death => write!(f, "death"),
            EventKind::Active => write!(f, "active"),
        }
    }
}

/// An event symbol: name, arity, and life-cycle kind.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventSymbol {
    /// Event name.
    pub name: String,
    /// Number of data parameters.
    pub arity: usize,
    /// Life-cycle classification.
    pub kind: EventKind,
}

impl EventSymbol {
    /// Creates an event symbol.
    pub fn new(name: impl Into<String>, arity: usize, kind: EventKind) -> Self {
        EventSymbol {
            name: name.into(),
            arity,
            kind,
        }
    }

    /// An update event.
    pub fn update(name: impl Into<String>, arity: usize) -> Self {
        EventSymbol::new(name, arity, EventKind::Update)
    }

    /// A birth event.
    pub fn birth(name: impl Into<String>, arity: usize) -> Self {
        EventSymbol::new(name, arity, EventKind::Birth)
    }

    /// A death event.
    pub fn death(name: impl Into<String>, arity: usize) -> Self {
        EventSymbol::new(name, arity, EventKind::Death)
    }
}

impl fmt::Display for EventSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} [{}]", self.name, self.arity, self.kind)
    }
}

/// A finite alphabet of event symbols, keyed by name.
///
/// # Example
///
/// ```
/// use troll_process::{Alphabet, EventSymbol, EventKind};
/// let mut a = Alphabet::new();
/// a.insert(EventSymbol::birth("establishment", 1));
/// a.insert(EventSymbol::update("hire", 1));
/// a.insert(EventSymbol::death("closure", 0));
/// assert_eq!(a.kind_of("hire"), Some(EventKind::Update));
/// assert_eq!(a.birth_events().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    symbols: BTreeMap<String, EventSymbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Inserts a symbol; returns the previous symbol with the same name,
    /// if any.
    pub fn insert(&mut self, symbol: EventSymbol) -> Option<EventSymbol> {
        self.symbols.insert(symbol.name.clone(), symbol)
    }

    /// Looks up a symbol by name.
    pub fn get(&self, name: &str) -> Option<&EventSymbol> {
        self.symbols.get(name)
    }

    /// Whether the alphabet contains an event of the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    /// The life-cycle kind of the named event, if present.
    pub fn kind_of(&self, name: &str) -> Option<EventKind> {
        self.symbols.get(name).map(|s| s.kind)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over all symbols in name order.
    pub fn iter(&self) -> impl Iterator<Item = &EventSymbol> {
        self.symbols.values()
    }

    /// Iterates over birth events.
    pub fn birth_events(&self) -> impl Iterator<Item = &EventSymbol> {
        self.iter().filter(|s| s.kind == EventKind::Birth)
    }

    /// Iterates over death events.
    pub fn death_events(&self) -> impl Iterator<Item = &EventSymbol> {
        self.iter().filter(|s| s.kind == EventKind::Death)
    }

    /// Iterates over active events.
    pub fn active_events(&self) -> impl Iterator<Item = &EventSymbol> {
        self.iter().filter(|s| s.kind == EventKind::Active)
    }

    /// The names shared between two alphabets — the synchronization set
    /// of event sharing.
    pub fn shared_names<'a>(&'a self, other: &'a Alphabet) -> Vec<&'a str> {
        self.symbols
            .keys()
            .filter(|n| other.contains(n))
            .map(String::as_str)
            .collect()
    }

    /// Whether `other`'s symbols are a sub-signature of `self` (same
    /// names imply same arity and kind). Template morphisms in the kernel
    /// crate build on this.
    pub fn includes(&self, other: &Alphabet) -> bool {
        other
            .iter()
            .all(|s| self.get(&s.name).is_some_and(|mine| mine == s))
    }
}

impl FromIterator<EventSymbol> for Alphabet {
    fn from_iter<I: IntoIterator<Item = EventSymbol>>(iter: I) -> Self {
        let mut a = Alphabet::new();
        for s in iter {
            a.insert(s);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept_alphabet() -> Alphabet {
        vec![
            EventSymbol::birth("establishment", 1),
            EventSymbol::death("closure", 0),
            EventSymbol::update("new_manager", 1),
            EventSymbol::update("hire", 1),
            EventSymbol::update("fire", 1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn classification_queries() {
        let a = dept_alphabet();
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.kind_of("hire"), Some(EventKind::Update));
        assert_eq!(a.kind_of("closure"), Some(EventKind::Death));
        assert_eq!(a.kind_of("nope"), None);
        assert_eq!(a.birth_events().count(), 1);
        assert_eq!(a.death_events().count(), 1);
        assert_eq!(a.active_events().count(), 0);
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut a = dept_alphabet();
        let old = a.insert(EventSymbol::update("hire", 2));
        assert_eq!(old, Some(EventSymbol::update("hire", 1)));
        assert_eq!(a.get("hire").unwrap().arity, 2);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn shared_names_for_event_sharing() {
        let cpu: Alphabet = vec![
            EventSymbol::update("switch_on", 0),
            EventSymbol::update("execute", 1),
        ]
        .into_iter()
        .collect();
        let powsply: Alphabet = vec![
            EventSymbol::update("switch_on", 0),
            EventSymbol::update("surge", 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(cpu.shared_names(&powsply), vec!["switch_on"]);
    }

    #[test]
    fn signature_inclusion() {
        let a = dept_alphabet();
        let sub: Alphabet = vec![
            EventSymbol::update("hire", 1),
            EventSymbol::update("fire", 1),
        ]
        .into_iter()
        .collect();
        assert!(a.includes(&sub));
        let wrong_arity: Alphabet = vec![EventSymbol::update("hire", 2)].into_iter().collect();
        assert!(!a.includes(&wrong_arity));
        let wrong_kind: Alphabet = vec![EventSymbol::birth("hire", 1)].into_iter().collect();
        assert!(!a.includes(&wrong_kind));
    }

    #[test]
    fn display() {
        assert_eq!(
            EventSymbol::birth("establishment", 1).to_string(),
            "establishment/1 [birth]"
        );
    }
}
