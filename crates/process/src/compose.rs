//! Parallel composition with synchronization — event sharing.
//!
//! The paper's Example 3.7: the cable `CBZ` is a shared part of cpu `CYY`
//! and power supply `PXX`; "if the power supply is switched on, the cable
//! and the cpu are switched on at the same time". At the process level
//! this is the classical synchronous product: shared labels must be taken
//! jointly, private labels interleave.

use crate::Lts;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Synchronous product of two LTSs.
///
/// Labels in `sync` must be performed by both systems simultaneously;
/// all other labels interleave. Only states reachable from the joint
/// initial state are constructed.
///
/// Returns the product LTS together with the mapping from product state
/// ids to the underlying state pairs (useful for diagnostics).
///
/// # Example
///
/// ```
/// use troll_process::{Lts, compose::sync_product};
/// let mut ps = Lts::new(2, 0);
/// ps.add_transition(0, "switch_on", 1);
/// ps.add_transition(1, "switch_off", 0);
/// let mut cpu = Lts::new(2, 0);
/// cpu.add_transition(0, "switch_on", 1);
/// cpu.add_transition(1, "exec", 1);
/// cpu.add_transition(1, "switch_off", 0);
///
/// let (prod, _) = sync_product(&ps, &cpu, &["switch_on", "switch_off"]);
/// // switching on happens jointly; exec interleaves afterwards
/// assert!(prod.accepts(["switch_on", "exec", "switch_off"]));
/// // cpu cannot exec before the shared switch_on
/// assert!(!prod.accepts(["exec"]));
/// ```
pub fn sync_product(a: &Lts, b: &Lts, sync: &[&str]) -> (Lts, Vec<(usize, usize)>) {
    let sync: BTreeSet<&str> = sync.iter().copied().collect();
    let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut lts = Lts::new(0, 0);

    let get_or_insert = |pair: (usize, usize),
                         lts: &mut Lts,
                         pairs: &mut Vec<(usize, usize)>,
                         index: &mut BTreeMap<(usize, usize), usize>| {
        if let Some(&id) = index.get(&pair) {
            return (id, false);
        }
        let id = lts.add_state();
        index.insert(pair, id);
        pairs.push(pair);
        (id, true)
    };

    let initial_pair = (a.initial(), b.initial());
    let (initial_id, _) = get_or_insert(initial_pair, &mut lts, &mut pairs, &mut index);
    debug_assert_eq!(initial_id, 0);

    let mut queue = VecDeque::from([initial_pair]);
    let mut visited = BTreeSet::from([initial_pair]);
    while let Some((sa, sb)) = queue.pop_front() {
        let from_id = index[&(sa, sb)];
        // moves of a
        for (label, ta) in a.outgoing(sa) {
            if sync.contains(label) {
                // must synchronize with b
                for tb in b.successors(sb, label) {
                    let (to_id, _) = get_or_insert((ta, tb), &mut lts, &mut pairs, &mut index);
                    lts.add_transition(from_id, label, to_id);
                    if visited.insert((ta, tb)) {
                        queue.push_back((ta, tb));
                    }
                }
            } else {
                let (to_id, _) = get_or_insert((ta, sb), &mut lts, &mut pairs, &mut index);
                lts.add_transition(from_id, label, to_id);
                if visited.insert((ta, sb)) {
                    queue.push_back((ta, sb));
                }
            }
        }
        // private moves of b (shared moves handled above)
        for (label, tb) in b.outgoing(sb) {
            if !sync.contains(label) {
                let (to_id, _) = get_or_insert((sa, tb), &mut lts, &mut pairs, &mut index);
                lts.add_transition(from_id, label, to_id);
                if visited.insert((sa, tb)) {
                    queue.push_back((sa, tb));
                }
            }
        }
    }
    (lts, pairs)
}

/// N-ary synchronous product, synchronizing every pair of components on
/// the intersection of their label sets (CSP-style alphabetized
/// parallel): a label shared by *k* components requires all *k* to move.
///
/// This is how a sharing diagram `CYY·cpu → CBZ·cable ← PXX·powsply`
/// executes: the cable's events are in the alphabets of both cpu and
/// power supply, so all three move together.
pub fn sync_product_all(components: &[(&Lts, BTreeSet<String>)]) -> Lts {
    match components {
        [] => Lts::new(1, 0),
        [(first, _)] => (*first).clone(),
        [(first, first_alpha), rest @ ..] => {
            let mut acc: Lts = (*first).clone();
            let mut acc_alpha = first_alpha.clone();
            for (next, next_alpha) in rest {
                let shared: Vec<&str> = acc_alpha
                    .intersection(next_alpha)
                    .map(String::as_str)
                    .collect();
                let (prod, _) = sync_product(&acc, next, &shared);
                acc = prod;
                acc_alpha.extend(next_alpha.iter().cloned());
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggler(on: &str, off: &str) -> Lts {
        let mut l = Lts::new(2, 0);
        l.add_transition(0, on, 1);
        l.add_transition(1, off, 0);
        l
    }

    #[test]
    fn shared_labels_synchronize() {
        let ps = toggler("switch_on", "switch_off");
        let cpu = {
            let mut l = toggler("switch_on", "switch_off");
            l.add_transition(1, "exec", 1);
            l
        };
        let (prod, pairs) = sync_product(&ps, &cpu, &["switch_on", "switch_off"]);
        assert!(prod.accepts(["switch_on", "exec", "exec", "switch_off", "switch_on"]));
        assert!(!prod.accepts(["exec"]));
        assert!(!prod.accepts(["switch_on", "switch_on"]));
        // product is reachable-only: 2 joint states
        assert_eq!(prod.num_states(), 2);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (0, 0));
    }

    #[test]
    fn private_labels_interleave() {
        let a = {
            let mut l = Lts::new(2, 0);
            l.add_transition(0, "x", 1);
            l
        };
        let b = {
            let mut l = Lts::new(2, 0);
            l.add_transition(0, "y", 1);
            l
        };
        let (prod, _) = sync_product(&a, &b, &[]);
        assert!(prod.accepts(["x", "y"]));
        assert!(prod.accepts(["y", "x"]));
        assert_eq!(prod.num_states(), 4);
    }

    #[test]
    fn deadlock_when_sync_impossible() {
        // a requires "go" but b never offers it
        let a = {
            let mut l = Lts::new(2, 0);
            l.add_transition(0, "go", 1);
            l
        };
        let b = Lts::new(1, 0);
        let (prod, _) = sync_product(&a, &b, &["go"]);
        assert!(!prod.accepts(["go"]));
        assert_eq!(prod.num_transitions(), 0);
    }

    #[test]
    fn example_3_7_cable_shared_by_cpu_and_powsply() {
        // cable: switch_on/switch_off toggling
        let cable = toggler("cable_on", "cable_off");
        // power supply: its switch_on forces cable_on (modelled by the
        // shared label), then may surge privately
        let mut powsply = Lts::new(2, 0);
        powsply.add_transition(0, "cable_on", 1);
        powsply.add_transition(1, "surge", 1);
        powsply.add_transition(1, "cable_off", 0);
        // cpu: computes only while the cable is on
        let mut cpu = Lts::new(2, 0);
        cpu.add_transition(0, "cable_on", 1);
        cpu.add_transition(1, "compute", 1);
        cpu.add_transition(1, "cable_off", 0);

        let alpha =
            |l: &Lts| -> BTreeSet<String> { l.labels().into_iter().map(str::to_string).collect() };
        let prod = sync_product_all(&[
            (&cable, alpha(&cable)),
            (&powsply, alpha(&powsply)),
            (&cpu, alpha(&cpu)),
        ]);
        // joint switch-on, then both private activities, joint switch-off
        assert!(prod.accepts(["cable_on", "surge", "compute", "cable_off"]));
        // compute impossible before the shared cable_on
        assert!(!prod.accepts(["compute"]));
        assert!(!prod.accepts(["surge"]));
        // cable_on is a three-way synchronization: only one transition from start
        assert_eq!(prod.outgoing(prod.initial()).count(), 1);
    }

    #[test]
    fn nary_product_edge_cases() {
        let empty = sync_product_all(&[]);
        assert!(empty.accepts([] as [&str; 0]));
        let single = toggler("a", "b");
        let alpha: BTreeSet<String> = single.labels().into_iter().map(str::to_string).collect();
        let p = sync_product_all(&[(&single, alpha)]);
        assert!(p.accepts(["a", "b", "a"]));
    }
}
