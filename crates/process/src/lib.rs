//! # troll-process — templates as processes
//!
//! The semantic basis of TROLL (Saake, Jungclaus, Ehrich 1991, §3):
//! "Conceptually, objects can be treated as communicating processes with
//! observable attributes \[SE90\]. … Formally, a template can be modeled
//! as a process \[ES91\]."
//!
//! This crate provides the process dimension:
//!
//! * [`Alphabet`] — event symbols with arities, with birth/death
//!   classification (TROLL's `birth`/`death` event markers).
//! * [`Lts`] — finite labelled transition systems over event labels: the
//!   behaviour patterns of templates. Life-cycle validity (must start
//!   with a birth event, death is terminal) is checked here.
//! * [`ProcessTerm`] — regular process expressions (sequence, choice,
//!   iteration) compiled to LTSs; these model *derived events* and
//!   *transaction calling*, where "an event … call\[s\] a finite sequence
//!   of other events treated as a transaction unit" (§4).
//! * [`compose::sync_product`] — parallel composition synchronizing on
//!   shared labels: the process-level meaning of **event sharing**
//!   (Example 3.7's cable shared between cpu and power supply).
//! * [`simulate`] — simulation preorder checking between LTSs (with
//!   relabelling), the operational core of refinement correctness in
//!   `troll-refine`: every behaviour of the abstract template must be
//!   matched by the implementation.
//!
//! # Example
//!
//! ```
//! use troll_process::{Lts, simulate};
//!
//! // el_device: switch_on / switch_off alternate, starting with on
//! let mut dev = Lts::new(2, 0);
//! dev.add_transition(0, "switch_on", 1);
//! dev.add_transition(1, "switch_off", 0);
//!
//! // computer: same protocol plus a `compute` loop while on
//! let mut comp = Lts::new(2, 0);
//! comp.add_transition(0, "switch_on", 1);
//! comp.add_transition(1, "compute", 1);
//! comp.add_transition(1, "switch_off", 0);
//!
//! // The computer's behaviour "contains" that of the device (Example 3.4):
//! // restricted to the device alphabet, computer is simulated by device.
//! let restricted = comp.restrict_to(&["switch_on", "switch_off"]);
//! assert!(simulate::simulates(&dev, &restricted));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
pub mod compose;
mod lts;
pub mod minimize;
pub mod simulate;
mod term;

pub use alphabet::{Alphabet, EventKind, EventSymbol};
pub use lts::{Lts, StateId};
pub use term::ProcessTerm;
