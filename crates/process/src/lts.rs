//! Finite labelled transition systems — behaviour patterns of templates.

use crate::{Alphabet, EventKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of a state within an [`Lts`].
pub type StateId = usize;

/// A finite labelled transition system.
///
/// States are dense indices; transitions are labelled by event names.
/// Nondeterminism is allowed (several same-labelled transitions from one
/// state). The LTS of a template describes its *admissible* event
/// sequences — the paper's permissions restrict "the set of possible
/// sequences over the alphabet of events to admissible sequences" (§4).
///
/// # Example
///
/// ```
/// use troll_process::Lts;
/// let mut dev = Lts::new(2, 0);
/// dev.add_transition(0, "switch_on", 1);
/// dev.add_transition(1, "switch_off", 0);
/// assert!(dev.accepts(["switch_on", "switch_off", "switch_on"]));
/// assert!(!dev.accepts(["switch_off"]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lts {
    num_states: usize,
    initial: StateId,
    /// state -> label -> successor set
    transitions: BTreeMap<StateId, BTreeMap<String, BTreeSet<StateId>>>,
}

impl Lts {
    /// Creates an LTS with `num_states` states and the given initial
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= num_states` and `num_states > 0`.
    pub fn new(num_states: usize, initial: StateId) -> Self {
        assert!(
            num_states == 0 || initial < num_states,
            "initial state {initial} out of range for {num_states} states"
        );
        Lts {
            num_states,
            initial,
            transitions: BTreeMap::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: StateId, label: impl Into<String>, to: StateId) {
        assert!(from < self.num_states, "from-state out of range");
        assert!(to < self.num_states, "to-state out of range");
        self.transitions
            .entry(from)
            .or_default()
            .entry(label.into())
            .or_default()
            .insert(to);
    }

    /// Successors of `state` under `label`.
    pub fn successors(&self, state: StateId, label: &str) -> impl Iterator<Item = StateId> + '_ {
        self.transitions
            .get(&state)
            .and_then(|by_label| by_label.get(label))
            .into_iter()
            .flatten()
            .copied()
    }

    /// All outgoing `(label, successor)` pairs of `state`.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = (&str, StateId)> + '_ {
        self.transitions
            .get(&state)
            .into_iter()
            .flat_map(|by_label| {
                by_label
                    .iter()
                    .flat_map(|(l, succs)| succs.iter().map(move |s| (l.as_str(), *s)))
            })
    }

    /// The set of labels appearing on any transition.
    pub fn labels(&self) -> BTreeSet<&str> {
        self.transitions
            .values()
            .flat_map(|by_label| by_label.keys().map(String::as_str))
            .collect()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions
            .values()
            .flat_map(|m| m.values())
            .map(|s| s.len())
            .sum()
    }

    /// Whether the LTS accepts the given label sequence from its initial
    /// state (as a *prefix* behaviour: every state is accepting, matching
    /// the prefix-closed trace semantics of processes).
    pub fn accepts<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let mut current: BTreeSet<StateId> = BTreeSet::from([self.initial]);
        for label in word {
            let mut next = BTreeSet::new();
            for s in &current {
                next.extend(self.successors(*s, label));
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        true
    }

    /// Enumerates all accepted label sequences of length up to
    /// `max_depth` (the finite trace language used by tests and by
    /// refinement checking on small templates).
    pub fn traces_up_to(&self, max_depth: usize) -> Vec<Vec<String>> {
        let mut out = vec![vec![]];
        let mut frontier: Vec<(StateId, Vec<String>)> = vec![(self.initial, vec![])];
        for _ in 0..max_depth {
            let mut next_frontier = Vec::new();
            for (state, prefix) in frontier {
                for (label, succ) in self.outgoing(state) {
                    let mut w = prefix.clone();
                    w.push(label.to_string());
                    out.push(w.clone());
                    next_frontier.push((succ, w));
                }
            }
            if next_frontier.is_empty() {
                break;
            }
            frontier = next_frontier;
        }
        out.sort();
        out.dedup();
        out
    }

    /// States reachable from the initial state.
    pub fn reachable(&self) -> BTreeSet<StateId> {
        let mut seen = BTreeSet::from([self.initial]);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(s) = queue.pop_front() {
            for (_, succ) in self.outgoing(s) {
                if seen.insert(succ) {
                    queue.push_back(succ);
                }
            }
        }
        seen
    }

    /// Restricts the LTS to transitions whose label is in `keep`,
    /// preserving states — the alphabet projection used when comparing a
    /// specialized template against its base (Example 3.4: a computer,
    /// viewed only through `switch_on`/`switch_off`, behaves like an
    /// electronic device).
    pub fn restrict_to(&self, keep: &[&str]) -> Lts {
        let keep: BTreeSet<&str> = keep.iter().copied().collect();
        let mut out = Lts::new(self.num_states, self.initial);
        for (from, by_label) in &self.transitions {
            for (label, succs) in by_label {
                if keep.contains(label.as_str()) {
                    for to in succs {
                        out.add_transition(*from, label.clone(), *to);
                    }
                }
            }
        }
        out
    }

    /// Renames labels via the given map; labels not in the map are kept.
    /// This applies a template-morphism's event mapping to behaviour
    /// (e.g. `switch_on_c ↦ switch_on` in Example 3.4).
    pub fn relabel(&self, map: &BTreeMap<String, String>) -> Lts {
        let mut out = Lts::new(self.num_states, self.initial);
        for (from, by_label) in &self.transitions {
            for (label, succs) in by_label {
                let new_label = map.get(label).cloned().unwrap_or_else(|| label.clone());
                for to in succs {
                    out.add_transition(*from, new_label.clone(), *to);
                }
            }
        }
        out
    }

    /// Checks life-cycle validity against an alphabet: every transition
    /// out of the initial state is a birth event, birth events occur only
    /// there, and death events lead to states with no outgoing
    /// transitions. Labels missing from the alphabet are reported too.
    ///
    /// Returns the list of violations (empty = valid).
    pub fn life_cycle_violations(&self, alphabet: &Alphabet) -> Vec<String> {
        let mut violations = Vec::new();
        for (from, by_label) in &self.transitions {
            for (label, succs) in by_label {
                let kind = match alphabet.kind_of(label) {
                    Some(k) => k,
                    None => {
                        violations.push(format!("label `{label}` not in alphabet"));
                        continue;
                    }
                };
                if *from == self.initial && kind != EventKind::Birth {
                    violations.push(format!(
                        "non-birth event `{label}` leaves the initial state"
                    ));
                }
                if *from != self.initial && kind == EventKind::Birth {
                    violations.push(format!(
                        "birth event `{label}` occurs after the initial state"
                    ));
                }
                if kind == EventKind::Death {
                    for s in succs {
                        if self.outgoing(*s).next().is_some() {
                            violations.push(format!(
                                "death event `{label}` leads to non-terminal state {s}"
                            ));
                        }
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSymbol;
    use proptest::prelude::*;

    /// The DEPT life cycle: establishment; (hire|fire|new_manager)*; closure
    fn dept_lts() -> Lts {
        let mut l = Lts::new(3, 0);
        l.add_transition(0, "establishment", 1);
        l.add_transition(1, "hire", 1);
        l.add_transition(1, "fire", 1);
        l.add_transition(1, "new_manager", 1);
        l.add_transition(1, "closure", 2);
        l
    }

    fn dept_alphabet() -> Alphabet {
        vec![
            EventSymbol::birth("establishment", 1),
            EventSymbol::death("closure", 0),
            EventSymbol::update("new_manager", 1),
            EventSymbol::update("hire", 1),
            EventSymbol::update("fire", 1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn accepts_prefix_closed_language() {
        let l = dept_lts();
        assert!(l.accepts([]));
        assert!(l.accepts(["establishment"]));
        assert!(l.accepts(["establishment", "hire", "fire", "closure"]));
        assert!(!l.accepts(["hire"]));
        assert!(!l.accepts(["establishment", "closure", "hire"]));
        assert!(!l.accepts(["establishment", "establishment"]));
    }

    #[test]
    fn valid_life_cycle_has_no_violations() {
        assert!(dept_lts()
            .life_cycle_violations(&dept_alphabet())
            .is_empty());
    }

    #[test]
    fn life_cycle_violations_detected() {
        let mut l = dept_lts();
        // hire out of the initial state: non-birth at initial
        l.add_transition(0, "hire", 1);
        // establishment again later: birth after initial
        l.add_transition(1, "establishment", 1);
        // closure into a live state
        l.add_transition(1, "closure", 1);
        let v = l.life_cycle_violations(&dept_alphabet());
        assert_eq!(v.len(), 3, "{v:?}");
        // unknown label
        let mut l2 = dept_lts();
        l2.add_transition(1, "mystery", 1);
        let v2 = l2.life_cycle_violations(&dept_alphabet());
        assert!(v2.iter().any(|m| m.contains("mystery")));
    }

    #[test]
    fn traces_enumeration() {
        let l = dept_lts();
        let traces = l.traces_up_to(2);
        assert!(traces.contains(&vec![]));
        assert!(traces.contains(&vec!["establishment".to_string()]));
        assert!(traces.contains(&vec!["establishment".to_string(), "hire".to_string()]));
        assert!(!traces
            .iter()
            .any(|t| t.first().map(String::as_str) == Some("hire")));
        // all traces accepted
        for t in &traces {
            assert!(l.accepts(t.iter().map(String::as_str)));
        }
    }

    #[test]
    fn reachability() {
        let mut l = dept_lts();
        let unreachable = l.add_state();
        l.add_transition(unreachable, "hire", 1);
        let r = l.reachable();
        assert!(r.contains(&0) && r.contains(&1) && r.contains(&2));
        assert!(!r.contains(&unreachable));
    }

    #[test]
    fn restriction_and_relabel() {
        let l = dept_lts();
        let r = l.restrict_to(&["establishment", "closure"]);
        assert!(r.accepts(["establishment", "closure"]));
        assert!(!r.accepts(["establishment", "hire"]));
        let map: BTreeMap<String, String> = [("hire".to_string(), "hire_c".to_string())].into();
        let rl = l.relabel(&map);
        assert!(rl.accepts(["establishment", "hire_c"]));
        assert!(!rl.accepts(["establishment", "hire"]));
    }

    #[test]
    fn nondeterminism_supported() {
        let mut l = Lts::new(3, 0);
        l.add_transition(0, "a", 1);
        l.add_transition(0, "a", 2);
        l.add_transition(1, "b", 1);
        assert!(l.accepts(["a", "b"]));
        assert_eq!(l.successors(0, "a").count(), 2);
        assert_eq!(l.num_transitions(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_bounds_checked() {
        let mut l = Lts::new(1, 0);
        l.add_transition(0, "a", 5);
    }

    proptest! {
        /// Every enumerated trace is accepted, and acceptance is
        /// prefix-closed.
        #[test]
        fn traces_sound_and_prefix_closed(depth in 1usize..5) {
            let l = dept_lts();
            for t in l.traces_up_to(depth) {
                prop_assert!(l.accepts(t.iter().map(String::as_str)));
                if !t.is_empty() {
                    let prefix = &t[..t.len() - 1];
                    prop_assert!(l.accepts(prefix.iter().map(String::as_str)));
                }
            }
        }
    }
}
