//! Bisimulation-quotient minimization of LTSs.
//!
//! Templates produced by specialization chains and synchronous products
//! accumulate redundant states; the quotient under strong bisimilarity
//! is the canonical minimal representative, useful for comparing
//! behaviours structurally and for readable refinement diagnostics.

use crate::Lts;
use std::collections::{BTreeMap, BTreeSet};

/// Computes the quotient of the reachable part of `lts` under strong
/// bisimilarity (partition refinement): the result is bisimilar to the
/// input and has one state per bisimulation class.
///
/// # Example
///
/// ```
/// use troll_process::{Lts, minimize::quotient, simulate::bisimilar};
/// // an "unrolled" two-cycle of the same behaviour
/// let mut unrolled = Lts::new(4, 0);
/// unrolled.add_transition(0, "a", 1);
/// unrolled.add_transition(1, "b", 2);
/// unrolled.add_transition(2, "a", 3);
/// unrolled.add_transition(3, "b", 0);
/// let min = quotient(&unrolled);
/// assert_eq!(min.num_states(), 2);
/// assert!(bisimilar(&unrolled, &min));
/// ```
pub fn quotient(lts: &Lts) -> Lts {
    let reachable: Vec<usize> = lts.reachable().into_iter().collect();
    if reachable.is_empty() {
        return Lts::new(1, 0);
    }

    // initial partition: states grouped by their outgoing label set
    let mut block_of: BTreeMap<usize, usize> = BTreeMap::new();
    {
        let mut by_signature: BTreeMap<BTreeSet<String>, usize> = BTreeMap::new();
        for &s in &reachable {
            let signature: BTreeSet<String> = lts.outgoing(s).map(|(l, _)| l.to_string()).collect();
            let next_block = by_signature.len();
            let block = *by_signature.entry(signature).or_insert(next_block);
            block_of.insert(s, block);
        }
    }

    // refine: split blocks by (current block, label → successor blocks)
    // until the partition is stable (block count stops growing)
    loop {
        let mut new_block_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut key_to_block: BTreeMap<(usize, BTreeMap<String, BTreeSet<usize>>), usize> =
            BTreeMap::new();
        for &s in &reachable {
            let mut succ_profile: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
            for (label, t) in lts.outgoing(s) {
                succ_profile
                    .entry(label.to_string())
                    .or_default()
                    .insert(block_of[&t]);
            }
            let key = (block_of[&s], succ_profile);
            let next = key_to_block.len();
            let block = *key_to_block.entry(key).or_insert(next);
            new_block_of.insert(s, block);
        }
        let stable = key_to_block.len() == count_blocks(&block_of);
        block_of = new_block_of;
        if stable {
            break;
        }
    }

    // build the quotient
    let num_blocks = count_blocks(&block_of);
    let initial_block = block_of[&lts.initial()];
    let mut out = Lts::new(num_blocks, initial_block);
    let mut added: BTreeSet<(usize, String, usize)> = BTreeSet::new();
    for &s in &reachable {
        for (label, t) in lts.outgoing(s) {
            let edge = (block_of[&s], label.to_string(), block_of[&t]);
            if added.insert(edge.clone()) {
                out.add_transition(edge.0, edge.1, edge.2);
            }
        }
    }
    out
}

fn count_blocks(block_of: &BTreeMap<usize, usize>) -> usize {
    block_of.values().collect::<BTreeSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::bisimilar;

    #[test]
    fn collapses_duplicate_states() {
        // two parallel identical branches
        let mut l = Lts::new(5, 0);
        l.add_transition(0, "a", 1);
        l.add_transition(0, "a", 2);
        l.add_transition(1, "b", 3);
        l.add_transition(2, "b", 4);
        let min = quotient(&l);
        assert!(bisimilar(&l, &min));
        assert_eq!(min.num_states(), 3, "{min:?}");
    }

    #[test]
    fn distinguishes_genuinely_different_states() {
        let mut l = Lts::new(3, 0);
        l.add_transition(0, "a", 1);
        l.add_transition(1, "b", 2);
        let min = quotient(&l);
        assert_eq!(min.num_states(), 3);
        assert!(bisimilar(&l, &min));
    }

    #[test]
    fn drops_unreachable_states() {
        let mut l = Lts::new(4, 0);
        l.add_transition(0, "a", 1);
        l.add_transition(2, "z", 3); // unreachable island
        let min = quotient(&l);
        assert!(min.num_states() <= 2);
        assert!(bisimilar(&l, &min));
        assert!(!min.labels().contains("z"));
    }

    #[test]
    fn unrolled_cycle_collapses() {
        let mut unrolled = Lts::new(6, 0);
        for i in 0..6 {
            let label = if i % 2 == 0 { "on" } else { "off" };
            unrolled.add_transition(i, label, (i + 1) % 6);
        }
        let min = quotient(&unrolled);
        assert_eq!(min.num_states(), 2);
        assert!(bisimilar(&unrolled, &min));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Lts::new(1, 0);
        let min = quotient(&empty);
        assert_eq!(min.num_states(), 1);
        assert!(bisimilar(&empty, &min));
    }

    #[test]
    fn quotient_of_sync_product_stays_bisimilar() {
        use crate::compose::sync_product;
        let mut a = Lts::new(2, 0);
        a.add_transition(0, "go", 1);
        a.add_transition(1, "stop", 0);
        let mut b = Lts::new(2, 0);
        b.add_transition(0, "go", 1);
        b.add_transition(1, "work", 1);
        b.add_transition(1, "stop", 0);
        let (prod, _) = sync_product(&a, &b, &["go", "stop"]);
        let min = quotient(&prod);
        assert!(bisimilar(&prod, &min));
        assert!(min.num_states() <= prod.num_states());
    }
}
