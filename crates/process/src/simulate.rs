//! Simulation and bisimulation checking between LTSs.
//!
//! Refinement correctness in the paper (§5.2) requires that "all
//! properties of the original … specification can be derived from" the
//! implementation. Operationally we check the behavioural half of this as
//! a **simulation**: every step the abstract template can take must be
//! matched (under the refinement's event mapping) by the implementation.

use crate::Lts;
use std::collections::BTreeSet;

/// Whether `simulator` simulates `simulated`: there is a simulation
/// relation `R` with `(simulated.initial, simulator.initial) ∈ R` such
/// that whenever `(s, t) ∈ R` and `s --l--> s'`, there is `t --l--> t'`
/// with `(s', t') ∈ R`.
///
/// Intuitively: everything `simulated` can do, `simulator` can match.
///
/// # Example
///
/// ```
/// use troll_process::{Lts, simulate::simulates};
/// let mut spec = Lts::new(1, 0);
/// spec.add_transition(0, "a", 0);
/// spec.add_transition(0, "b", 0);
/// let mut restricted = Lts::new(1, 0);
/// restricted.add_transition(0, "a", 0);
/// assert!(simulates(&spec, &restricted)); // spec matches everything restricted does
/// assert!(!simulates(&restricted, &spec)); // restricted cannot match "b"
/// ```
pub fn simulates(simulator: &Lts, simulated: &Lts) -> bool {
    greatest_simulation(simulator, simulated).contains(&(simulated.initial(), simulator.initial()))
}

/// Computes the greatest simulation relation as a set of pairs
/// `(simulated_state, simulator_state)`.
///
/// Runs the classical fixpoint: start from the full relation and remove
/// pairs `(s, t)` where some move of `s` cannot be matched by `t`, until
/// stable. Complexity O(|S|²·|T|·|→|) on these small behavioural
/// templates.
pub fn greatest_simulation(simulator: &Lts, simulated: &Lts) -> BTreeSet<(usize, usize)> {
    let n_sim = simulated.num_states().max(1);
    let n_tor = simulator.num_states().max(1);
    let mut rel: BTreeSet<(usize, usize)> = (0..n_sim)
        .flat_map(|s| (0..n_tor).map(move |t| (s, t)))
        .collect();
    loop {
        let mut removed = false;
        let snapshot: Vec<(usize, usize)> = rel.iter().copied().collect();
        for (s, t) in snapshot {
            let ok = simulated.outgoing(s).all(|(label, s2)| {
                simulator
                    .successors(t, label)
                    .any(|t2| rel.contains(&(s2, t2)))
            });
            if !ok {
                rel.remove(&(s, t));
                removed = true;
            }
        }
        if !removed {
            return rel;
        }
    }
}

/// Whether the two LTSs are bisimilar (mutually simulating via a single
/// symmetric relation).
pub fn bisimilar(a: &Lts, b: &Lts) -> bool {
    // Greatest bisimulation: pairs must match in both directions.
    let na = a.num_states().max(1);
    let nb = b.num_states().max(1);
    let mut rel: BTreeSet<(usize, usize)> =
        (0..na).flat_map(|s| (0..nb).map(move |t| (s, t))).collect();
    loop {
        let mut removed = false;
        let snapshot: Vec<(usize, usize)> = rel.iter().copied().collect();
        for (s, t) in snapshot {
            let forth = a
                .outgoing(s)
                .all(|(l, s2)| b.successors(t, l).any(|t2| rel.contains(&(s2, t2))));
            let back = b
                .outgoing(t)
                .all(|(l, t2)| a.successors(s, l).any(|s2| rel.contains(&(s2, t2))));
            if !(forth && back) {
                rel.remove(&(s, t));
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    rel.contains(&(a.initial(), b.initial()))
}

/// Bounded trace-inclusion check: every trace of `included` up to
/// `depth` is a trace of `includer`. Simulation implies trace inclusion;
/// the converse fails for nondeterministic systems — both directions are
/// exercised in the tests. Used by `troll-refine` to produce
/// counterexample traces.
pub fn trace_inclusion_up_to(
    includer: &Lts,
    included: &Lts,
    depth: usize,
) -> Result<(), Vec<String>> {
    for t in included.traces_up_to(depth) {
        if !includer.accepts(t.iter().map(String::as_str)) {
            return Err(t);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Lts {
        let mut l = Lts::new(2, 0);
        l.add_transition(0, "switch_on", 1);
        l.add_transition(1, "switch_off", 0);
        l
    }

    fn computer() -> Lts {
        let mut l = Lts::new(2, 0);
        l.add_transition(0, "switch_on", 1);
        l.add_transition(1, "compute", 1);
        l.add_transition(1, "switch_off", 0);
        l
    }

    #[test]
    fn example_3_4_computer_contains_device_protocol() {
        // Restricted to the device alphabet, computer ≼ device.
        let comp = computer().restrict_to(&["switch_on", "switch_off"]);
        assert!(simulates(&device(), &comp));
        // And the device is simulated by the unrestricted computer too:
        assert!(simulates(&computer(), &device()));
        // But the device does not simulate the full computer (compute).
        assert!(!simulates(&device(), &computer()));
    }

    #[test]
    fn simulation_is_reflexive_and_transitive_on_samples() {
        let samples = vec![device(), computer()];
        for l in &samples {
            assert!(simulates(l, l));
        }
        // transitivity: device ≽ restricted-computer; computer ≽ device
        let restricted = computer().restrict_to(&["switch_on", "switch_off"]);
        assert!(simulates(&computer(), &restricted));
    }

    #[test]
    fn bisimilarity() {
        assert!(bisimilar(&device(), &device()));
        assert!(!bisimilar(&device(), &computer()));
        // bisimilar but not identical state spaces
        let mut unrolled = Lts::new(3, 0);
        unrolled.add_transition(0, "switch_on", 1);
        unrolled.add_transition(1, "switch_off", 2);
        unrolled.add_transition(2, "switch_on", 1);
        assert!(bisimilar(&device(), &unrolled));
    }

    #[test]
    fn nondeterminism_separates_simulation_from_traces() {
        // Classic example: a.(b+c) vs a.b + a.c
        let mut det = Lts::new(3, 0);
        det.add_transition(0, "a", 1);
        det.add_transition(1, "b", 2);
        det.add_transition(1, "c", 2);

        let mut nondet = Lts::new(4, 0);
        nondet.add_transition(0, "a", 1);
        nondet.add_transition(0, "a", 2);
        nondet.add_transition(1, "b", 3);
        nondet.add_transition(2, "c", 3);

        // same traces...
        assert!(trace_inclusion_up_to(&det, &nondet, 4).is_ok());
        assert!(trace_inclusion_up_to(&nondet, &det, 4).is_ok());
        // ...det simulates nondet but not vice versa
        assert!(simulates(&det, &nondet));
        assert!(!simulates(&nondet, &det));
        assert!(!bisimilar(&det, &nondet));
    }

    #[test]
    fn trace_inclusion_counterexample() {
        let err = trace_inclusion_up_to(&device(), &computer(), 3).unwrap_err();
        assert!(err.contains(&"compute".to_string()), "{err:?}");
    }

    #[test]
    fn simulation_implies_trace_inclusion() {
        let pairs = vec![
            (
                device(),
                computer().restrict_to(&["switch_on", "switch_off"]),
            ),
            (computer(), device()),
        ];
        for (simulator, simulated) in pairs {
            assert!(simulates(&simulator, &simulated));
            assert!(trace_inclusion_up_to(&simulator, &simulated, 5).is_ok());
        }
    }

    #[test]
    fn empty_lts_edge_cases() {
        let empty = Lts::new(1, 0);
        assert!(simulates(&device(), &empty));
        assert!(!simulates(&empty, &device()));
        assert!(bisimilar(&empty, &empty));
    }
}
