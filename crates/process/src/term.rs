//! Regular process terms — derived events and transaction calling.
//!
//! TROLL's *transaction calling* lets an event "call a finite sequence of
//! other events treated as a transaction unit" (§4), and interface
//! derivation evaluates a derived event "by a finite process defined over
//! the local events of the encapsulated object" (§5.1). [`ProcessTerm`]
//! is exactly that finite-process language: sequential composition,
//! choice, iteration and the empty process, compiled to an [`Lts`].

use crate::Lts;
use std::collections::BTreeSet;
use std::fmt;

/// A regular process expression over event labels.
///
/// # Example
///
/// ```
/// use troll_process::ProcessTerm;
/// // ChangeSalary >> (DeleteEmp; InsertEmp)   — paper §5.2
/// let tx = ProcessTerm::seq(
///     ProcessTerm::event("DeleteEmp"),
///     ProcessTerm::event("InsertEmp"),
/// );
/// assert_eq!(tx.linearize(), Some(vec!["DeleteEmp".to_string(), "InsertEmp".to_string()]));
/// let lts = tx.compile();
/// assert!(lts.accepts(["DeleteEmp", "InsertEmp"]));
/// assert!(!lts.accepts(["InsertEmp"]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProcessTerm {
    /// The empty process (immediate successful termination), written
    /// `skip`.
    Skip,
    /// A single event occurrence.
    Event(String),
    /// Sequential composition `p ; q`.
    Seq(Box<ProcessTerm>, Box<ProcessTerm>),
    /// Nondeterministic choice `p [] q`.
    Choice(Box<ProcessTerm>, Box<ProcessTerm>),
    /// Finite iteration `p*` (zero or more repetitions).
    Star(Box<ProcessTerm>),
}

impl ProcessTerm {
    /// A single event.
    pub fn event(name: impl Into<String>) -> ProcessTerm {
        ProcessTerm::Event(name.into())
    }

    /// Sequential composition.
    pub fn seq(a: ProcessTerm, b: ProcessTerm) -> ProcessTerm {
        ProcessTerm::Seq(Box::new(a), Box::new(b))
    }

    /// A sequence of events `e1; e2; …; en` — the common transaction
    /// shape.
    pub fn sequence<I, S>(events: I) -> ProcessTerm
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = events.into_iter();
        let first = match iter.next() {
            None => return ProcessTerm::Skip,
            Some(e) => ProcessTerm::event(e),
        };
        iter.fold(first, |acc, e| ProcessTerm::seq(acc, ProcessTerm::event(e)))
    }

    /// Choice.
    pub fn choice(a: ProcessTerm, b: ProcessTerm) -> ProcessTerm {
        ProcessTerm::Choice(Box::new(a), Box::new(b))
    }

    /// Iteration.
    pub fn star(p: ProcessTerm) -> ProcessTerm {
        ProcessTerm::Star(Box::new(p))
    }

    /// The event labels mentioned by the term.
    pub fn labels(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            ProcessTerm::Skip => {}
            ProcessTerm::Event(e) => {
                out.insert(e);
            }
            ProcessTerm::Seq(a, b) | ProcessTerm::Choice(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            ProcessTerm::Star(p) => p.collect_labels(out),
        }
    }

    /// If the term is a pure finite sequence (no choice, no iteration),
    /// returns the event list — the form required for *transaction
    /// calling*, which the runtime executes atomically. Returns `None`
    /// for branching or iterative terms.
    pub fn linearize(&self) -> Option<Vec<String>> {
        match self {
            ProcessTerm::Skip => Some(vec![]),
            ProcessTerm::Event(e) => Some(vec![e.clone()]),
            ProcessTerm::Seq(a, b) => {
                let mut v = a.linearize()?;
                v.extend(b.linearize()?);
                Some(v)
            }
            ProcessTerm::Choice(_, _) | ProcessTerm::Star(_) => None,
        }
    }

    /// Compiles the term to an [`Lts`] via Thompson-style construction
    /// with a distinguished completion marker: the resulting LTS accepts
    /// exactly the prefixes of words of the term's language followed by
    /// the `"✓"`-free behaviour. For completed-run checks use
    /// [`ProcessTerm::accepts_exactly`].
    pub fn compile(&self) -> Lts {
        let mut lts = Lts::new(2, 0);
        // state 0 = start, state 1 = accept
        self.build(&mut lts, 0, 1);
        lts
    }

    /// Recursively wires the term between `start` and `accept`.
    fn build(&self, lts: &mut Lts, start: usize, accept: usize) {
        match self {
            ProcessTerm::Skip => {
                // Empty process: identify start behaviour with accept by
                // requiring no event. We model skip by leaving start
                // without obligations; acceptance is positional, see
                // accepts_exactly.
                // A skip between distinct states needs an ε-edge; since
                // Lts has no ε, we emulate by merging at higher levels.
                // Here we record an ε by copying: any continuation wired
                // from `accept` must also be wired from `start`. We
                // instead add a marker transition that accepts_exactly
                // treats as free.
                lts.add_transition(start, EPSILON, accept);
            }
            ProcessTerm::Event(e) => {
                lts.add_transition(start, e.clone(), accept);
            }
            ProcessTerm::Seq(a, b) => {
                let mid = lts.add_state();
                a.build(lts, start, mid);
                b.build(lts, mid, accept);
            }
            ProcessTerm::Choice(a, b) => {
                a.build(lts, start, accept);
                b.build(lts, start, accept);
            }
            ProcessTerm::Star(p) => {
                let hub = lts.add_state();
                lts.add_transition(start, EPSILON, hub);
                p.build(lts, hub, hub);
                lts.add_transition(hub, EPSILON, accept);
            }
        }
    }

    /// Whether `word` is a **complete** run of the process (not merely a
    /// prefix).
    pub fn accepts_exactly<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let lts = self.compile();
        // NFA simulation with ε-closure over the EPSILON marker.
        let mut current = epsilon_closure(&lts, BTreeSet::from([lts.initial()]));
        for label in word {
            let mut next = BTreeSet::new();
            for s in &current {
                next.extend(lts.successors(*s, label));
            }
            current = epsilon_closure(&lts, next);
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&1) // state 1 is the accept state by construction
    }

    /// The finite language of the term up to the given word length
    /// (iteration unrolled); useful for tests and refinement checking.
    pub fn language_up_to(&self, max_len: usize) -> BTreeSet<Vec<String>> {
        match self {
            ProcessTerm::Skip => BTreeSet::from([vec![]]),
            ProcessTerm::Event(e) => {
                if max_len == 0 {
                    BTreeSet::new()
                } else {
                    BTreeSet::from([vec![e.clone()]])
                }
            }
            ProcessTerm::Seq(a, b) => {
                let mut out = BTreeSet::new();
                for wa in a.language_up_to(max_len) {
                    for wb in b.language_up_to(max_len - wa.len()) {
                        let mut w = wa.clone();
                        w.extend(wb);
                        out.insert(w);
                    }
                }
                out
            }
            ProcessTerm::Choice(a, b) => {
                let mut out = a.language_up_to(max_len);
                out.extend(b.language_up_to(max_len));
                out
            }
            ProcessTerm::Star(p) => {
                let mut out = BTreeSet::from([vec![]]);
                loop {
                    let mut grew = false;
                    let snapshot: Vec<Vec<String>> = out.iter().cloned().collect();
                    for w in snapshot {
                        for ext in p.language_up_to(max_len - w.len()) {
                            if ext.is_empty() {
                                continue;
                            }
                            let mut nw = w.clone();
                            nw.extend(ext);
                            if nw.len() <= max_len && out.insert(nw) {
                                grew = true;
                            }
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                out
            }
        }
    }
}

/// Internal ε label used by the Thompson construction. Chosen to be
/// unnameable from TROLL sources (event identifiers are alphanumeric).
const EPSILON: &str = "\u{03b5}";

fn epsilon_closure(lts: &Lts, mut set: BTreeSet<usize>) -> BTreeSet<usize> {
    let mut queue: Vec<usize> = set.iter().copied().collect();
    while let Some(s) = queue.pop() {
        for succ in lts.successors(s, EPSILON) {
            if set.insert(succ) {
                queue.push(succ);
            }
        }
    }
    set
}

impl fmt::Display for ProcessTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessTerm::Skip => write!(f, "skip"),
            ProcessTerm::Event(e) => write!(f, "{e}"),
            ProcessTerm::Seq(a, b) => write!(f, "({a}; {b})"),
            ProcessTerm::Choice(a, b) => write!(f, "({a} [] {b})"),
            ProcessTerm::Star(p) => write!(f, "({p})*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_transaction_linearizes() {
        // ChangeSalary(n,b,s) >> (DeleteEmp(n,b); InsertEmp(n,b,s))
        let tx = ProcessTerm::sequence(["DeleteEmp", "InsertEmp"]);
        assert_eq!(
            tx.linearize(),
            Some(vec!["DeleteEmp".to_string(), "InsertEmp".to_string()])
        );
        assert!(tx.accepts_exactly(["DeleteEmp", "InsertEmp"]));
        assert!(!tx.accepts_exactly(["DeleteEmp"]));
        assert!(!tx.accepts_exactly(["InsertEmp", "DeleteEmp"]));
    }

    #[test]
    fn skip_and_empty_sequence() {
        assert_eq!(ProcessTerm::Skip.linearize(), Some(vec![]));
        assert_eq!(
            ProcessTerm::sequence(Vec::<String>::new()),
            ProcessTerm::Skip
        );
        assert!(ProcessTerm::Skip.accepts_exactly([]));
        assert!(!ProcessTerm::Skip.accepts_exactly(["x"]));
    }

    #[test]
    fn choice_not_linearizable() {
        let p = ProcessTerm::choice(ProcessTerm::event("a"), ProcessTerm::event("b"));
        assert_eq!(p.linearize(), None);
        assert!(p.accepts_exactly(["a"]));
        assert!(p.accepts_exactly(["b"]));
        assert!(!p.accepts_exactly(["a", "b"]));
    }

    #[test]
    fn star_iterates() {
        let p = ProcessTerm::star(ProcessTerm::event("tick"));
        assert!(p.accepts_exactly([]));
        assert!(p.accepts_exactly(["tick"]));
        assert!(p.accepts_exactly(["tick", "tick", "tick"]));
        assert!(!p.accepts_exactly(["tock"]));
        assert_eq!(p.linearize(), None);
    }

    #[test]
    fn nested_terms() {
        // (a; (b [] c))* ; d
        let p = ProcessTerm::seq(
            ProcessTerm::star(ProcessTerm::seq(
                ProcessTerm::event("a"),
                ProcessTerm::choice(ProcessTerm::event("b"), ProcessTerm::event("c")),
            )),
            ProcessTerm::event("d"),
        );
        assert!(p.accepts_exactly(["d"]));
        assert!(p.accepts_exactly(["a", "b", "d"]));
        assert!(p.accepts_exactly(["a", "c", "a", "b", "d"]));
        assert!(!p.accepts_exactly(["a", "d"]));
        assert!(!p.accepts_exactly(["a", "b"]));
        assert_eq!(
            p.labels().into_iter().collect::<Vec<_>>(),
            vec!["a", "b", "c", "d"]
        );
    }

    #[test]
    fn language_enumeration_matches_acceptance() {
        let p = ProcessTerm::seq(
            ProcessTerm::star(ProcessTerm::event("a")),
            ProcessTerm::event("b"),
        );
        let lang = p.language_up_to(3);
        assert!(lang.contains(&vec!["b".to_string()]));
        assert!(lang.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(lang.contains(&vec!["a".to_string(), "a".to_string(), "b".to_string()]));
        assert!(!lang.contains(&vec!["a".to_string()]));
        for w in &lang {
            assert!(p.accepts_exactly(w.iter().map(String::as_str)), "{w:?}");
        }
    }

    #[test]
    fn display() {
        let p = ProcessTerm::seq(
            ProcessTerm::event("DeleteEmp"),
            ProcessTerm::event("InsertEmp"),
        );
        assert_eq!(p.to_string(), "(DeleteEmp; InsertEmp)");
        assert_eq!(ProcessTerm::Skip.to_string(), "skip");
    }

    fn arb_term() -> impl Strategy<Value = ProcessTerm> {
        let leaf = prop_oneof![
            Just(ProcessTerm::Skip),
            Just(ProcessTerm::event("a")),
            Just(ProcessTerm::event("b")),
            Just(ProcessTerm::event("c")),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ProcessTerm::seq(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ProcessTerm::choice(a, b)),
                inner.prop_map(ProcessTerm::star),
            ]
        })
    }

    proptest! {
        /// Every word in the enumerated language is accepted by the
        /// compiled automaton.
        #[test]
        fn enumerated_language_is_accepted(p in arb_term()) {
            for w in p.language_up_to(4) {
                prop_assert!(p.accepts_exactly(w.iter().map(String::as_str)), "{:?} not accepted by {}", w, p);
            }
        }

        /// Linearizable terms have singleton languages.
        #[test]
        fn linearized_terms_have_singleton_language(p in arb_term()) {
            if let Some(w) = p.linearize() {
                if w.len() <= 6 {
                    let lang = p.language_up_to(6);
                    prop_assert_eq!(lang.len(), 1);
                    prop_assert!(lang.contains(&w));
                }
            }
        }
    }
}
