//! Minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` 1.x API that troll-rs uses.
//!
//! The build environment for this workspace is hermetic: no crates.io
//! registry is reachable, so the real `proptest` cannot be resolved. This
//! crate keeps the property suites runnable offline under the identical
//! source syntax (`proptest! { #[test] fn f(x in strat) { … } }`,
//! `prop_oneof!`, `prop_assert*!`, `Strategy::prop_map/prop_recursive`,
//! `proptest::collection::{vec, btree_set}`, `any::<T>()`, integer-range
//! and simple regex-string strategies).
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the deterministic case number, but is not
//!   minimized.
//! - **Deterministic generation.** Cases are generated from a SplitMix64
//!   stream seeded by the test's module path + name + case index, so
//!   failures reproduce exactly across runs and machines.
//! - **Regex strategies** support only the patterns the workspace uses:
//!   a single character class (`[a-z]`, `\PC`) with a `{m,n}` repetition,
//!   or a literal string. Anything else panics loudly.
//!
//! Swapping the real `proptest` back in (when a registry is available)
//! requires only restoring the `[workspace.dependencies]` entry; no test
//! source changes.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier and case index (FNV-1a over the
        /// name, mixed with the case number).
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// A failed property-case; carried as `Err` out of the test body by
    /// the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the hermetic
            // tier-1 suite fast while retaining useful coverage.
            ProptestConfig { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A value generator. Unlike the real crate there is no `ValueTree` /
/// shrinking layer: a strategy maps an RNG directly to a value.
pub trait Strategy: Clone + 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone + 'static,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply clonable boxed strategy.
    fn prop_boxed(self) -> SBox<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        SBox {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Recursive strategies: `depth` levels of `expand` over the leaf
    /// strategy. The `_desired_size` / `_expected_branch` hints of the
    /// real API are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> SBox<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value>,
        F: Fn(SBox<Self::Value>) -> S2 + 'static,
    {
        let mut cur = self.clone().prop_boxed();
        for _ in 0..depth {
            let leaf = self.clone().prop_boxed();
            let expanded = expand(cur).prop_boxed();
            // 1/3 chance of bottoming out at each level keeps expected
            // sizes finite while still exercising deep nests.
            cur = Union::new(vec![leaf, expanded.clone(), expanded]).prop_boxed();
        }
        cur
    }
}

/// Type-erased strategy (`Rc`-shared, clone is O(1)).
pub struct SBox<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for SBox<T> {
    fn clone(&self) -> Self {
        SBox {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> Strategy for SBox<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<SBox<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<SBox<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len());
        self.variants[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-range generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `&'static str` as a (tiny) regex strategy. Supported shapes:
/// `[class]{m,n}`, `\PC{m,n}`, or a plain literal with no metacharacters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

mod regex_lite {
    use super::test_runner::TestRng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        if !pattern.contains(['[', ']', '\\', '{', '}', '(', ')', '*', '+', '?', '|', '.']) {
            // No metacharacters: the pattern matches only itself.
            return pattern.to_string();
        }
        let (class, rest) = parse_class(pattern);
        let (min, max) = parse_counts(rest, pattern);
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| class[rng.below(class.len())]).collect()
    }

    fn parse_class(pattern: &str) -> (Vec<char>, &str) {
        if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Printable: ASCII space..~ plus a few multibyte chars so
            // lexer fuzzing sees non-ASCII input.
            let mut class: Vec<char> = (' '..='~').collect();
            class.extend(['ä', 'é', 'λ', '→', '\u{00a0}']);
            (class, rest)
        } else if let Some(body) = pattern.strip_prefix('[') {
            let end = body.find(']').unwrap_or_else(|| unsupported(pattern));
            let mut class = Vec::new();
            let chars: Vec<char> = body[..end].chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    class.extend(lo..=hi);
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            if class.is_empty() {
                unsupported(pattern);
            }
            (class, &body[end + 1..])
        } else {
            unsupported(pattern)
        }
    }

    fn parse_counts(rest: &str, pattern: &str) -> (usize, usize) {
        if rest.is_empty() {
            (1, 1)
        } else {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| unsupported(pattern));
            let mut parts = body.splitn(2, ',');
            let min: usize = parts
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap_or_else(|_| unsupported(pattern));
            let max: usize = match parts.next() {
                Some(m) => m.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                None => min,
            };
            (min, max.max(min))
        }
    }

    fn unsupported(pattern: &str) -> ! {
        panic!(
            "proptest shim: unsupported regex strategy pattern {pattern:?} \
             (supported: `[class]{{m,n}}`, `\\PC{{m,n}}`)"
        )
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            // Duplicates collapse, as with the real crate's set strategy.
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }
}

pub mod strategy {
    pub use super::{Any, Just, Map, SBox, Strategy, Union};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __res {
                    panic!(
                        "proptest case #{case} of {} failed: {e}\n\
                         (deterministic shim: re-running reproduces this case; no shrinking)",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::prop_boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l,
                r,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+),
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{Any, Just, SBox as BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0i64..100, prop_oneof![Just("a"), Just("b")]);
        let mut r1 = TestRng::deterministic("x", 7);
        let mut r2 = TestRng::deterministic("x", 7);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = (3u8..=12).generate(&mut rng);
            assert!((3..=12).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn regex_class_and_printable() {
        let mut rng = TestRng::deterministic("re", 0);
        for _ in 0..200 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()));
            let p = "\\PC{0,20}".generate(&mut rng);
            assert!(p.chars().count() <= 20);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("rec", 1);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            saw_node |= matches!(t, T::Node(..));
            assert!(depth(&t) <= 4);
        }
        assert!(saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(xs in crate::collection::vec(0i32..10, 1..20), b in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.len(), xs.iter().copied().filter(|v| (0..10).contains(v)).count());
            let _ = b;
        }
    }
}
