//! Minimal, dependency-free RNG shim exposing the subset of the `rand`
//! 0.10 API that troll-rs uses (`StdRng::seed_from_u64`,
//! `random_range`, `random_bool`). The workspace builds hermetically —
//! no registry is reachable — so the real crate cannot be resolved.
//!
//! `StdRng` here is SplitMix64: deterministic, seedable, and plenty for
//! scenario generation and benchmarks. It is NOT cryptographically
//! secure (the real `StdRng` is ChaCha-based); nothing in this
//! workspace needs that property.

use std::ops::Range;

pub mod rngs {
    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample(range: &Range<Self>, rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample(range: &Range<$t>, rng: &mut rngs::StdRng) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let lo = range.start as i128;
                let span = (range.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The convenience methods the workspace calls on `StdRng`.
pub trait RngExt {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(&range, self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_and_bool_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut heads = 0;
        for _ in 0..1000 {
            let v = rng.random_range(0usize..13);
            assert!(v < 13);
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            if rng.random_bool(0.5) {
                heads += 1;
            }
        }
        assert!((300..700).contains(&heads), "biased coin: {heads}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
