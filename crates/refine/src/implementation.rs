//! The refinement mapping between an abstract class and its
//! implementation.

use crate::{RefineError, Result};
use std::collections::BTreeMap;
use troll_lang::SystemModel;

/// A formal implementation (§5.2): the abstract class, the concrete
/// class realizing it (typically built by aggregating base objects), the
/// optional hiding interface, and the item maps relating abstract
/// events/attributes to concrete ones (identity where omitted).
///
/// # Example
///
/// ```
/// use troll_refine::Implementation;
/// let imp = Implementation::new("EMPLOYEE", "EMPL_IMPL")
///     .with_interface("EMPL")
///     .map_event("Promote", "IncreaseSalary")
///     .map_attribute("Pay", "Salary");
/// assert_eq!(imp.concrete_event("Promote"), "IncreaseSalary");
/// assert_eq!(imp.concrete_event("HireEmployee"), "HireEmployee");
/// assert_eq!(imp.concrete_attribute("Pay"), "Salary");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Implementation {
    abstract_class: String,
    concrete_class: String,
    interface: Option<String>,
    event_map: BTreeMap<String, String>,
    attr_map: BTreeMap<String, String>,
}

impl Implementation {
    /// Creates a refinement mapping with identity item maps.
    pub fn new(abstract_class: impl Into<String>, concrete_class: impl Into<String>) -> Self {
        Implementation {
            abstract_class: abstract_class.into(),
            concrete_class: concrete_class.into(),
            interface: None,
            event_map: BTreeMap::new(),
            attr_map: BTreeMap::new(),
        }
    }

    /// Sets the hiding interface (the encapsulation step of §5.2).
    pub fn with_interface(mut self, interface: impl Into<String>) -> Self {
        self.interface = Some(interface.into());
        self
    }

    /// Maps an abstract event to a differently-named concrete event.
    pub fn map_event(
        mut self,
        abstract_event: impl Into<String>,
        concrete: impl Into<String>,
    ) -> Self {
        self.event_map
            .insert(abstract_event.into(), concrete.into());
        self
    }

    /// Maps an abstract attribute to a differently-named concrete one.
    pub fn map_attribute(
        mut self,
        abstract_attr: impl Into<String>,
        concrete: impl Into<String>,
    ) -> Self {
        self.attr_map.insert(abstract_attr.into(), concrete.into());
        self
    }

    /// The abstract class name.
    pub fn abstract_class(&self) -> &str {
        &self.abstract_class
    }

    /// The concrete class name.
    pub fn concrete_class(&self) -> &str {
        &self.concrete_class
    }

    /// The hiding interface, if declared.
    pub fn interface(&self) -> Option<&str> {
        self.interface.as_deref()
    }

    /// The concrete event implementing an abstract event.
    pub fn concrete_event<'a>(&'a self, abstract_event: &'a str) -> &'a str {
        self.event_map
            .get(abstract_event)
            .map(String::as_str)
            .unwrap_or(abstract_event)
    }

    /// The concrete attribute implementing an abstract attribute.
    pub fn concrete_attribute<'a>(&'a self, abstract_attr: &'a str) -> &'a str {
        self.attr_map
            .get(abstract_attr)
            .map(String::as_str)
            .unwrap_or(abstract_attr)
    }

    /// The full event map resolved against the abstract class's
    /// signature (identity completion).
    pub fn resolved_event_map(&self, model: &SystemModel) -> Result<BTreeMap<String, String>> {
        let abs = model
            .class(&self.abstract_class)
            .ok_or_else(|| RefineError::UnknownClass(self.abstract_class.clone()))?;
        let mut out = self.event_map.clone();
        for ev in abs.template.signature().events().iter() {
            out.entry(ev.name.clone())
                .or_insert_with(|| ev.name.clone());
        }
        Ok(out)
    }

    /// Validates the mapping against a model: both classes exist, every
    /// mapped abstract event/attribute exists abstractly, its image
    /// exists concretely (events with equal arity), and the hiding
    /// interface (when given) exists and encapsulates the concrete
    /// class.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, model: &SystemModel) -> Result<()> {
        let abs = model
            .class(&self.abstract_class)
            .ok_or_else(|| RefineError::UnknownClass(self.abstract_class.clone()))?;
        let conc = model
            .class(&self.concrete_class)
            .ok_or_else(|| RefineError::UnknownClass(self.concrete_class.clone()))?;
        for ev in abs.template.signature().events().iter() {
            let target = self.concrete_event(&ev.name);
            let cev = conc.template.signature().event(target).ok_or_else(|| {
                RefineError::BadMapping(format!(
                    "abstract event `{}` maps to `{target}`, missing on `{}`",
                    ev.name, self.concrete_class
                ))
            })?;
            if cev.arity != ev.arity {
                return Err(RefineError::BadMapping(format!(
                    "event `{}`/{} maps to `{target}`/{}",
                    ev.name, ev.arity, cev.arity
                )));
            }
        }
        for attr in abs.template.signature().attributes() {
            let target = self.concrete_attribute(&attr.name);
            let exists = conc.template.signature().has_attribute(target)
                || conc.derivation.iter().any(|d| d.attribute == target);
            if !exists {
                return Err(RefineError::BadMapping(format!(
                    "abstract attribute `{}` maps to `{target}`, missing on `{}`",
                    attr.name, self.concrete_class
                )));
            }
        }
        if let Some(iface_name) = &self.interface {
            let iface = model
                .interface(iface_name)
                .ok_or_else(|| RefineError::UnknownInterface(iface_name.clone()))?;
            if !iface.bases.iter().any(|(c, _)| c == &self.concrete_class) {
                return Err(RefineError::BadMapping(format!(
                    "interface `{iface_name}` does not encapsulate `{}`",
                    self.concrete_class
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SystemModel {
        let src = r#"
object class ABS
  identification k: string;
  template
    attributes x: int;
    events
      birth make;
      bump(int);
      death drop_it;
    valuation
      variables n: int;
      [make] x = 0;
      [bump(n)] x = x + n;
end object class ABS;

object class CONC
  identification k: string;
  template
    attributes x: int;
    events
      birth make;
      bump_impl(int);
      death drop_it;
    valuation
      variables n: int;
      [make] x = 0;
      [bump_impl(n)] x = x + n;
end object class CONC;

interface class CONC_VIEW
  encapsulating CONC
  attributes x: int;
  events bump_impl(int);
end interface class CONC_VIEW;
"#;
        troll_lang::analyze(&troll_lang::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn identity_completion_and_mapping() {
        let imp = Implementation::new("ABS", "CONC").map_event("bump", "bump_impl");
        let resolved = imp.resolved_event_map(&model()).unwrap();
        assert_eq!(resolved["bump"], "bump_impl");
        assert_eq!(resolved["make"], "make");
        assert_eq!(imp.concrete_attribute("x"), "x");
    }

    #[test]
    fn validates_good_mapping() {
        let imp = Implementation::new("ABS", "CONC")
            .map_event("bump", "bump_impl")
            .with_interface("CONC_VIEW");
        imp.validate(&model()).unwrap();
    }

    #[test]
    fn rejects_missing_items() {
        let m = model();
        // unmapped `bump` does not exist on CONC
        let imp = Implementation::new("ABS", "CONC");
        assert!(matches!(
            imp.validate(&m).unwrap_err(),
            RefineError::BadMapping(_)
        ));
        // unknown classes
        assert!(matches!(
            Implementation::new("GHOST", "CONC")
                .validate(&m)
                .unwrap_err(),
            RefineError::UnknownClass(_)
        ));
        assert!(matches!(
            Implementation::new("ABS", "GHOST")
                .validate(&m)
                .unwrap_err(),
            RefineError::UnknownClass(_)
        ));
        // unknown interface
        let imp = Implementation::new("ABS", "CONC")
            .map_event("bump", "bump_impl")
            .with_interface("GHOST");
        assert!(matches!(
            imp.validate(&m).unwrap_err(),
            RefineError::UnknownInterface(_)
        ));
        // bad attribute map
        let imp = Implementation::new("ABS", "CONC")
            .map_event("bump", "bump_impl")
            .map_attribute("x", "zzz");
        assert!(matches!(
            imp.validate(&m).unwrap_err(),
            RefineError::BadMapping(_)
        ));
    }
}
