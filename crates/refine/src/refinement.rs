//! Operational refinement checking: drive abstract and concrete side by
//! side and compare observations through the mapping.

use crate::{Implementation, RefineError, Result, Scenario};
use troll_data::Value;
use troll_lang::SystemModel;
use troll_process::simulate;
use troll_runtime::{ObjectBase, RuntimeError};

/// One disagreement between the abstract object and its implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Scenario index.
    pub scenario: usize,
    /// Step index within the scenario.
    pub step: usize,
    /// The abstract event of the step.
    pub event: String,
    /// What went wrong.
    pub kind: DivergenceKind,
}

/// Kinds of divergence.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceKind {
    /// After a step both sides accepted, an abstract attribute and its
    /// concrete image observe different values.
    Observation {
        /// Abstract attribute name.
        attribute: String,
        /// Value on the abstract object.
        abstract_value: Value,
        /// Value on the implementation (through the mapping).
        concrete_value: Value,
    },
    /// The abstract object accepted the event but the implementation
    /// refused it — the implementation cannot reproduce an admissible
    /// abstract life cycle.
    ConcreteRefused(String),
    /// The implementation accepted an event the abstract specification
    /// forbids — the implementation violates an abstract permission
    /// property.
    ConcreteMorePermissive,
    /// Alive/dead status differs after the step.
    LifecycleMismatch {
        /// Abstract side alive?
        abstract_alive: bool,
        /// Concrete side alive?
        concrete_alive: bool,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario {} step {} ({}): ",
            self.scenario, self.step, self.event
        )?;
        match &self.kind {
            DivergenceKind::Observation {
                attribute,
                abstract_value,
                concrete_value,
            } => write!(
                f,
                "observation `{attribute}` differs: abstract {abstract_value}, concrete {concrete_value}"
            ),
            DivergenceKind::ConcreteRefused(msg) => {
                write!(f, "implementation refused an admissible event: {msg}")
            }
            DivergenceKind::ConcreteMorePermissive => {
                write!(f, "implementation accepted a forbidden event")
            }
            DivergenceKind::LifecycleMismatch {
                abstract_alive,
                concrete_alive,
            } => write!(
                f,
                "life cycle differs: abstract alive = {abstract_alive}, concrete alive = {concrete_alive}"
            ),
        }
    }
}

/// The result of a refinement check.
#[derive(Debug, Clone)]
pub struct RefinementReport {
    /// Scenarios driven.
    pub scenarios_run: usize,
    /// Individual event steps compared.
    pub steps_checked: usize,
    /// Whether the concrete behaviour (relabelled through the event map)
    /// simulates the abstract template's behaviour.
    pub behavior_simulated: bool,
    /// All divergences found.
    pub divergences: Vec<Divergence>,
}

impl RefinementReport {
    /// Whether the implementation passed every check — the operational
    /// reading of the paper's "all properties of the original
    /// specification can be derived" (§5.2).
    pub fn is_refinement(&self) -> bool {
        self.behavior_simulated && self.divergences.is_empty()
    }
}

impl std::fmt::Display for RefinementReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "refinement check: {} scenario(s), {} step(s), behaviour simulated: {}",
            self.scenarios_run, self.steps_checked, self.behavior_simulated
        )?;
        if self.divergences.is_empty() {
            write!(
                f,
                "no divergences — implementation is correct on the checked scenarios"
            )
        } else {
            writeln!(f, "{} divergence(s):", self.divergences.len())?;
            for d in &self.divergences {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}

/// Checks that `imp.concrete_class` correctly implements
/// `imp.abstract_class` on the given scenarios.
///
/// Both sides run in **fresh, isolated object bases** per scenario;
/// `setup` is applied to each base first (e.g. to birth the shared
/// `emp_rel` relation object the implementation aggregates).
///
/// Checked per step, through the event/attribute maps:
///
/// 1. **acceptance agreement** — permission refusals must coincide
///    (a step both sides refuse is recorded as checked and skipped);
/// 2. **observation equality** — every abstract attribute equals its
///    concrete image after the step;
/// 3. **life-cycle agreement** — alive/dead status coincides;
///
/// plus, once per check, **behaviour simulation** of the abstract
/// template by the relabelled concrete template.
///
/// # Errors
///
/// Fails on invalid mappings or genuine runtime errors (sort errors,
/// unknown events); permission refusals are *data*, not errors.
pub fn check_refinement(
    model: &SystemModel,
    imp: &Implementation,
    scenarios: &[Scenario],
    setup: &dyn Fn(&mut ObjectBase) -> troll_runtime::Result<()>,
) -> Result<RefinementReport> {
    imp.validate(model)?;
    let abs_class = model
        .class(imp.abstract_class())
        .ok_or_else(|| RefineError::UnknownClass(imp.abstract_class().to_string()))?;
    let conc_class = model
        .class(imp.concrete_class())
        .ok_or_else(|| RefineError::UnknownClass(imp.concrete_class().to_string()))?;

    // behaviour simulation through the event map
    let event_map = imp.resolved_event_map(model)?;
    let abs_relabelled = abs_class.template.behavior().relabel(&event_map);
    let behavior_simulated = simulate::simulates(conc_class.template.behavior(), &abs_relabelled);

    let mut divergences = Vec::new();
    let mut steps_checked = 0usize;

    for (si, scenario) in scenarios.iter().enumerate() {
        let mut abs_ob = ObjectBase::new(model.clone())?;
        let mut conc_ob = ObjectBase::new(model.clone())?;
        setup(&mut abs_ob)?;
        setup(&mut conc_ob)?;

        let abs_id =
            troll_data::ObjectId::new(imp.abstract_class().to_string(), scenario.key.clone());
        let conc_id =
            troll_data::ObjectId::new(imp.concrete_class().to_string(), scenario.key.clone());

        let mut abs_dead = false;
        for (ti, step) in scenario.steps.iter().enumerate() {
            steps_checked += 1;
            let conc_event = imp.concrete_event(&step.event).to_string();
            let abs_result = abs_ob.execute(&abs_id, &step.event, step.args.clone());
            let conc_result = conc_ob.execute(&conc_id, &conc_event, step.args.clone());
            match (abs_result, conc_result) {
                (Ok(_), Ok(_)) => {
                    let abs_alive = abs_ob.instance(&abs_id).is_some_and(|i| i.is_alive());
                    let conc_alive = conc_ob.instance(&conc_id).is_some_and(|i| i.is_alive());
                    if abs_alive != conc_alive {
                        divergences.push(Divergence {
                            scenario: si,
                            step: ti,
                            event: step.event.clone(),
                            kind: DivergenceKind::LifecycleMismatch {
                                abstract_alive: abs_alive,
                                concrete_alive: conc_alive,
                            },
                        });
                    }
                    abs_dead = !abs_alive;
                    if abs_dead {
                        // attributes of dead objects are not observable;
                        // only the life-cycle agreement above applies
                        continue;
                    }
                    // compare observations through the attribute map
                    for attr in abs_class.template.signature().attributes() {
                        let abs_v = abs_ob
                            .attribute(&abs_id, &attr.name)
                            .map_err(|e| RefineError::Runtime(e.to_string()))?;
                        let conc_attr = imp.concrete_attribute(&attr.name);
                        let conc_v = conc_ob
                            .attribute(&conc_id, conc_attr)
                            .map_err(|e| RefineError::Runtime(e.to_string()))?;
                        if abs_v != conc_v {
                            divergences.push(Divergence {
                                scenario: si,
                                step: ti,
                                event: step.event.clone(),
                                kind: DivergenceKind::Observation {
                                    attribute: attr.name.clone(),
                                    abstract_value: abs_v,
                                    concrete_value: conc_v,
                                },
                            });
                        }
                    }
                }
                (Err(abs_err), Err(_conc_err)) => {
                    // agreement on refusal — fine if both are admissibility
                    // refusals; propagate genuine evaluation errors
                    if !is_refusal(&abs_err) {
                        return Err(RefineError::Runtime(abs_err.to_string()));
                    }
                }
                (Ok(_), Err(conc_err)) => {
                    if is_refusal(&conc_err) {
                        divergences.push(Divergence {
                            scenario: si,
                            step: ti,
                            event: step.event.clone(),
                            kind: DivergenceKind::ConcreteRefused(conc_err.to_string()),
                        });
                        // resync: the abstract side advanced, stop scenario
                        break;
                    }
                    return Err(RefineError::Runtime(conc_err.to_string()));
                }
                (Err(abs_err), Ok(_)) => {
                    if is_refusal(&abs_err) {
                        divergences.push(Divergence {
                            scenario: si,
                            step: ti,
                            event: step.event.clone(),
                            kind: DivergenceKind::ConcreteMorePermissive,
                        });
                        break;
                    }
                    return Err(RefineError::Runtime(abs_err.to_string()));
                }
            }
            if abs_dead {
                break;
            }
        }
    }

    Ok(RefinementReport {
        scenarios_run: scenarios.len(),
        steps_checked,
        behavior_simulated,
        divergences,
    })
}

/// Whether an error represents an admissibility refusal (a legitimate
/// "no" from the specification) rather than an evaluation failure.
fn is_refusal(e: &RuntimeError) -> bool {
    matches!(
        e,
        RuntimeError::NotPermitted { .. }
            | RuntimeError::ConstraintViolated { .. }
            | RuntimeError::NotAlive(_)
            | RuntimeError::AlreadyBorn(_)
            | RuntimeError::RoleNotActive { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioStep, ValuePool};

    /// Abstract counter and two implementations: a correct one (over an
    /// incorporated cell object) and a buggy one (loses increments of 0
    /// … actually: applies a cap the abstract spec doesn't have).
    const SRC: &str = r#"
object cell
  template
    attributes content: int;
    events
      birth init_cell;
      write(int);
    valuation
      variables v: int;
      [init_cell] content = 0;
      [write(v)] content = v;
end object cell;

object class COUNTER
  identification cid: string;
  template
    attributes value: int;
    events
      birth create;
      step(int);
      death discard;
    valuation
      variables n: int;
      [create] value = 0;
      [step(n)] value = value + n;
    permissions
      variables n: int;
      { n >= 0 } step(n);
end object class COUNTER;

object class COUNTER_IMPL
  identification cid: string;
  template
    inheriting cell as store;
    attributes
      derived value: int;
    events
      birth create;
      step(int);
      death discard;
    derivation rules
      value = store.content;
    permissions
      variables n: int;
      { n >= 0 } step(n);
    interaction
      variables n: int;
      step(n) >> store.write(store.content + n);
end object class COUNTER_IMPL;

object class COUNTER_BUGGY
  identification cid: string;
  template
    attributes value: int;
    events
      birth create;
      step(int);
      death discard;
    valuation
      variables n: int;
      [create] value = 0;
      { value + n <= 10 } => [step(n)] value = value + n;
    permissions
      variables n: int;
      { n >= 0 } step(n);
end object class COUNTER_BUGGY;

object class COUNTER_LAX
  identification cid: string;
  template
    attributes value: int;
    events
      birth create;
      step(int);
      death discard;
    valuation
      variables n: int;
      [create] value = 0;
      [step(n)] value = value + n;
end object class COUNTER_LAX;
"#;

    fn model() -> SystemModel {
        troll_lang::analyze(&troll_lang::parse(SRC).unwrap()).unwrap()
    }

    fn setup(ob: &mut ObjectBase) -> troll_runtime::Result<()> {
        let cell = ob.singleton("cell").expect("cell singleton");
        ob.execute(&cell, "init_cell", vec![])?;
        Ok(())
    }

    fn scenarios(model: &SystemModel) -> Vec<Scenario> {
        Scenario::generate(
            &model.classes["COUNTER"],
            &ValuePool::default(),
            10,
            6,
            2024,
        )
    }

    #[test]
    fn correct_implementation_passes() {
        let m = model();
        let imp = Implementation::new("COUNTER", "COUNTER_IMPL");
        let report = check_refinement(&m, &imp, &scenarios(&m), &setup).unwrap();
        assert!(report.is_refinement(), "{report}");
        assert!(report.steps_checked > 10);
        assert!(report.behavior_simulated);
        assert!(report.to_string().contains("no divergences"));
    }

    #[test]
    fn buggy_implementation_caught_by_observation() {
        let m = model();
        let imp = Implementation::new("COUNTER", "COUNTER_BUGGY");
        // explicit scenario that exceeds the bug's cap
        let scenario = Scenario {
            key: vec![Value::from("c1")],
            steps: vec![
                ScenarioStep {
                    event: "create".into(),
                    args: vec![],
                },
                ScenarioStep {
                    event: "step".into(),
                    args: vec![Value::from(7)],
                },
                ScenarioStep {
                    event: "step".into(),
                    args: vec![Value::from(7)],
                },
            ],
        };
        let report = check_refinement(&m, &imp, &[scenario], &setup).unwrap();
        assert!(!report.is_refinement());
        assert!(matches!(
            report.divergences[0].kind,
            DivergenceKind::Observation { .. }
        ));
        assert!(report.to_string().contains("observation `value` differs"));
    }

    #[test]
    fn more_permissive_implementation_caught() {
        let m = model();
        // LAX drops the `n >= 0` permission: accepting step(-1) violates
        // the abstract permission property
        let imp = Implementation::new("COUNTER", "COUNTER_LAX");
        let scenario = Scenario {
            key: vec![Value::from("c1")],
            steps: vec![
                ScenarioStep {
                    event: "create".into(),
                    args: vec![],
                },
                ScenarioStep {
                    event: "step".into(),
                    args: vec![Value::from(-1)],
                },
            ],
        };
        let report = check_refinement(&m, &imp, &[scenario], &setup).unwrap();
        assert!(!report.is_refinement());
        assert_eq!(
            report.divergences[0].kind,
            DivergenceKind::ConcreteMorePermissive
        );
    }

    #[test]
    fn agreement_on_refusals_is_not_a_divergence() {
        let m = model();
        let imp = Implementation::new("COUNTER", "COUNTER_IMPL");
        let scenario = Scenario {
            key: vec![Value::from("c1")],
            steps: vec![
                ScenarioStep {
                    event: "create".into(),
                    args: vec![],
                },
                // both sides refuse negative steps
                ScenarioStep {
                    event: "step".into(),
                    args: vec![Value::from(-5)],
                },
                ScenarioStep {
                    event: "step".into(),
                    args: vec![Value::from(3)],
                },
            ],
        };
        let report = check_refinement(&m, &imp, &[scenario], &setup).unwrap();
        assert!(report.is_refinement(), "{report}");
    }

    #[test]
    fn invalid_mapping_rejected() {
        let m = model();
        let imp = Implementation::new("COUNTER", "COUNTER_IMPL").map_event("step", "zap");
        assert!(matches!(
            check_refinement(&m, &imp, &[], &setup).unwrap_err(),
            RefineError::BadMapping(_)
        ));
    }
}
