//! Scenario generation for refinement checking.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use troll_data::{Date, Money, Sort, Value};
use troll_lang::ClassModel;
use troll_process::EventKind;

/// A pool of candidate values per base sort, from which scenario
/// arguments are drawn. Small pools maximize collisions (re-hiring the
/// same person, updating the same key), which is where refinement bugs
/// live.
#[derive(Debug, Clone)]
pub struct ValuePool {
    /// Candidate strings.
    pub strings: Vec<String>,
    /// Candidate integers.
    pub ints: Vec<i64>,
    /// Candidate dates.
    pub dates: Vec<Date>,
    /// Candidate money amounts.
    pub moneys: Vec<Money>,
}

impl Default for ValuePool {
    fn default() -> Self {
        ValuePool {
            strings: vec!["ada".into(), "bob".into(), "eve".into()],
            ints: vec![0, 1, 5, 100],
            dates: vec![
                Date::new(1960, 1, 1).expect("valid"),
                Date::new(1991, 10, 16).expect("valid"),
            ],
            moneys: vec![Money::from_major(1_000), Money::from_major(6_000)],
        }
    }
}

impl ValuePool {
    fn draw(&self, sort: &Sort, rng: &mut StdRng) -> Value {
        match sort {
            Sort::Bool => Value::Bool(rng.random_bool(0.5)),
            Sort::Int | Sort::Nat => Value::Int(self.ints[rng.random_range(0..self.ints.len())]),
            Sort::String => {
                Value::from(self.strings[rng.random_range(0..self.strings.len())].clone())
            }
            Sort::Date => Value::Date(self.dates[rng.random_range(0..self.dates.len())]),
            Sort::Money => Value::Money(self.moneys[rng.random_range(0..self.moneys.len())]),
            Sort::Optional(inner) => self.draw(inner, rng),
            // identities, sets, lists, maps, tuples: fall back to a
            // string-keyed value; scenario-driven classes in the test
            // suites use base-sorted parameters
            _ => Value::from(self.strings[rng.random_range(0..self.strings.len())].clone()),
        }
    }
}

/// One step of a scenario: an abstract event with arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStep {
    /// Abstract event name.
    pub event: String,
    /// Arguments.
    pub args: Vec<Value>,
}

/// A scenario: a birth step followed by a sequence of abstract events,
/// used to drive the abstract object and its implementation side by
/// side.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Identity key for the object under test.
    pub key: Vec<Value>,
    /// The steps; the first must be a birth event.
    pub steps: Vec<ScenarioStep>,
}

impl Scenario {
    /// Generates `count` random scenarios of up to `max_len` events for
    /// the abstract class: each starts with a random birth event and
    /// continues with random update/death events and pool-drawn
    /// arguments. Deterministic in `seed`.
    pub fn generate(
        class: &ClassModel,
        pool: &ValuePool,
        count: usize,
        max_len: usize,
        seed: u64,
    ) -> Vec<Scenario> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = class.template.signature();
        let births: Vec<_> = sig.events().birth_events().cloned().collect();
        let updates: Vec<_> = sig
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Update | EventKind::Active))
            .cloned()
            .collect();
        let deaths: Vec<_> = sig.events().death_events().cloned().collect();

        let mut out = Vec::with_capacity(count);
        for idx in 0..count {
            let key: Vec<Value> = class
                .identification
                .iter()
                .enumerate()
                .map(|(i, (_, sort))| {
                    // make keys unique per scenario to avoid cross-talk
                    if *sort == Sort::String && i == 0 {
                        Value::from(format!("obj{idx}"))
                    } else {
                        pool.draw(sort, &mut rng)
                    }
                })
                .collect();
            let mut steps = Vec::new();
            if let Some(birth) = births.first() {
                // event parameter sorts are not recorded in the kernel
                // signature (only arity); draw ints/strings alternately
                steps.push(ScenarioStep {
                    event: birth.name.clone(),
                    args: draw_args(class, &birth.name, birth.arity, pool, &mut rng),
                });
            }
            let len = if max_len == 0 {
                0
            } else {
                rng.random_range(0..max_len)
            };
            for _ in 0..len {
                if updates.is_empty() {
                    break;
                }
                let ev = &updates[rng.random_range(0..updates.len())];
                steps.push(ScenarioStep {
                    event: ev.name.clone(),
                    args: draw_args(class, &ev.name, ev.arity, pool, &mut rng),
                });
            }
            // occasionally end with death
            if !deaths.is_empty() && rng.random_bool(0.3) {
                let ev = &deaths[rng.random_range(0..deaths.len())];
                steps.push(ScenarioStep {
                    event: ev.name.clone(),
                    args: draw_args(class, &ev.name, ev.arity, pool, &mut rng),
                });
            }
            out.push(Scenario { key, steps });
        }
        out
    }
}

/// Draws event arguments. The kernel signature records arity only, so
/// sorts come from the class's valuation-rule parameter usage when
/// inferable; otherwise alternate ints and strings (good enough for the
/// small algebraic domains of spec examples). Event parameter sorts
/// *are* recorded in the language AST, but not kept in the lowered
/// model; scenario-driven refinement suites pass explicit scenarios when
/// argument sorts matter.
fn draw_args(
    _class: &ClassModel,
    _event: &str,
    arity: usize,
    pool: &ValuePool,
    rng: &mut StdRng,
) -> Vec<Value> {
    (0..arity)
        .map(|i| {
            if i % 2 == 0 {
                pool.draw(&Sort::Int, rng)
            } else {
                pool.draw(&Sort::String, rng)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> ClassModel {
        let src = r#"
object class ACC
  identification owner: string;
  template
    attributes balance: int;
    events
      birth open(int);
      deposit(int);
      withdraw(int);
      death close_acc;
    valuation
      variables n: int;
      [open(n)] balance = n;
      [deposit(n)] balance = balance + n;
      [withdraw(n)] balance = balance - n;
end object class ACC;
"#;
        troll_lang::analyze(&troll_lang::parse(src).unwrap())
            .unwrap()
            .classes["ACC"]
            .clone()
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let c = class();
        let pool = ValuePool::default();
        let a = Scenario::generate(&c, &pool, 5, 8, 42);
        let b = Scenario::generate(&c, &pool, 5, 8, 42);
        assert_eq!(a, b);
        let c2 = Scenario::generate(&c, &pool, 5, 8, 43);
        assert_ne!(a, c2);
    }

    #[test]
    fn scenarios_start_with_birth_and_respect_bounds() {
        let c = class();
        let scenarios = Scenario::generate(&c, &ValuePool::default(), 20, 6, 7);
        assert_eq!(scenarios.len(), 20);
        for s in &scenarios {
            assert_eq!(s.steps[0].event, "open");
            assert_eq!(s.steps[0].args.len(), 1);
            assert!(s.steps.len() <= 1 + 5 + 1);
            assert_eq!(s.key.len(), 1);
        }
        // keys are unique across scenarios
        let keys: std::collections::BTreeSet<_> = scenarios.iter().map(|s| s.key.clone()).collect();
        assert_eq!(keys.len(), 20);
    }

    #[test]
    fn pool_draws_cover_sorts() {
        let pool = ValuePool::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(pool.draw(&Sort::Bool, &mut rng), Value::Bool(_)));
        assert!(matches!(pool.draw(&Sort::Int, &mut rng), Value::Int(_)));
        assert!(matches!(pool.draw(&Sort::String, &mut rng), Value::Str(_)));
        assert!(matches!(pool.draw(&Sort::Date, &mut rng), Value::Date(_)));
        assert!(matches!(pool.draw(&Sort::Money, &mut rng), Value::Money(_)));
        assert!(matches!(
            pool.draw(&Sort::optional(Sort::Int), &mut rng),
            Value::Int(_)
        ));
    }
}
