//! The three-level schema architecture for object system modules (§6,
//! Figure 1).
//!
//! "We propose to adapt this three-level schema architecture for our
//! abstract concept of dynamic objects": a module organizes its classes
//! into a **conceptual schema** (the abstract, implementation-independent
//! description), an **internal schema** (the implementation level —
//! formal implementations over base objects), and several **external
//! schemata** (views for particular applications or user groups, which
//! double as access-control boundaries: "the possibility of defining
//! several external schemata as export interfaces allows to include
//! access control and security mechanisms already on the system
//! specification level").

use crate::{Implementation, RefineError, Result};
use std::collections::{BTreeMap, BTreeSet};
use troll_data::{ObjectId, Value};
use troll_lang::{ModuleModel, SystemModel};
use troll_runtime::{ObjectBase, StepReport, ViewSet};

/// The conceptual schema: the abstract classes of the module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConceptualSchema {
    /// Class names.
    pub classes: Vec<String>,
}

/// The internal schema: implementation-level classes and the formal
/// implementations that relate them to the conceptual schema.
#[derive(Debug, Clone, Default)]
pub struct InternalSchema {
    /// Implementation-level classes (base objects and implementation
    /// classes).
    pub classes: Vec<String>,
    /// Registered refinements (conceptual → internal).
    pub implementations: Vec<Implementation>,
}

/// An external schema: a named export interface — a set of interface
/// classes through which clients may observe and manipulate the module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExternalSchema {
    /// Schema name.
    pub name: String,
    /// Interface classes included.
    pub interfaces: Vec<String>,
}

/// An object system module with the three-level schema architecture.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The conceptual level.
    pub conceptual: ConceptualSchema,
    /// The internal level.
    pub internal: InternalSchema,
    /// The external level: several export schemata.
    pub external: Vec<ExternalSchema>,
    /// Imports of other modules' external schemata.
    pub imports: Vec<(String, String)>,
}

impl Module {
    /// Builds a module from a lowered `module` declaration.
    pub fn from_model(m: &ModuleModel) -> Module {
        Module {
            name: m.name.clone(),
            conceptual: ConceptualSchema {
                classes: m.conceptual.clone(),
            },
            internal: InternalSchema {
                classes: m.internal.clone(),
                implementations: Vec::new(),
            },
            external: m
                .external
                .iter()
                .map(|(name, interfaces)| ExternalSchema {
                    name: name.clone(),
                    interfaces: interfaces.clone(),
                })
                .collect(),
            imports: m.imports.clone(),
        }
    }

    /// Registers a formal implementation in the internal schema.
    pub fn add_implementation(&mut self, imp: Implementation) {
        self.internal.implementations.push(imp);
    }

    /// Finds an export schema by name.
    pub fn export_schema(&self, name: &str) -> Option<&ExternalSchema> {
        self.external.iter().find(|s| s.name == name)
    }

    /// Validates the module against a system model:
    ///
    /// * all schema members exist;
    /// * external interfaces encapsulate only classes of this module
    ///   (conceptual or internal) — views cannot leak foreign objects;
    /// * every registered implementation maps a conceptual class onto an
    ///   internal class and validates structurally.
    ///
    /// Returns the list of violations (empty = valid).
    pub fn validate(&self, model: &SystemModel) -> Vec<String> {
        let mut violations = Vec::new();
        let mut members: BTreeSet<&str> = BTreeSet::new();
        for c in self.conceptual.classes.iter().chain(&self.internal.classes) {
            if model.class(c).is_none() {
                violations.push(format!("module `{}`: unknown class `{c}`", self.name));
            }
            members.insert(c.as_str());
        }
        for schema in &self.external {
            for i in &schema.interfaces {
                match model.interface(i) {
                    None => violations.push(format!(
                        "module `{}`: unknown interface `{i}` in schema `{}`",
                        self.name, schema.name
                    )),
                    Some(iface) => {
                        for (base, _) in &iface.bases {
                            if !members.contains(base.as_str()) {
                                violations.push(format!(
                                    "module `{}`: interface `{i}` encapsulates `{base}`, which is not a module member",
                                    self.name
                                ));
                            }
                        }
                    }
                }
            }
        }
        for imp in &self.internal.implementations {
            if !self
                .conceptual
                .classes
                .iter()
                .any(|c| c == imp.abstract_class())
            {
                violations.push(format!(
                    "module `{}`: implementation of `{}` which is not in the conceptual schema",
                    self.name,
                    imp.abstract_class()
                ));
            }
            if !self
                .internal
                .classes
                .iter()
                .any(|c| c == imp.concrete_class())
            {
                violations.push(format!(
                    "module `{}`: implementation by `{}` which is not in the internal schema",
                    self.name,
                    imp.concrete_class()
                ));
            }
            if let Err(e) = imp.validate(model) {
                violations.push(format!("module `{}`: {e}", self.name));
            }
        }
        violations
    }

    /// Checks every registered formal implementation of this module
    /// operationally (§6.1: "module refinement by formal implementation
    /// steps where one (more abstract) module is implemented in terms of
    /// dependent other modules"): for each implementation, random
    /// scenarios over the abstract class are generated and
    /// [`crate::check_refinement`] is run.
    ///
    /// Returns one report per implementation, in registration order.
    ///
    /// # Errors
    ///
    /// Propagates mapping and runtime errors from the checks.
    pub fn check_implementations(
        &self,
        model: &troll_lang::SystemModel,
        scenarios_per_implementation: usize,
        max_scenario_len: usize,
        seed: u64,
        setup: &dyn Fn(&mut ObjectBase) -> troll_runtime::Result<()>,
    ) -> crate::Result<Vec<(String, crate::RefinementReport)>> {
        let mut out = Vec::new();
        for imp in &self.internal.implementations {
            let abstract_class = model
                .class(imp.abstract_class())
                .ok_or_else(|| RefineError::UnknownClass(imp.abstract_class().to_string()))?;
            let scenarios = crate::Scenario::generate(
                abstract_class,
                &crate::ValuePool::default(),
                scenarios_per_implementation,
                max_scenario_len,
                seed,
            );
            let report = crate::check_refinement(model, imp, &scenarios, setup)?;
            out.push((imp.abstract_class().to_string(), report));
        }
        Ok(out)
    }

    /// Opens a guarded handle on an object base, restricted to the given
    /// export schema — the module's society interface for one client
    /// group.
    ///
    /// # Errors
    ///
    /// Fails if the schema is not exported by this module.
    pub fn open<'a>(&self, schema: &str, base: &'a mut ObjectBase) -> Result<GuardedBase<'a>> {
        let export =
            self.export_schema(schema)
                .ok_or_else(|| RefineError::UnknownExportSchema {
                    module: self.name.clone(),
                    schema: schema.to_string(),
                })?;
        Ok(GuardedBase {
            module: self.name.clone(),
            allowed: export.interfaces.iter().cloned().collect(),
            base,
        })
    }
}

/// A handle on an object base that only permits access through the
/// interfaces of one export schema — "the implementation of single
/// modules is hidden to the outside" (§6.2).
#[derive(Debug)]
pub struct GuardedBase<'a> {
    module: String,
    allowed: BTreeSet<String>,
    base: &'a mut ObjectBase,
}

impl GuardedBase<'_> {
    /// The interfaces this handle may use.
    pub fn allowed_interfaces(&self) -> impl Iterator<Item = &str> {
        self.allowed.iter().map(String::as_str)
    }

    /// Evaluates an exported view.
    ///
    /// # Errors
    ///
    /// [`RefineError::AccessDenied`] if the interface is not in the
    /// export schema; otherwise view-evaluation errors.
    pub fn view(&self, interface: &str) -> Result<ViewSet> {
        if !self.allowed.contains(interface) {
            return Err(RefineError::AccessDenied {
                module: self.module.clone(),
                interface: interface.to_string(),
            });
        }
        Ok(self.base.view(interface)?)
    }

    /// Executes an exported view event.
    ///
    /// # Errors
    ///
    /// [`RefineError::AccessDenied`] if the interface is not exported;
    /// otherwise the underlying execution errors.
    pub fn view_call(
        &mut self,
        interface: &str,
        bindings: &BTreeMap<String, ObjectId>,
        event: &str,
        args: Vec<Value>,
    ) -> Result<StepReport> {
        if !self.allowed.contains(interface) {
            return Err(RefineError::AccessDenied {
                module: self.module.clone(),
                interface: interface.to_string(),
            });
        }
        Ok(self.base.view_call(interface, bindings, event, args)?)
    }
}

/// A system of modules — horizontal composition of communicating object
/// societies (§6.1).
#[derive(Debug, Clone, Default)]
pub struct ModuleSystem {
    modules: BTreeMap<String, Module>,
}

impl ModuleSystem {
    /// Creates an empty module system.
    pub fn new() -> Self {
        ModuleSystem::default()
    }

    /// Adds a module.
    pub fn add(&mut self, module: Module) {
        self.modules.insert(module.name.clone(), module);
    }

    /// Looks up a module.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.get(name)
    }

    /// Validates every module and every import edge: imported schemata
    /// must exist on the exporting module.
    pub fn validate(&self, model: &SystemModel) -> Vec<String> {
        let mut violations = Vec::new();
        for module in self.modules.values() {
            violations.extend(module.validate(model));
            for (target, schema) in &module.imports {
                match self.modules.get(target) {
                    None => violations.push(format!(
                        "module `{}` imports from unknown module `{target}`",
                        module.name
                    )),
                    Some(exporter) => {
                        if exporter.export_schema(schema).is_none() {
                            violations.push(format!(
                                "module `{}` imports schema `{schema}` which `{target}` does not export",
                                module.name
                            ));
                        }
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
object class PERSON
  identification name: string;
  template
    attributes Salary: money; Dept: string;
    events
      birth create(money, string);
      ChangeSalary(money);
      death die;
    valuation
      variables m: money; d: string;
      [create(m, d)] Salary = m;
      [create(m, d)] Dept = d;
      [ChangeSalary(m)] Salary = m;
end object class PERSON;

interface class SAL_EMPLOYEE
  encapsulating PERSON
  attributes name: string; Salary: money;
  events ChangeSalary(money);
end interface class SAL_EMPLOYEE;

interface class PHONEBOOK
  encapsulating PERSON
  attributes name: string; Dept: string;
end interface class PHONEBOOK;

module PERSONNEL
  conceptual schema PERSON;
  external schema SALARY = SAL_EMPLOYEE;
  external schema DIRECTORY = PHONEBOOK;
end module PERSONNEL;

module PAYROLL
  conceptual schema PERSON;
  import PERSONNEL.SALARY;
end module PAYROLL;
"#;

    fn system() -> (SystemModel, ObjectBase) {
        let model = troll_lang::analyze(&troll_lang::parse(SRC).unwrap()).unwrap();
        let mut ob = ObjectBase::new(model.clone()).unwrap();
        ob.birth(
            "PERSON",
            vec![Value::from("ada")],
            "create",
            vec![
                Value::Money(troll_data::Money::from_major(4000)),
                Value::from("Research"),
            ],
        )
        .unwrap();
        (model, ob)
    }

    fn modules(model: &SystemModel) -> ModuleSystem {
        let mut sys = ModuleSystem::new();
        for m in model.modules.values() {
            sys.add(Module::from_model(m));
        }
        sys
    }

    #[test]
    fn module_built_from_declaration_validates() {
        let (model, _) = system();
        let sys = modules(&model);
        assert!(sys.validate(&model).is_empty());
        let personnel = sys.module("PERSONNEL").unwrap();
        assert_eq!(personnel.conceptual.classes, vec!["PERSON"]);
        assert_eq!(personnel.external.len(), 2);
        assert!(personnel.export_schema("SALARY").is_some());
        assert!(personnel.export_schema("GHOST").is_none());
    }

    #[test]
    fn guarded_access_allows_exported_interface_only() {
        let (model, mut ob) = system();
        let sys = modules(&model);
        let personnel = sys.module("PERSONNEL").unwrap();

        let guard = personnel.open("SALARY", &mut ob).unwrap();
        assert_eq!(
            guard.allowed_interfaces().collect::<Vec<_>>(),
            vec!["SAL_EMPLOYEE"]
        );
        // exported view works
        let v = guard.view("SAL_EMPLOYEE").unwrap();
        assert_eq!(v.len(), 1);
        // other module's view through this schema: denied
        let err = guard.view("PHONEBOOK").unwrap_err();
        assert!(matches!(err, RefineError::AccessDenied { .. }));
    }

    #[test]
    fn guarded_view_call_forwards_and_denies() {
        let (model, mut ob) = system();
        let sys = modules(&model);
        let personnel = sys.module("PERSONNEL").unwrap();
        let ada = ObjectId::singleton("PERSON", Value::from("ada"));
        let bindings: BTreeMap<String, ObjectId> = [("PERSON".to_string(), ada.clone())].into();

        {
            let mut guard = personnel.open("SALARY", &mut ob).unwrap();
            guard
                .view_call(
                    "SAL_EMPLOYEE",
                    &bindings,
                    "ChangeSalary",
                    vec![Value::Money(troll_data::Money::from_major(5000))],
                )
                .unwrap();
            let err = guard
                .view_call("PHONEBOOK", &bindings, "anything", vec![])
                .unwrap_err();
            assert!(matches!(err, RefineError::AccessDenied { .. }));
        }
        assert_eq!(
            ob.attribute(&ada, "Salary").unwrap(),
            Value::Money(troll_data::Money::from_major(5000))
        );
    }

    #[test]
    fn opening_unknown_schema_fails() {
        let (model, mut ob) = system();
        let sys = modules(&model);
        let err = sys
            .module("PERSONNEL")
            .unwrap()
            .open("GHOST", &mut ob)
            .unwrap_err();
        assert!(matches!(err, RefineError::UnknownExportSchema { .. }));
    }

    #[test]
    fn import_validation() {
        let (model, _) = system();
        let mut sys = modules(&model);
        assert!(sys.validate(&model).is_empty());
        // import of a non-exported schema
        let mut bad = Module::from_model(&model.modules["PAYROLL"]);
        bad.name = "BAD".into();
        bad.imports = vec![("PERSONNEL".into(), "GHOST".into())];
        sys.add(bad);
        let v = sys.validate(&model);
        assert!(v.iter().any(|m| m.contains("does not export")), "{v:?}");
        // import from unknown module
        let worse = Module {
            name: "WORSE".into(),
            imports: vec![("NOWHERE".into(), "X".into())],
            ..Module::default()
        };
        sys.add(worse);
        let v = sys.validate(&model);
        assert!(v.iter().any(|m| m.contains("unknown module")), "{v:?}");
    }

    #[test]
    fn implementation_membership_validated() {
        let (model, _) = system();
        let mut m = Module::from_model(&model.modules["PERSONNEL"]);
        // implementation whose classes are not module members
        m.add_implementation(Implementation::new("PERSON", "PERSON"));
        let v = m.validate(&model);
        assert!(
            v.iter()
                .any(|msg| msg.contains("not in the internal schema")),
            "{v:?}"
        );
    }
}

#[cfg(test)]
mod module_refinement_tests {
    use super::*;
    use crate::Implementation;

    const SRC: &str = r#"
object cell
  template
    attributes content: int;
    events
      birth init_cell;
      write(int);
    valuation
      variables v: int;
      [init_cell] content = 0;
      [write(v)] content = v;
end object cell;

object class COUNTER
  identification cid: string;
  template
    attributes value: int;
    events
      birth create;
      step(int);
      death discard;
    valuation
      variables n: int;
      [create] value = 0;
      [step(n)] value = value + n;
end object class COUNTER;

object class COUNTER_IMPL
  identification cid: string;
  template
    inheriting cell as store;
    attributes
      derived value: int;
    events
      birth create;
      step(int);
      death discard;
    derivation rules
      value = store.content;
    interaction
      variables n: int;
      step(n) >> store.write(store.content + n);
end object class COUNTER_IMPL;

module TALLY
  conceptual schema COUNTER;
  internal schema COUNTER_IMPL, cell;
end module TALLY;
"#;

    #[test]
    fn module_checks_its_implementations() {
        let model = troll_lang::analyze(&troll_lang::parse(SRC).unwrap()).unwrap();
        let mut module = Module::from_model(&model.modules["TALLY"]);
        module.add_implementation(Implementation::new("COUNTER", "COUNTER_IMPL"));
        assert!(module.validate(&model).is_empty());

        let setup = |ob: &mut ObjectBase| {
            let cell = ob.singleton("cell").expect("singleton");
            ob.execute(&cell, "init_cell", vec![])?;
            Ok(())
        };
        let reports = module
            .check_implementations(&model, 6, 5, 99, &setup)
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "COUNTER");
        assert!(reports[0].1.is_refinement(), "{}", reports[0].1);
    }

    #[test]
    fn unknown_abstract_class_reported() {
        let model = troll_lang::analyze(&troll_lang::parse(SRC).unwrap()).unwrap();
        let mut module = Module::from_model(&model.modules["TALLY"]);
        module.add_implementation(Implementation::new("GHOST", "COUNTER_IMPL"));
        let setup = |_: &mut ObjectBase| Ok(());
        assert!(matches!(
            module
                .check_implementations(&model, 1, 2, 1, &setup)
                .unwrap_err(),
            RefineError::UnknownClass(_)
        ));
    }
}
