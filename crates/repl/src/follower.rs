//! The follower: tail a primary's durable worlds and replay them.
//!
//! One blocking client connection pulls batches (`repl-poll`); each
//! world's records are re-verified (CRC + canonical decode), replayed
//! through this process's own engine, and recorded through its own
//! [`Store`] — so the follower's directory is not a file copy but an
//! independently *re-derived* durable world that happens to be
//! byte-identical, and `troll serve --durable <dir>` can promote it
//! the moment the primary dies.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use troll_obs::{Counter, Metrics};
use troll_runtime::ObjectBase;
use troll_serve::proto::{hex_decode, Request, Response};
use troll_store::codec::Dec;
use troll_store::frame::{read_frame, FrameRead};
use troll_store::snapshot::install_snapshot_bytes;
use troll_store::wal::REC_STEP;
use troll_store::{open_world, FsyncPolicy, Store, StoreOptions};

/// Follower tuning.
#[derive(Debug, Clone)]
pub struct FollowOptions {
    /// Sleep between poll rounds once caught up (milliseconds).
    pub poll_ms: u64,
    /// Catch up once and exit instead of tailing forever.
    pub once: bool,
    /// Serve read-only queries on this address while tailing.
    pub listen: Option<String>,
    /// Store tuning for the follower's own durable worlds.
    pub store: StoreOptions,
}

impl Default for FollowOptions {
    fn default() -> FollowOptions {
        FollowOptions {
            poll_ms: 100,
            once: false,
            listen: None,
            store: StoreOptions {
                // the follower acknowledges nothing, so its own fsync
                // cadence trades only its *local* catch-up work
                fsync: FsyncPolicy::EveryN(64),
                segment_bytes: 4 << 20,
                snapshot_every: 1024,
            },
        }
    }
}

/// Totals reported when the follower exits.
#[derive(Debug, Clone, Copy)]
pub struct FollowSummary {
    /// Worlds tailed.
    pub worlds: u64,
    /// Records replayed and re-recorded locally.
    pub records_applied: u64,
    /// Snapshots installed for catch-up past a pruned log.
    pub snapshots_installed: u64,
    /// `repl-poll` round trips issued.
    pub polls: u64,
    /// True when the follower exited because the primary became
    /// unreachable after a successful start — the cue to promote.
    pub primary_lost: bool,
}

/// Why a follower could not run (primary loss after a successful start
/// is *not* an error — see [`FollowSummary::primary_lost`]).
#[derive(Debug)]
pub enum FollowError {
    /// The primary was never reachable or refused replication.
    Connect(String),
    /// A local store/replay failure — this follower's copy is suspect.
    Local(String),
    /// The primary shipped something unintelligible or inconsistent.
    Protocol(String),
}

impl std::fmt::Display for FollowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FollowError::Connect(e) => write!(f, "cannot follow: {e}"),
            FollowError::Local(e) => write!(f, "follower store failure: {e}"),
            FollowError::Protocol(e) => write!(f, "replication protocol violation: {e}"),
        }
    }
}

impl std::error::Error for FollowError {}

/// One tailed world, shared between the apply loop and the read-only
/// query server.
pub(crate) struct WorldSlot {
    pub(crate) dir: PathBuf,
    pub(crate) base: ObjectBase,
    pub(crate) store: Store,
}

pub(crate) struct ReplCounters {
    pub(crate) polls: Counter,
    pub(crate) records_applied: Counter,
    pub(crate) snapshots_installed: Counter,
    pub(crate) worlds: Counter,
}

impl ReplCounters {
    fn new(metrics: &Metrics) -> ReplCounters {
        ReplCounters {
            polls: metrics.counter("repl.polls"),
            records_applied: metrics.counter("repl.records_applied"),
            snapshots_installed: metrics.counter("repl.snapshots_installed"),
            worlds: metrics.counter("repl.worlds"),
        }
    }
}

/// State shared with the read-only listener threads.
pub(crate) struct FollowerShared {
    pub(crate) spec_source: String,
    pub(crate) worlds: Mutex<BTreeMap<String, Arc<Mutex<WorldSlot>>>>,
    /// Set by a `shutdown` request on the read-only port (or at exit).
    pub(crate) stop: AtomicBool,
    pub(crate) c: ReplCounters,
}

/// A blocking line-protocol client that reconnects on demand and
/// forgets the stream on any error (the caller decides whether that
/// means the primary died).
struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
        }
    }

    fn rpc(&mut self, req: &Request) -> io::Result<Response> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(BufReader::new(stream));
        }
        let result = self.rpc_on_stream(req);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn rpc_on_stream(&mut self, req: &Request) -> io::Result<Response> {
        let reader = self.stream.as_mut().expect("connected stream");
        let mut line = req.to_json();
        line.push('\n');
        reader.get_mut().write_all(line.as_bytes())?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "primary closed the connection",
            ));
        }
        Response::parse(resp.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

enum SyncErr {
    /// The primary became unreachable; exit cleanly, promotable.
    Primary,
    /// A real error; surface it.
    Fatal(FollowError),
}

/// Runs a follower against `addr`, mirroring every durable world into
/// `dir` (a valid `troll serve --durable` root). Returns when: the
/// primary dies after a successful start (`primary_lost` set), a
/// `shutdown` arrives on the read-only port, or — with
/// [`FollowOptions::once`] — a full catch-up pass completes.
///
/// # Errors
///
/// [`FollowError::Connect`] when the primary was never reachable,
/// [`FollowError::Local`] / [`FollowError::Protocol`] when replication
/// cannot be trusted to continue.
pub fn run_follow(
    addr: &str,
    dir: &Path,
    opts: &FollowOptions,
) -> Result<FollowSummary, FollowError> {
    let mut client = Client::new(addr);
    let spec_source = match client.rpc(&Request::ReplSpec) {
        Ok(Response::Ok(spec)) => spec,
        Ok(Response::Err(e)) => {
            return Err(FollowError::Connect(format!(
                "primary refused repl-spec: {e}"
            )))
        }
        Err(e) => {
            return Err(FollowError::Connect(format!(
                "primary at {addr} unreachable: {e}"
            )))
        }
    };
    troll_lang::parse(&spec_source)
        .and_then(|parsed| troll_lang::analyze(&parsed))
        .map_err(|e| FollowError::Protocol(format!("primary's spec does not compile: {e}")))?;
    fs::create_dir_all(dir).map_err(|e| FollowError::Local(e.to_string()))?;

    let metrics = Metrics::new();
    let shared = Arc::new(FollowerShared {
        spec_source,
        worlds: Mutex::new(BTreeMap::new()),
        stop: AtomicBool::new(false),
        c: ReplCounters::new(&metrics),
    });
    let listener = match &opts.listen {
        Some(listen) => Some(
            crate::readonly::spawn(listen, Arc::clone(&shared))
                .map_err(|e| FollowError::Local(format!("read-only listener: {e}")))?,
        ),
        None => None,
    };

    let mut primary_lost = false;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match sync_once(&mut client, dir, &shared, opts) {
            Ok(()) => {}
            Err(SyncErr::Primary) => {
                primary_lost = true;
                break;
            }
            Err(SyncErr::Fatal(e)) => {
                shared.stop.store(true, Ordering::SeqCst);
                if let Some((_, handle)) = listener {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
        if opts.once {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(Duration::from_millis(opts.poll_ms));
    }

    shared.stop.store(true, Ordering::SeqCst);
    if let Some((_, handle)) = listener {
        let _ = handle.join();
    }
    // final snapshot + sync per world, so promotion recovers instantly
    let worlds = shared.worlds.lock().expect("worlds");
    for slot in worlds.values() {
        let mut slot = slot.lock().expect("world slot");
        let WorldSlot { base, store, .. } = &mut *slot;
        store
            .close(base)
            .map_err(|e| FollowError::Local(e.to_string()))?;
    }
    Ok(FollowSummary {
        worlds: shared.c.worlds.get(),
        records_applied: shared.c.records_applied.get(),
        snapshots_installed: shared.c.snapshots_installed.get(),
        polls: shared.c.polls.get(),
        primary_lost,
    })
}

/// One full pass: refresh the world list, then catch every world up to
/// the primary's durable cursor.
fn sync_once(
    client: &mut Client,
    dir: &Path,
    shared: &Arc<FollowerShared>,
    opts: &FollowOptions,
) -> Result<(), SyncErr> {
    let names = match client.rpc(&Request::ReplWorlds) {
        Ok(Response::Ok(text)) => text,
        Ok(Response::Err(e)) => {
            return Err(SyncErr::Fatal(FollowError::Protocol(format!(
                "repl-worlds refused: {e}"
            ))))
        }
        Err(_) => return Err(SyncErr::Primary),
    };
    for name in names.split_whitespace() {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let slot = {
            let mut worlds = shared.worlds.lock().expect("worlds");
            match worlds.get(name) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let world_dir = dir.join("worlds").join(name);
                    let (base, store, _info) =
                        open_world(&world_dir, &shared.spec_source, &opts.store)
                            .map_err(|e| SyncErr::Fatal(FollowError::Local(e.to_string())))?;
                    let slot = Arc::new(Mutex::new(WorldSlot {
                        dir: world_dir,
                        base,
                        store,
                    }));
                    worlds.insert(name.to_string(), Arc::clone(&slot));
                    shared.c.worlds.inc();
                    slot
                }
            }
        };
        catch_up_world(client, shared, opts, name, &slot)?;
    }
    Ok(())
}

/// Polls one world until the primary has nothing durable left to ship.
fn catch_up_world(
    client: &mut Client,
    shared: &Arc<FollowerShared>,
    opts: &FollowOptions,
    name: &str,
    slot: &Arc<Mutex<WorldSlot>>,
) -> Result<(), SyncErr> {
    loop {
        let from = slot.lock().expect("world slot").store.next_seq();
        shared.c.polls.inc();
        let text = match client.rpc(&Request::ReplPoll {
            world: name.to_string(),
            from,
        }) {
            Ok(Response::Ok(text)) => text,
            // e.g. registered but not yet built on the primary — try
            // again next round
            Ok(Response::Err(_)) => return Ok(()),
            Err(_) => return Err(SyncErr::Primary),
        };
        let mut parts = text.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("records"), Some(next), hex) => {
                let next: u64 = next.parse().map_err(|_| bad_reply(&text))?;
                let hex = hex.unwrap_or("");
                if next <= from || hex.is_empty() {
                    return Ok(()); // caught up to the durable cursor
                }
                let bytes = hex_decode(hex).ok_or_else(|| bad_reply(&text))?;
                let mut slot = slot.lock().expect("world slot");
                if apply_records(shared, &mut slot, &bytes)? == 0 {
                    return Ok(());
                }
            }
            (Some("snapshot"), Some(next), Some(hex)) => {
                let next: u64 = next.parse().map_err(|_| bad_reply(&text))?;
                let bytes = hex_decode(hex).ok_or_else(|| bad_reply(&text))?;
                let mut slot = slot.lock().expect("world slot");
                install_snapshot_bytes(&slot.dir, &bytes)
                    .map_err(|e| SyncErr::Fatal(FollowError::Local(e.to_string())))?
                    .ok_or_else(|| {
                        SyncErr::Fatal(FollowError::Protocol(
                            "shipped snapshot failed validation".to_string(),
                        ))
                    })?;
                // reopen the world on top of the installed snapshot
                // (recovery jumps the WAL cursor forward; stale local
                // segments below it are simply ignored)
                let (base, store, _info) = open_world(&slot.dir, &shared.spec_source, &opts.store)
                    .map_err(|e| SyncErr::Fatal(FollowError::Local(e.to_string())))?;
                slot.base = base;
                slot.store = store;
                shared.c.snapshots_installed.inc();
                if slot.store.next_seq() <= from || slot.store.next_seq() < next {
                    return Err(SyncErr::Fatal(FollowError::Protocol(format!(
                        "snapshot for seq {next} did not advance past {from}"
                    ))));
                }
            }
            _ => return Err(bad_reply(&text)),
        }
    }
}

fn bad_reply(text: &str) -> SyncErr {
    SyncErr::Fatal(FollowError::Protocol(format!(
        "unintelligible repl-poll reply: {}",
        &text[..text.len().min(128)]
    )))
}

/// Verifies, replays and re-records one shipped batch of raw frames.
/// Returns the number of records applied. Every frame re-passes the
/// CRC and the canonical decode — a bit flip in transit (or on the
/// primary's disk) stops replication here rather than poisoning the
/// follower's log.
fn apply_records(
    shared: &Arc<FollowerShared>,
    slot: &mut WorldSlot,
    bytes: &[u8],
) -> Result<u64, SyncErr> {
    let mut offset = 0usize;
    let mut applied = 0u64;
    loop {
        match read_frame(bytes, offset) {
            FrameRead::CleanEnd => break,
            FrameRead::Torn | FrameRead::Corrupt => {
                return Err(SyncErr::Fatal(FollowError::Protocol(
                    "torn or corrupt frame in shipped batch".to_string(),
                )))
            }
            FrameRead::Frame { payload, next } => {
                let parsed = (|| {
                    let mut dec = Dec::new(payload);
                    if dec.u8()? != REC_STEP {
                        return Err(troll_store::codec::CodecError {
                            at: 0,
                            kind: troll_store::codec::CodecErrorKind::BadTag(payload[0]),
                        });
                    }
                    let seq = dec.u64()?;
                    let n = dec.count()?;
                    let mut initial = Vec::with_capacity(n);
                    for _ in 0..n {
                        initial.push(dec.occurrence()?);
                    }
                    dec.finish()?;
                    Ok((seq, initial))
                })();
                let (seq, initial) = parsed.map_err(|e| {
                    SyncErr::Fatal(FollowError::Protocol(format!(
                        "undecodable shipped record: {e:?}"
                    )))
                })?;
                let expected = slot.store.next_seq();
                if seq < expected {
                    offset = next;
                    continue; // already have it
                }
                if seq > expected {
                    return Err(SyncErr::Fatal(FollowError::Protocol(format!(
                        "shipped batch skips from {expected} to {seq}"
                    ))));
                }
                slot.base.replay_step(initial.clone()).map_err(|e| {
                    SyncErr::Fatal(FollowError::Local(format!(
                        "shipped step {seq} does not replay: {e}"
                    )))
                })?;
                slot.store.record_step(&slot.base, &initial);
                if slot.store.has_write_error() {
                    return Err(SyncErr::Fatal(FollowError::Local(
                        "local WAL append failed".to_string(),
                    )));
                }
                shared.c.records_applied.inc();
                applied += 1;
                offset = next;
            }
        }
    }
    Ok(applied)
}
