//! # troll-repl — log-shipping replication for durable worlds
//!
//! The paper's object bases are deterministic trace machines: a world
//! *is* its committed occurrence log, and replaying that log through
//! the engine is the semantics, not an approximation of it. That makes
//! replication almost free — the `spec.troll` + WAL pair a primary
//! already writes is a complete, shippable description of a running
//! world, and a follower that re-appends the same canonical-codec
//! records builds a **byte-identical** log of its own.
//!
//! The pieces:
//!
//! * a **primary** is any `troll serve --durable` server — it answers
//!   `repl-spec` / `repl-worlds` / `repl-poll` on the same newline-JSON
//!   protocol clients use, shipping hex-encoded raw WAL frames (only
//!   *durable* records: nothing a crash could still take back) and,
//!   when the asked-for history was pruned by compaction, the newest
//!   snapshot for catch-up;
//! * a **follower** ([`run_follow`], the `troll follow` command) tails
//!   every world, replays each record through its own engine, records
//!   it through its own [`troll_store::Store`] (same codec → same
//!   bytes), and serves read-only `query-attr` / `query-view` /
//!   `stats` while it tails;
//! * **promotion** is a no-op by construction: the follower directory
//!   is a valid `--durable` root, so when the primary dies, pointing
//!   `troll serve --durable <dir>` (or `troll recover`) at it resumes
//!   from every record the primary ever acknowledged *to the
//!   follower's knowledge* — the follower can lag the primary's tail,
//!   but never holds a wrong or torn prefix.
//!
//! Observability lands in a follower-owned registry: `repl.polls`,
//! `repl.records_applied`, `repl.snapshots_installed`, `repl.worlds`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod follower;
mod readonly;

pub use follower::{run_follow, FollowError, FollowOptions, FollowSummary};
