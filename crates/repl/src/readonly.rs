//! The follower's read-only query port.
//!
//! Speaks the same newline-JSON protocol as the primary, but only the
//! observation half: `query-attr`, `query-view`, `stats`, `repl-spec`,
//! `repl-worlds`. Mutations are refused — a follower's worlds change
//! only by replaying the primary's log, never by taking writes, or the
//! two would diverge. `shutdown` stops the whole follower cleanly.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use troll_runtime::script;
use troll_serve::proto::{Request, Response, MAX_LINE};

use crate::follower::FollowerShared;

/// How often the accept loop re-checks the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Idle-read tick on connections, so they notice the stop flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Binds `listen` and serves read-only queries until the shared stop
/// flag is set. Returns the bound address (useful with port 0) and the
/// accept thread's handle.
pub(crate) fn spawn(
    listen: &str,
    shared: Arc<FollowerShared>,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = thread::Builder::new()
        .name("troll-follow-listener".to_string())
        .spawn(move || loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    let _ = thread::Builder::new()
                        .name("troll-follow-conn".to_string())
                        .spawn(move || serve_conn(stream, &shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => thread::sleep(ACCEPT_TICK),
            }
        })?;
    Ok((addr, handle))
}

fn serve_conn(stream: TcpStream, shared: &Arc<FollowerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        if line.len() > MAX_LINE {
            return;
        }
        let resp = answer(shared, line.trim_end());
        let shutdown = matches!(Request::parse(line.trim_end()), Ok(Request::Shutdown));
        let mut out = resp.to_json();
        out.push('\n');
        if reader.get_mut().write_all(out.as_bytes()).is_err() {
            return;
        }
        if shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn answer(shared: &Arc<FollowerShared>, line: &str) -> Response {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => return Response::Err(e),
    };
    match req {
        Request::QueryAttr { world, id, attr } => {
            world_command(shared, &world, &format!("show {id} {attr}"))
        }
        Request::QueryView { world, interface } => {
            world_command(shared, &world, &format!("view {interface}"))
        }
        Request::Stats { world: None } => Response::Ok(format!(
            "follower worlds={} records_applied={} snapshots_installed={} polls={}",
            shared.c.worlds.get(),
            shared.c.records_applied.get(),
            shared.c.snapshots_installed.get(),
            shared.c.polls.get(),
        )),
        Request::Stats { world: Some(world) } => {
            let Some(slot) = lookup(shared, &world) else {
                return Response::Err(format!("world `{world}` is not open"));
            };
            let slot = slot.lock().expect("world slot");
            let f = slot.store.figures();
            Response::Ok(format!(
                "world {world}: steps={} attempts={} appends={} fsyncs={} wal_bytes={} since_snapshot={} compactions={}",
                slot.base.steps_executed(),
                slot.base.step_attempts(),
                f.appends,
                f.fsyncs,
                f.wal_bytes,
                f.bytes_since_snapshot,
                f.compactions,
            ))
        }
        Request::ReplSpec => Response::Ok(shared.spec_source.clone()),
        Request::ReplWorlds => {
            let worlds = shared.worlds.lock().expect("worlds");
            let names: Vec<&str> = worlds.keys().map(String::as_str).collect();
            Response::Ok(names.join(" "))
        }
        Request::Shutdown => Response::Ok("follower shutting down".to_string()),
        Request::Open { .. } | Request::SubmitEvent { .. } | Request::ReplPoll { .. } => {
            Response::Err("read-only follower: writes go to the primary".to_string())
        }
    }
}

fn lookup(
    shared: &Arc<FollowerShared>,
    world: &str,
) -> Option<Arc<std::sync::Mutex<crate::follower::WorldSlot>>> {
    shared.worlds.lock().expect("worlds").get(world).cloned()
}

fn world_command(shared: &Arc<FollowerShared>, world: &str, line: &str) -> Response {
    let Some(slot) = lookup(shared, world) else {
        return Response::Err(format!("world `{world}` is not open"));
    };
    let mut slot = slot.lock().expect("world slot");
    match script::run_command(&mut slot.base, line) {
        Ok(outcome) => Response::Ok(outcome.to_string()),
        Err(e) => Response::Err(e),
    }
}
